//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`queue::SegQueue`] is provided, because that is the only item
//! this workspace uses. The real crate's segmented lock-free queue is
//! replaced by a mutex-protected `VecDeque` with the same MPMC semantics;
//! throughput is lower but behaviour (FIFO, unbounded, `push`/`pop` from
//! any thread) is identical.

pub mod queue {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Mutex, PoisonError};

    /// An unbounded MPMC FIFO queue with the `crossbeam` `SegQueue` API.
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        pub const fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        fn locked(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.inner.lock().unwrap_or_else(PoisonError::into_inner)
        }

        pub fn push(&self, value: T) {
            self.locked().push_back(value);
        }

        pub fn pop(&self) -> Option<T> {
            self.locked().pop_front()
        }

        pub fn len(&self) -> usize {
            self.locked().len()
        }

        pub fn is_empty(&self) -> bool {
            self.locked().is_empty()
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            SegQueue::new()
        }
    }

    impl<T> fmt::Debug for SegQueue<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("SegQueue")
                .field("len", &self.len())
                .finish()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::Arc;

        #[test]
        fn fifo_order() {
            let q = SegQueue::new();
            q.push(1);
            q.push(2);
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), None);
            assert!(q.is_empty());
        }

        #[test]
        fn concurrent_producers_lose_nothing() {
            let q = Arc::new(SegQueue::new());
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let q = q.clone();
                    std::thread::spawn(move || {
                        for i in 0..100 {
                            q.push(t * 100 + i);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let mut seen = Vec::new();
            while let Some(v) = q.pop() {
                seen.push(v);
            }
            seen.sort();
            assert_eq!(seen.len(), 400);
            assert_eq!(seen[0], 0);
            assert_eq!(seen[399], 399);
        }
    }
}
