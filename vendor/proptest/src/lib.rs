//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the `proptest!` macro with `proptest_config`, integer-range
//! / tuple / `Just` / mapped / `prop_oneof!` strategies, `prop::collection`
//! vec and btree_map generators, and a restricted regex string strategy
//! (`"[class]{lo,hi}"` patterns). Cases are generated from a deterministic
//! per-test seed; there is no shrinking — a failing case reports its case
//! number and generated inputs via the panic message instead.

pub mod test_runner {
    use std::fmt;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// Failure raised by `prop_assert*` macros (or converted from `?`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl<E: std::error::Error> From<E> for TestCaseError {
        fn from(e: E) -> Self {
            TestCaseError::fail(e.to_string())
        }
    }

    /// Deterministic RNG driving case generation (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from the test's identity and the case index so every test
        /// function explores a distinct but reproducible sequence.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut hash: u64 = 0xcbf29ce484222325;
            for b in test_name.bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x100000001b3);
            }
            TestRng {
                state: hash ^ ((case as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15)),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking; `generate`
    /// simply produces one value from the RNG.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { strategy: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy producing a clone of a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy applying a function to another strategy's output.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        strategy: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.strategy.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (built by `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    /// Boxes a strategy for use in heterogeneous `prop_oneof!` arms.
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.wrapping_sub(lo) as u64;
                    lo.wrapping_add((rng.below(span.saturating_add(1))) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.below(self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            // 53 random bits give a uniform fraction in [0, 1).
            let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + frac * (self.end - self.start)
        }
    }

    impl Strategy for bool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident/$idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
    }

    /// Restricted regex string strategy: supports exactly the shape
    /// `[class]{lo,hi}` (single character class with a bounded repeat),
    /// where the class may contain literals and `a-z` ranges. This covers
    /// every pattern used in the workspace's tests; anything else panics
    /// with a clear message so the gap is visible immediately.
    #[derive(Debug, Clone)]
    pub struct RegexString {
        alphabet: Vec<char>,
        min_len: usize,
        max_len: usize,
    }

    impl RegexString {
        pub fn parse(pattern: &str) -> Self {
            match Self::try_parse(pattern) {
                Some(parsed) => parsed,
                None => panic!(
                    "vendored proptest stub supports only `[class]{{lo,hi}}` string \
                     patterns, got {pattern:?}"
                ),
            }
        }

        fn try_parse(pattern: &str) -> Option<Self> {
            let rest = pattern.strip_prefix('[')?;
            let close = rest.find(']')?;
            let class = &rest[..close];
            let tail = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
            let (lo, hi) = match tail.split_once(',') {
                Some((lo, hi)) => (lo.parse().ok()?, hi.parse().ok()?),
                None => {
                    let n: usize = tail.parse().ok()?;
                    (n, n)
                }
            };

            let mut alphabet = Vec::new();
            let chars: Vec<char> = class.chars().collect();
            let mut i = 0;
            while i < chars.len() {
                if i + 2 < chars.len() && chars[i + 1] == '-' {
                    let (start, end) = (chars[i], chars[i + 2]);
                    assert!(start <= end, "bad class range in {pattern:?}");
                    for c in start..=end {
                        alphabet.push(c);
                    }
                    i += 3;
                } else {
                    alphabet.push(chars[i]);
                    i += 1;
                }
            }
            if alphabet.is_empty() || lo > hi {
                return None;
            }
            Some(RegexString {
                alphabet,
                min_len: lo,
                max_len: hi,
            })
        }
    }

    impl Strategy for RegexString {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let span = (self.max_len - self.min_len) as u64 + 1;
            let len = self.min_len + rng.below(span) as usize;
            (0..len)
                .map(|_| self.alphabet[rng.below(self.alphabet.len() as u64) as usize])
                .collect()
        }
    }

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            RegexString::parse(self).generate(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Size specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<i32>> for SizeRange {
        fn from(r: Range<i32>) -> Self {
            assert!(
                0 <= r.start && r.start < r.end,
                "empty collection size range"
            );
            SizeRange {
                min: r.start as usize,
                max_exclusive: r.end as usize,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max_exclusive - self.min) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a generated length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    ///
    /// The size is a target, not a guarantee: duplicate generated keys
    /// collapse (matching real proptest's behaviour of deduplicating while
    /// it tries to reach the requested size).
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut out = BTreeMap::new();
            // Bounded retries so colliding key spaces cannot loop forever.
            for _ in 0..target.saturating_mul(4) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }

    /// `prop::collection::btree_map(key, value, size)`
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of proptest's `prop` alias module (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( config = ($config:expr); ) => {};
    ( config = ($config:expr);
      $(#[$attr:meta])*
      fn $name:ident( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let config = $config;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $( let $arg = ($strat).generate(&mut rng); )+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                if let Err(err) = result {
                    panic!(
                        "proptest {} failed at case {}/{} (deterministic; rerun reproduces): {}",
                        stringify!($name),
                        case,
                        config.cases,
                        err,
                    );
                }
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}", left, right, format!($($fmt)+)
        );
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::boxed($strat) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("t", 0);
        for _ in 0..1000 {
            let v = (0i64..10).generate(&mut rng);
            assert!((0..10).contains(&v));
            let (a, b) = (0u8..6, 0u8..4).generate(&mut rng);
            assert!(a < 6 && b < 4);
        }
    }

    #[test]
    fn collections_hit_requested_sizes() {
        let mut rng = crate::test_runner::TestRng::for_case("c", 1);
        for _ in 0..200 {
            let v = prop::collection::vec(0i64..100, 1..20).generate(&mut rng);
            assert!((1..20).contains(&v.len()));
            let m = prop::collection::btree_map(0u8..50, 0u16..10, 0..8).generate(&mut rng);
            assert!(m.len() < 8);
        }
    }

    #[test]
    fn regex_subset_strings() {
        let mut rng = crate::test_runner::TestRng::for_case("r", 2);
        for _ in 0..500 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "[ -~]{0,20}".generate(&mut rng);
            assert!(t.len() <= 20);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
            let u = "[a-zA-Z0-9_|=:%]{1,12}".generate(&mut rng);
            assert!((1..=12).contains(&u.len()));
        }
    }

    #[test]
    fn oneof_and_just() {
        let strat = prop_oneof![Just(None), (0u16..1000).prop_map(Some)];
        let mut rng = crate::test_runner::TestRng::for_case("o", 3);
        let mut seen_none = false;
        let mut seen_some = false;
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                None => seen_none = true,
                Some(v) => {
                    assert!(v < 1000);
                    seen_some = true;
                }
            }
        }
        assert!(seen_none && seen_some);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: args bind, asserts work, assume skips.
        #[test]
        fn macro_end_to_end(xs in prop::collection::vec(0i64..50, 1..10), flip in 0u8..2) {
            prop_assume!(!xs.is_empty());
            let sum: i64 = xs.iter().sum();
            prop_assert!(sum >= 0, "sum must be non-negative, got {}", sum);
            if flip == 0 {
                prop_assert_eq!(xs.len(), xs.len());
            } else {
                prop_assert_ne!(xs.len(), 0);
            }
        }
    }
}
