//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the subset of the `parking_lot` API this codebase
//! actually uses — `Mutex`, `RwLock`, and `Condvar` with non-poisoning
//! guards — implemented on top of `std::sync`. Poisoning is swallowed
//! (`parking_lot` has no poisoning), so a panic while holding a lock does
//! not wedge every later accessor.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock with `parking_lot`-style (non-poisoning) guards.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`].
///
/// The inner `Option` exists so [`Condvar::wait`] can temporarily take the
/// underlying std guard out and put it back; it is `Some` at all other
/// times.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock with non-poisoning guards.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// RAII write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a [`Condvar::wait_for`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with this module's [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard already taken");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard already taken");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
