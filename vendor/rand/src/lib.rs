//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer `Range`s,
//! and `Rng::gen_bool`. The generator is xoshiro256++ seeded via
//! splitmix64 — deterministic for a given seed, which is all the
//! reproducible-workload generators require. Not cryptographically secure.

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Integer types sampleable from a `Range` (stand-in for `SampleUniform`).
pub trait UniformInt: Copy {
    fn sample_range(rng: &mut dyn RngCore, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = range.end.wrapping_sub(range.start) as u128;
                // Modulo bias is negligible for the spans used here (all
                // far below 2^64) and irrelevant to test workloads.
                let offset = (rng.next_u64() as u128 % span) as $t;
                range.start.wrapping_add(offset)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 random bits give a uniform float in [0, 1).
        let f = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        f < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<i64> = (0..16).map(|_| a.gen_range(0i64..1_000_000)).collect();
        let vb: Vec<i64> = (0..16).map(|_| b.gen_range(0i64..1_000_000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "got {hits}");
    }
}
