//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion API the workspace's benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `iter`,
//! `iter_batched`, throughput/sample-size knobs and the two macros) with a
//! simple but real measurement loop: calibrated warm-up, fixed number of
//! timed samples, mean/stddev/min reported in ns per iteration.
//!
//! Two environment variables adjust behaviour:
//!
//! * `TROD_BENCH_JSON=<path>` — append one JSON object per benchmark to
//!   `<path>` (JSON Lines), which `scripts/bench.sh` aggregates into the
//!   committed `BENCH_PR*.json` artifacts.
//! * `TROD_BENCH_MS=<millis>` — measurement budget per benchmark
//!   (default 300 ms; CI sets a smaller value to keep runs quick).

use std::fmt;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Number of timed samples collected per benchmark.
const SAMPLES_DEFAULT: usize = 15;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation attached to a group; reported alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How `iter_batched` amortises setup cost. The stub treats all variants
/// identically (one setup per timed invocation, setup excluded from the
/// timed region), which matches criterion's `PerIteration` semantics and
/// is correct — just slower to calibrate — for the others.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id (plain strings or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The measurement driver handed to bench closures.
pub struct Bencher {
    budget: Duration,
    samples: usize,
    /// Mean nanoseconds per iteration of each timed sample.
    sample_means: Vec<f64>,
}

impl Bencher {
    fn new(budget: Duration, samples: usize) -> Self {
        Bencher {
            budget,
            samples,
            sample_means: Vec::new(),
        }
    }

    /// Times `routine` in a calibrated loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in one sample's time slice?
        let slice = self.budget.as_secs_f64() / self.samples as f64;
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed >= slice / 4.0 || iters_per_sample >= (1 << 24) {
                // Scale so one sample lands near the slice.
                let per_iter = elapsed / iters_per_sample as f64;
                iters_per_sample = ((slice / per_iter.max(1e-9)) as u64).clamp(1, 1 << 26);
                break;
            }
            iters_per_sample *= 2;
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.sample_means
                .push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One setup + one timed invocation per iteration; calibration picks
        // how many (setup, routine) pairs make up a sample.
        let slice = self.budget.as_secs_f64() / self.samples as f64;
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let per_iter = start.elapsed().as_secs_f64();
        let iters_per_sample = ((slice / per_iter.max(1e-9)) as u64).clamp(1, 1 << 20);
        for _ in 0..self.samples {
            let mut total = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                total += start.elapsed();
            }
            self.sample_means
                .push(total.as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    /// Like [`Bencher::iter_batched`] but the routine borrows the input.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(&mut setup, |mut input| routine(&mut input), size);
    }
}

#[derive(Debug, Clone)]
struct BenchStats {
    mean_ns: f64,
    stddev_ns: f64,
    min_ns: f64,
    samples: usize,
}

fn stats_of(samples: &[f64]) -> BenchStats {
    let n = samples.len().max(1) as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    BenchStats {
        mean_ns: mean,
        stddev_ns: var.sqrt(),
        min_ns: samples.iter().copied().fold(f64::INFINITY, f64::min),
        samples: samples.len(),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Top-level harness state.
pub struct Criterion {
    budget: Duration,
    json_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("TROD_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(300);
        Criterion {
            budget: Duration::from_millis(ms),
            json_path: std::env::var("TROD_BENCH_JSON").ok(),
        }
    }
}

impl Criterion {
    /// Accepted for compatibility with `criterion_group!`'s expansion.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            samples: SAMPLES_DEFAULT,
            budget: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let name = id.into_id();
        self.run_one(&name, None, SAMPLES_DEFAULT, self.budget, f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        full_id: &str,
        throughput: Option<Throughput>,
        samples: usize,
        budget: Duration,
        mut f: F,
    ) {
        let mut bencher = Bencher::new(budget, samples);
        f(&mut bencher);
        if bencher.sample_means.is_empty() {
            println!("{full_id:<58} (no measurement taken)");
            return;
        }
        let stats = stats_of(&bencher.sample_means);
        let mut line = format!(
            "{full_id:<58} time: [{} ± {}] (min {})",
            format_ns(stats.mean_ns),
            format_ns(stats.stddev_ns),
            format_ns(stats.min_ns),
        );
        let mut elems_per_sec = None;
        if let Some(Throughput::Elements(n)) = throughput {
            let rate = n as f64 * 1e9 / stats.mean_ns;
            elems_per_sec = Some(rate);
            line.push_str(&format!("  thrpt: {rate:.0} elem/s"));
        }
        println!("{line}");
        if let Some(path) = &self.json_path {
            let mut json = format!(
                "{{\"id\":\"{}\",\"mean_ns\":{:.1},\"stddev_ns\":{:.1},\"min_ns\":{:.1},\"samples\":{}",
                json_escape(full_id),
                stats.mean_ns,
                stats.stddev_ns,
                stats.min_ns,
                stats.samples
            );
            if let Some(rate) = elems_per_sec {
                json.push_str(&format!(",\"elements_per_sec\":{rate:.0}"));
            }
            json.push('}');
            if let Some(parent) = std::path::Path::new(path).parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            match OpenOptions::new().create(true).append(true).open(path) {
                Ok(mut file) => {
                    let _ = writeln!(file, "{json}");
                }
                Err(e) => eprintln!("TROD_BENCH_JSON: cannot open {path}: {e}"),
            }
        }
    }

    /// Accepted for compatibility; the stub has no plotting backend.
    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    samples: usize,
    budget: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion requires >= 10; the stub just bounds it to something sane.
        self.samples = n.clamp(3, 1000);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = Some(d);
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id.into_id());
        let budget = self.budget.unwrap_or(self.criterion.budget);
        let (throughput, samples) = (self.throughput, self.samples);
        self.criterion
            .run_one(&full_id, throughput, samples, budget, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Declares a group runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_produces_samples() {
        let mut c = Criterion {
            budget: Duration::from_millis(20),
            json_path: None,
        };
        let mut group = c.benchmark_group("stub");
        group.sample_size(5);
        group.bench_function("noop_add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            });
        });
        group.finish();
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion {
            budget: Duration::from_millis(20),
            json_path: None,
        };
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 128],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).into_id(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
    }

    #[test]
    fn stats_math() {
        let s = stats_of(&[1.0, 3.0]);
        assert!((s.mean_ns - 2.0).abs() < 1e-9);
        assert!((s.stddev_ns - 1.0).abs() < 1e-9);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.samples, 2);
    }
}
