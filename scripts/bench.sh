#!/usr/bin/env bash
# Runs the criterion suite and aggregates the results into a committed
# perf-trajectory artifact (BENCH_PR<N>.json).
#
# Usage:
#   scripts/bench.sh                  # writes BENCH_PR1.json
#   scripts/bench.sh BENCH_PR2.json   # explicit output name
#   BENCH_FILTER=commit_validation scripts/bench.sh   # one bench target
#   TROD_BENCH_MS=100 scripts/bench.sh                # faster, noisier
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR1.json}"
# Absolute path: cargo runs bench binaries from the package directory.
jsonl="$PWD/target/bench-results.jsonl"
rm -f "$jsonl"
mkdir -p target

if [[ -n "${BENCH_FILTER:-}" ]]; then
  TROD_BENCH_JSON="$jsonl" cargo bench -p trod-bench --bench "$BENCH_FILTER"
else
  TROD_BENCH_JSON="$jsonl" cargo bench -p trod-bench
fi

TROD_RUSTC_VERSION="$(rustc --version)" \
  cargo run --release -p trod-bench --bin report -- bench-json "$jsonl" "$out"
