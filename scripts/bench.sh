#!/usr/bin/env bash
# Runs the criterion suite and aggregates the results into a committed
# perf-trajectory artifact (BENCH_PR<N>.json).
#
# Usage:
#   scripts/bench.sh                  # writes BENCH_PR2.json (current PR)
#   scripts/bench.sh BENCH_PR3.json   # explicit output name
#   BENCH_FILTER=commit_validation scripts/bench.sh            # one target
#   BENCH_FILTER="commit_validation commit_sharding" scripts/bench.sh
#   TROD_BENCH_MS=100 scripts/bench.sh                # faster, noisier
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR2.json}"
# Absolute path: cargo runs bench binaries from the package directory.
jsonl="$PWD/target/bench-results.jsonl"
rm -f "$jsonl"
mkdir -p target

if [[ -n "${BENCH_FILTER:-}" ]]; then
  # BENCH_FILTER may name several bench targets, space-separated.
  bench_flags=()
  for target in $BENCH_FILTER; do
    bench_flags+=(--bench "$target")
  done
  TROD_BENCH_JSON="$jsonl" cargo bench -p trod-bench "${bench_flags[@]}"
else
  TROD_BENCH_JSON="$jsonl" cargo bench -p trod-bench
fi

TROD_RUSTC_VERSION="$(rustc --version)" \
  cargo run --release -p trod-bench --bin report -- bench-json "$jsonl" "$out"
