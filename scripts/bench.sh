#!/usr/bin/env bash
# Runs the criterion suite and aggregates the results into a committed
# perf-trajectory artifact (BENCH_PR<N>.json).
#
# Usage:
#   scripts/bench.sh                  # writes BENCH_PR10.json (current PR)
#   scripts/bench.sh BENCH_PR11.json  # explicit output name
#   BENCH_FILTER=commit_validation scripts/bench.sh            # one target
#   BENCH_FILTER="commit_validation scan_path" scripts/bench.sh
#   TROD_BENCH_MS=100 scripts/bench.sh                # faster, noisier
#
# BENCH_PR<N>.json schema ("trod-bench/v1"): a JSON object with
#   schema   - artifact format tag
#   rustc    - toolchain the run used
#   note     - units reminder
#   results  - one object per benchmark, sorted by id:
#     id               - criterion path (group/function/parameter)
#     mean_ns          - mean wall time per iteration
#     stddev_ns/min_ns - spread across samples
#     samples          - measurement count
#     elements_per_sec - optional; present when the bench declares
#                        throughput (e.g. rows served per second)
#
# New ids in BENCH_PR10.json:
#   `wal_commit/recovery_checkpoint/<mode>/commits_4096` for <mode> in
#   {full_replay, checkpoint} — recovery of the SAME 4096-commit
#   update-heavy history (512 live keys) without and with an environment
#   checkpoint at its head (the PR 10 bar: checkpoint boot ≥ 5× faster
#   than full replay).
#   `fork_depth/below_floor/<mode>/depth_<D>` for D in {256, 1024, 4096}
#   — `Trod::fork_at` below the GC floor against the same 8192-commit
#   history, with_checkpoints (nearest-checkpoint + delta replay) vs
#   full_replay (full stitched replay of the spill); the PR 10 bar:
#   with_checkpoints at depth 4096 ≥ 5× faster than full_replay.
#
# Carried from PR 9:
#   `wal_commit/throughput/group/sync/roll/threads_<T>` — 8-thread group
#   commit with a 16 KiB segment bound (several rotations per round);
#   the rotation protocol must hide inside the group-commit window, so
#   this should sit within noise of `group/sync`.
#   `wal_commit/recovery_segments/open_durable/segments_<N>` for N in
#   {1, 4, 16} — recovery of the SAME 1024-commit history split across N
#   segment files (the PR 9 bar: per-commit recovery cost at 16 segments
#   within 2× of single-segment).
#
# Carried from PR 8: `server_throughput/point_reads/conns_<N>`
# for N in {16, 64, 128, 512} — wire-level `trod_get` point reads over N
# concurrent keep-alive HTTP/1.1 connections against the
# thread-per-connection JSON-RPC server; elements are completed
# request/response cycles, so `elements_per_sec` is served requests per
# second (the PR 8 bar: ≥ 10k req/s at ≥ 128 connections).
#
# Carried from PR 7: `read_scaling/hot_reads/<mode>/threads_<T>` where
# <mode> is `ssi` (lock-free serializable readers, the default) or
# `read_lock` (the 2PL read-locking baseline via set_read_lock_commit).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR10.json}"
# Absolute path: cargo runs bench binaries from the package directory.
jsonl="$PWD/target/bench-results.jsonl"
rm -f "$jsonl"
mkdir -p target

if [[ -n "${BENCH_FILTER:-}" ]]; then
  # BENCH_FILTER may name several bench targets, space-separated.
  bench_flags=()
  for target in $BENCH_FILTER; do
    bench_flags+=(--bench "$target")
  done
  TROD_BENCH_JSON="$jsonl" cargo bench -p trod-bench "${bench_flags[@]}"
else
  TROD_BENCH_JSON="$jsonl" cargo bench -p trod-bench
fi

TROD_RUSTC_VERSION="$(rustc --version)" \
  cargo run --release -p trod-bench --bin report -- bench-json "$jsonl" "$out"
