//! Multiple data stores under one provenance history (paper §5).
//!
//! A checkout service keeps orders and inventory in the relational
//! database and per-user cart sessions in a key-value store. The
//! unified transaction session commits each request atomically across
//! both stores, stamps both with the same commit timestamp, and emits one
//! provenance record per transaction — so the ordinary TROD workflow
//! (Table 1/Table 2 queries, "who wrote this key?", privacy redaction)
//! works unchanged for a polyglot application.
//!
//! Run with: `cargo run --example multistore_tracing`

use trod::db::{row, DataType, Database, Key, Predicate, Schema, Value};
use trod::kv::{kv_provenance_schema, kv_table_name, KvStore, Session};
use trod::provenance::ProvenanceStore;
use trod::trace::{Tracer, TxnContext};

fn main() {
    // 1. The two stores: relational (orders, inventory) and key-value
    //    (session carts) — the heterogeneous layout the paper's §5
    //    describes as typical for microservices.
    let db = Database::new();
    db.create_table(
        "orders",
        Schema::builder()
            .column("id", DataType::Int)
            .column("customer", DataType::Text)
            .column("item", DataType::Text)
            .primary_key(&["id"])
            .build()
            .expect("schema is valid"),
    )
    .expect("fresh database");
    db.create_table(
        "inventory",
        Schema::builder()
            .column("item", DataType::Text)
            .column("stock", DataType::Int)
            .primary_key(&["item"])
            .build()
            .expect("schema is valid"),
    )
    .expect("fresh database");
    let kv = KvStore::new();
    kv.create_namespace("sessions").expect("fresh namespace");

    // 2. The unified transaction session, with TROD tracing attached,
    //    and a provenance database that knows about both stores.
    let tracer = Tracer::new();
    let cross = Session::with_tracer(db.clone(), kv, tracer.clone());
    let provenance = ProvenanceStore::new();
    for table in ["orders", "inventory"] {
        provenance
            .register_table(table, &db.schema_of(table).expect("table exists"))
            .expect("register relational table");
    }
    provenance
        .register_table_as(
            &kv_table_name("sessions"),
            "SessionEvents",
            &kv_provenance_schema(),
        )
        .expect("register KV namespace");

    // Seed inventory.
    let mut seed = cross.begin_traced(TxnContext::new("R0", "seed", "func:seed"));
    seed.insert("inventory", row!["widget", 5i64])
        .expect("insert stock");
    seed.insert("inventory", row!["gadget", 2i64])
        .expect("insert stock");
    seed.commit().expect("seed commit");

    // 3. Serve checkouts: each request reads and writes *both* stores in
    //    one atomic cross-store transaction.
    for (req, order_id, customer, item) in [
        ("R1", 1i64, "alice", "widget"),
        ("R2", 2i64, "bob", "gadget"),
        ("R3", 3i64, "alice", "widget"),
    ] {
        let mut txn = cross.begin_traced(TxnContext::new(req, "checkout", "func:placeOrder"));
        let stock_key = Key::single(item);
        let stock_row = txn
            .get("inventory", &stock_key)
            .expect("read stock")
            .expect("item exists");
        let stock = stock_row[1].as_int().unwrap_or(0);
        txn.update("inventory", &stock_key, row![item, stock - 1])
            .expect("decrement stock");
        txn.insert("orders", row![order_id, customer, item])
            .expect("insert order");
        txn.kv_put(
            "sessions",
            &format!("cart:{customer}"),
            &format!("order:{order_id}"),
        )
        .expect("update session");
        let commit = txn.commit().expect("checkout commit");
        println!(
            "{req}: order {order_id} committed at ts {} ({} relational changes, {} kv writes)",
            commit.commit_ts, commit.relational_changes, commit.kv_writes
        );
    }

    // 4. One aligned history: the cross-store log and the relational
    //    transaction log agree, and provenance covers both stores.
    provenance.ingest(tracer.drain());
    println!(
        "\naligned cross-store commits: {}",
        cross.aligned_log().len()
    );
    let executions = provenance
        .query("SELECT TxnId, ReqId, HandlerName, CommitTs FROM Executions ORDER BY CommitTs")
        .expect("query Executions");
    println!("Executions (paper Table 1, spanning both stores):\n{executions}");

    let session_events = provenance
        .query("SELECT TxnId, Type, kv_key, kv_value FROM SessionEvents ORDER BY EventId")
        .expect("query SessionEvents");
    println!("SessionEvents (paper Table 2 for the key-value store):\n{session_events}");

    // 5. Declarative debugging across stores: which requests touched
    //    alice's session cart?
    let who = provenance
        .query(
            "SELECT ReqId, HandlerName, kv_value FROM Executions as E, SessionEvents as S \
             ON E.TxnId = S.TxnId WHERE S.kv_key = 'cart:alice' ORDER BY Timestamp",
        )
        .expect("join query");
    println!("requests that wrote cart:alice:\n{who}");

    // 6. Privacy: alice requests erasure. Her session provenance is
    //    redacted; execution metadata and everyone else's data survive.
    let report = provenance
        .redact_rows(
            &kv_table_name("sessions"),
            &[("kv_key", Value::Text("cart:alice".into()))],
        )
        .expect("redaction");
    println!(
        "redacted {} provenance entries across {} transactions for alice",
        report.total(),
        report.transactions_affected
    );
    let after = provenance
        .query("SELECT Type, kv_key, kv_value FROM SessionEvents ORDER BY EventId")
        .expect("query after redaction");
    println!("SessionEvents after erasure:\n{after}");

    // 7. The stores themselves stay consistent: stock was decremented
    //    exactly once per order.
    let widget = db
        .get_latest("inventory", &Key::single("widget"))
        .expect("read stock")
        .expect("row exists");
    let orders = db
        .scan_latest("orders", &Predicate::True)
        .expect("scan orders");
    println!(
        "\nfinal state: widget stock = {}, orders placed = {}",
        widget[1],
        orders.len()
    );
}
