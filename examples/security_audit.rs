//! Security forensics with TROD (paper §4.2).
//!
//! A profile service is attacked: one request rewrites another user's
//! profile (access-control violation), another harvests all profiles into
//! a staging table, and a third ships the staged data to an external
//! endpoint. The audit below finds all of it from provenance alone.
//!
//! Run with: `cargo run --example security_audit`

use trod::apps::profiles::{self, PROFILE_EVENTS_TABLE};
use trod::prelude::*;

fn main() {
    // --- Production ------------------------------------------------------
    let db = profiles::profiles_db();
    let provenance = profiles::provenance_for(&db);
    let runtime = Runtime::new(db, profiles::registry());

    for (user, email) in [("alice", "a@example.org"), ("bob", "b@example.org")] {
        runtime.must_handle(
            "createProfile",
            Args::new().with("user_name", user).with("email", email),
        );
    }
    runtime.must_handle(
        "updateProfile",
        profiles::update_args("alice", "alice", "hi there"),
    );

    // The attack.
    runtime.handle_request_with_id(
        "ATTACK-1",
        "updateProfile",
        profiles::update_args("bob", "mallory", "defaced"),
    );
    runtime.handle_request_with_id(
        "ATTACK-2",
        "harvestProfiles",
        Args::new().with("batch", "B1"),
    );
    runtime.handle_request_with_id("ATTACK-3", "syncStaging", Args::new().with("batch", "B1"));

    provenance.ingest(runtime.tracer().drain());
    let trod = Trod::attach_with(runtime, provenance);

    // --- Audit 1: the User-Profiles access-control pattern ----------------
    println!("== User-Profiles pattern check (paper's SQL query) ==");
    let sql = format!(
        "SELECT Timestamp, ReqId, HandlerName \
         FROM Executions as E, {PROFILE_EVENTS_TABLE} as P ON E.TxnId = P.TxnId \
         WHERE P.user_name != P.updated_by AND P.Type = 'Update'"
    );
    println!("{}", trod.query(&sql).expect("pattern query"));

    let violations = trod
        .security()
        .user_profile_violations(PROFILE_EVENTS_TABLE, "user_name", "updated_by")
        .expect("pattern query");
    for v in &violations {
        println!(
            "violation: request {} via {} — {}",
            v.req_id, v.handler, v.detail
        );
    }

    // --- Audit 2: who read profiles without being an entry point? ---------
    println!("\n== Authentication pattern check ==");
    let readers = trod
        .security()
        .unauthenticated_reads(PROFILE_EVENTS_TABLE, &["viewProfile", "updateProfile"])
        .expect("pattern query");
    for r in &readers {
        println!("suspicious read: request {} via {}", r.req_id, r.handler);
    }

    // --- Audit 3: did the harvested data leave the system? ----------------
    println!("\n== Data-flow trace from the harvesting request ==");
    let flow = trod.security().trace_data_flow("ATTACK-2");
    println!("tainted requests: {:?}", flow.tainted_requests);
    println!("tainted writes:   {:?}", flow.tainted_writes);
    for (req, service, payload) in &flow.exfiltration_candidates {
        println!("EXFILTRATION: request {req} sent data to `{service}`: {payload}");
    }

    // --- Remediation: retroactively verify the access-control fix ---------
    println!("\n== Retroactive test of the patched updateProfile ==");
    let report = trod
        .retroactive(profiles::patched_registry())
        .requests(&["ATTACK-1"])
        .run()
        .expect("retroactive run");
    for outcome in &report.orderings[0].outcomes {
        println!(
            "re-executed {} with the patch: ok = {} (production outcome was ok = {:?}) -> {}",
            outcome.original_req_id, outcome.ok, outcome.original_ok, outcome.output
        );
    }
}
