//! Quickstart: build a tiny database-backed application on the TROD
//! runtime, serve a few requests under always-on tracing, then debug it —
//! query the provenance database and faithfully replay a past request.
//!
//! Run with: `cargo run --example quickstart`

use trod::prelude::*;

fn main() {
    // 1. The application database (principle P1: all shared state lives here).
    let db = Database::new();
    db.create_table(
        "accounts",
        Schema::builder()
            .column("name", DataType::Text)
            .column("balance", DataType::Int)
            .primary_key(&["name"])
            .build()
            .expect("schema is valid"),
    )
    .expect("fresh database");

    // 2. The application: deterministic request handlers that touch shared
    //    state only through transactions (principles P2/P3).
    let registry = HandlerRegistry::new()
        .with_fn("open_account", |ctx, args| {
            let name = args.get_str("name").unwrap_or("anon").to_string();
            let mut txn = ctx.txn("func:open_account");
            txn.insert("accounts", row![name, 100i64])?;
            txn.commit()?;
            Ok(Value::Bool(true))
        })
        .with_fn("transfer", |ctx, args| {
            let from = args.get_str("from").unwrap_or_default().to_string();
            let to = args.get_str("to").unwrap_or_default().to_string();
            let amount = args.get_int("amount").unwrap_or(0);
            let mut txn = ctx.txn("func:transfer");
            let from_key = Key::single(from.clone());
            let to_key = Key::single(to.clone());
            let from_row = txn
                .get("accounts", &from_key)?
                .ok_or_else(|| HandlerError::App(format!("no account {from}")))?;
            let to_row = txn
                .get("accounts", &to_key)?
                .ok_or_else(|| HandlerError::App(format!("no account {to}")))?;
            let from_balance = from_row[1].as_int().unwrap_or(0);
            if from_balance < amount {
                return Err(HandlerError::App("insufficient funds".into()));
            }
            txn.update("accounts", &from_key, row![from, from_balance - amount])?;
            txn.update(
                "accounts",
                &to_key,
                row![to, to_row[1].as_int().unwrap_or(0) + amount],
            )?;
            txn.commit()?;
            Ok(Value::Int(from_balance - amount))
        });

    // 3. The production runtime with TROD attached (paper Figure 2).
    let runtime = Runtime::new(db, registry);
    let trod = Trod::attach(runtime).expect("attach TROD");

    // 4. Serve traffic. Every handler invocation and every transaction is
    //    traced automatically; no logging code was written above.
    for name in ["alice", "bob"] {
        trod.runtime()
            .must_handle("open_account", Args::new().with("name", name));
    }
    let transfer = trod.runtime().handle_request(
        "transfer",
        Args::new()
            .with("from", "alice")
            .with("to", "bob")
            .with("amount", 30i64),
    );
    println!(
        "transfer request {} -> {:?}",
        transfer.req_id, transfer.output
    );

    // 5. Move the trace buffer into the provenance database (a production
    //    deployment runs a background flusher instead).
    let flushed = trod.sync();
    println!("flushed {flushed} trace events into the provenance database\n");

    // 6. Declarative debugging: plain SQL over the captured history.
    let executions = trod
        .query("SELECT TxnId, HandlerName, ReqId, Metadata FROM Executions ORDER BY Timestamp")
        .expect("query provenance");
    println!("Executions (paper Table 1):\n{executions}");

    let writers = trod
        .declarative()
        .find_writers("accounts", "Update", &[("name", "alice")])
        .expect("query provenance");
    println!("requests that updated alice's account: {writers:?}\n");

    // 7. Faithful replay of the transfer request in a development database.
    let mut session = trod.replay(&transfer.req_id).expect("request was traced");
    while let Some(step) = session.step().expect("replay step") {
        println!(
            "replayed {} ({}): {} concurrent txns injected, {} reads verified, faithful = {}",
            step.function,
            step.handler,
            step.injected.len(),
            step.reads_checked,
            step.is_faithful()
        );
    }
    let alice = session
        .dev_db()
        .get_latest("accounts", &Key::single("alice"))
        .expect("dev db readable");
    println!("alice in the development database after replay: {alice:?}");
}
