//! The paper's running example, end to end (MDL-59854, §2–§3.6).
//!
//! 1. Reproduce the concurrency bug in "production".
//! 2. Locate the offending requests with a declarative provenance query.
//! 3. Faithfully replay one of them and watch the interleaved insert land
//!    between its two transactions.
//! 4. Retroactively test the bug-fix patch against the original requests.
//!
//! Run with: `cargo run --example moodle_debugging`

use trod::apps::moodle::{self, FORUM_SUB_TABLE};
use trod::prelude::*;

fn main() {
    // --- Production ------------------------------------------------------
    // Two users' browsers double-submit the same subscription while a
    // third request lists the subscribers. The scripted scheduler forces
    // the unlucky interleaving the bug reporter needed to be "pretty fast
    // and pretty lucky" to hit.
    let scenario = moodle::toctou_scenario();
    let fetch_error = scenario.run();
    println!("production symptom: fetchSubscribers failed with: {fetch_error:?}");

    let duplicates = scenario
        .runtime
        .database()
        .scan_latest(
            FORUM_SUB_TABLE,
            &Predicate::eq("user_id", "U1").and(Predicate::eq("forum", "F2")),
        )
        .expect("scan forum_sub");
    println!(
        "forum_sub now contains {} rows for (U1, F2)\n",
        duplicates.len()
    );

    let trod = scenario.into_trod();

    // --- Declarative debugging (§3.3) -------------------------------------
    let query = "SELECT Timestamp, ReqId, HandlerName \
                 FROM Executions as E, ForumEvents as F ON E.TxnId = F.TxnId \
                 WHERE F.user_id = 'U1' AND F.forum = 'F2' AND F.Type = 'Insert' \
                 ORDER BY Timestamp ASC";
    let result = trod.query(query).expect("provenance query");
    println!("who inserted the duplicated subscription?\n{result}");

    // --- Bug replay (§3.5, Figure 3 top) ----------------------------------
    let mut session = trod.replay("R1").expect("R1 was traced");
    println!("replaying R1 in a development database:");
    while let Some(step) = session.step().expect("replay step") {
        println!(
            "  {:<22} injected before it: {:?}  faithful: {}",
            step.function,
            step.injected
                .iter()
                .map(|(_, req)| req.clone())
                .collect::<Vec<_>>(),
            step.is_faithful()
        );
    }
    println!(
        "  development database now holds {} rows for (U1, F2) — the duplication is visible\n",
        session
            .dev_db()
            .scan_latest(
                FORUM_SUB_TABLE,
                &Predicate::eq("user_id", "U1").and(Predicate::eq("forum", "F2")),
            )
            .expect("scan dev db")
            .len()
    );

    // --- Retroactive programming (§3.6, Figure 3 bottom) -------------------
    // Test the proposed fix (check + insert in one transaction) against the
    // original production requests, over every relevant interleaving.
    let report = trod
        .retroactive(moodle::patched_registry())
        .requests(&["R1", "R2", "R3"])
        .invariant(Invariant::no_duplicates(
            FORUM_SUB_TABLE,
            &["user_id", "forum"],
        ))
        .run()
        .expect("retroactive run");
    println!(
        "retroactive testing of the patch: {} orderings explored ({} conflicting request pairs)",
        report.orderings.len(),
        report.conflicting_pairs
    );
    for ordering in &report.orderings {
        let outcomes: Vec<String> = ordering
            .outcomes
            .iter()
            .map(|o| format!("{} {}", o.req_id, if o.ok { "ok" } else { "FAILED" }))
            .collect();
        println!(
            "  order {:?}: {} | invariant violations: {}",
            ordering.order,
            outcomes.join(", "),
            ordering.violations.len()
        );
    }
    println!(
        "patch verdict: {}",
        if report.all_orderings_clean() {
            "no duplicates under any interleaving — safe to ship"
        } else {
            "still buggy"
        }
    );
}
