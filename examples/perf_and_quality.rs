//! Performance debugging, data-quality debugging and privacy redaction —
//! the paper's §5 research directions — on the e-commerce case-study
//! application.
//!
//! The same always-on provenance that answers correctness questions also
//! answers "which handler is slow?", "which request wrote this bad row?"
//! and "erase everything about this user", with no extra instrumentation.
//!
//! Run with: `cargo run --example perf_and_quality`

use trod::apps::{shop, shop_workload, WorkloadConfig};
use trod::prelude::*;

fn main() {
    // 1. The e-commerce application (checkout → reserve inventory → charge
    //    → record order) on the TROD runtime, with tracing always on.
    let db = shop::shop_db();
    shop::seed_inventory(&db, 20, 50);
    let runtime = Runtime::new(db, shop::registry());
    let trod = Trod::attach(runtime).expect("attach TROD");

    // 2. Serve a small production workload.
    let cfg = WorkloadConfig::small();
    let requests = shop_workload(&cfg);
    let mut served = 0usize;
    for (handler, args) in requests {
        let result = trod.runtime().handle_request(&handler, args);
        if result.is_ok() {
            served += 1;
        }
    }
    let flushed = trod.sync();
    println!("served {served} requests, flushed {flushed} trace events\n");

    // 3. Performance debugging (§5): per-handler latency distributions and
    //    the slowest end-to-end requests, straight from provenance.
    let perf = trod.perf();
    println!("handler latencies (slowest first):");
    for stat in perf.handler_latencies() {
        println!(
            "  {:<18} invocations={:<4} errors={:<3} mean={:>8.1}us p50={:>6}us p95={:>6}us max={:>6}us txns={}",
            stat.handler,
            stat.invocations,
            stat.errors,
            stat.mean_us,
            stat.p50_us,
            stat.p95_us,
            stat.max_us,
            stat.transactions
        );
    }
    if let Some(slowest) = perf.all_request_profiles().into_iter().next() {
        println!(
            "\nslowest request {} ({} invocations, {} transactions, end-to-end {:?}us):",
            slowest.req_id, slowest.invocations, slowest.transactions, slowest.end_to_end_us
        );
        print_span(&slowest.root, 1);
    }

    // 4. Data-quality debugging (§5): declare the invariants the data
    //    should satisfy, and blame any violation on the requests that
    //    wrote the offending rows.
    let rules = [
        QualityRule::unique(shop::ORDERS_TABLE, &["order_id"]),
        QualityRule::range(shop::INVENTORY_TABLE, "stock", 0.0, 1_000_000.0),
        QualityRule::foreign_key(
            shop::PAYMENTS_TABLE,
            "order_id",
            shop::ORDERS_TABLE,
            "order_id",
        ),
    ];
    let report = trod.quality().check(&rules).expect("quality rules run");
    println!(
        "\ndata quality: {} rules checked, {} violations",
        report.rules_checked,
        report.violations.len()
    );
    for blamed in &report.violations {
        println!(
            "  violation: {} — {}",
            blamed.violation.rule, blamed.violation.detail
        );
        for culprit in &blamed.culprits {
            println!(
                "    written by request {} (handler {}, txn {})",
                culprit.req_id, culprit.handler, culprit.txn_id
            );
        }
    }
    if report.is_clean() {
        println!(
            "  (the workload kept every invariant — as it should under serializable transactions)"
        );
    }

    // 5. Privacy (§5): a customer requests erasure. Their order provenance
    //    is redacted and old traces beyond the retention window dropped,
    //    while the execution history stays queryable.
    let customer = "user-0";
    let redaction = trod
        .provenance()
        .redact_rows(
            shop::ORDERS_TABLE,
            &[("customer", Value::Text(customer.into()))],
        )
        .expect("redaction");
    println!(
        "\nprivacy: redacted {} provenance entries ({} transactions) for {customer}",
        redaction.total(),
        redaction.transactions_affected
    );
    let stats_before = trod.provenance().stats();
    let horizon = trod.runtime().tracer().now();
    let retention = trod.provenance().retain_since(horizon).expect("retention");
    println!(
        "retention: dropped {} archived transactions and {} provenance rows (had {} transactions)",
        retention.transactions_dropped, retention.rows_deleted, stats_before.transactions
    );
}

fn print_span(span: &trod::core::SpanNode, depth: usize) {
    println!(
        "{}{} latency={:?}us transactions={}",
        "  ".repeat(depth),
        span.handler,
        span.latency_us,
        span.transactions
    );
    for child in &span.children {
        print_span(child, depth + 1);
    }
}
