//! Retroactive programming in depth (paper §3.6 and §4.1).
//!
//! Shows the full bug-fix validation loop the paper advocates:
//!
//! 1. Production hits MDL-59854 (duplicate subscriptions) *and* the
//!    follow-on MDL-60669 (course restore fails on the corrupted data).
//! 2. The developer patches `subscribeUser`.
//! 3. TROD re-executes the original requests — including the course
//!    restore — against the patch, over every relevant interleaving, and
//!    checks invariants on each outcome, catching regressions *before*
//!    the patch ships.
//!
//! Run with: `cargo run --example retroactive_fix`

use trod::apps::moodle::{self, FORUM_SUB_TABLE, RESTORED_SUB_TABLE};
use trod::prelude::*;

fn main() {
    // --- Production history -----------------------------------------------
    let scenario = moodle::toctou_scenario();
    scenario.runtime.must_handle(
        "createForum",
        Args::new().with("forum", "F2").with("course", "C1"),
    );
    let fetch_error = scenario.run();
    scenario
        .runtime
        .must_handle("deleteCourse", Args::new().with("course", "C1"));
    let restore = scenario.runtime.handle_request_with_id(
        "R4",
        "restoreCourse",
        Args::new().with("course", "C1"),
    );
    println!("production: fetchSubscribers error = {fetch_error:?}");
    println!(
        "production: restoreCourse outcome  = {:?}\n",
        restore.output
    );

    let trod = scenario.into_trod();

    // --- Which orderings will be explored? ---------------------------------
    let buggy_first = trod
        .retroactive(moodle::registry())
        .requests(&["R1", "R2", "R3", "R4"])
        .max_orderings(24)
        .invariant(Invariant::no_duplicates(
            FORUM_SUB_TABLE,
            &["user_id", "forum"],
        ))
        .run()
        .expect("retroactive run with the original code");
    println!(
        "re-executing the ORIGINAL code serially: {} orderings explored, {} conflicting pairs",
        buggy_first.orderings.len(),
        buggy_first.conflicting_pairs
    );
    println!(
        "  (serial re-execution hides the race — that is exactly why retroactive testing must \
         also be run against the patch under every ordering, not just the original one)\n"
    );

    // --- Retroactive validation of the patch -------------------------------
    let report = trod
        .retroactive(moodle::patched_registry())
        .requests(&["R1", "R2", "R3", "R4"])
        .max_orderings(24)
        .invariant(Invariant::no_duplicates(
            FORUM_SUB_TABLE,
            &["user_id", "forum"],
        ))
        .invariant(Invariant::no_duplicates(
            RESTORED_SUB_TABLE,
            &["user_id", "forum"],
        ))
        .run()
        .expect("retroactive run with the patch");

    println!(
        "re-executing the PATCHED code: {} orderings explored (snapshot ts = {})",
        report.orderings.len(),
        report.snapshot_ts
    );
    for ordering in &report.orderings {
        let summary: Vec<String> = ordering
            .outcomes
            .iter()
            .map(|o| {
                format!(
                    "{}:{}{}",
                    o.req_id,
                    if o.ok { "ok" } else { "err" },
                    if o.outcome_changed() { "*" } else { "" }
                )
            })
            .collect();
        println!(
            "  {:?} -> {} | violations: {:?}",
            ordering.order,
            summary.join(" "),
            ordering.violations
        );
    }
    println!(
        "\nchanged outcomes vs production (marked * above): {:?}",
        report
            .changed_outcomes()
            .iter()
            .map(|o| format!("{} ({})", o.original_req_id, o.handler))
            .collect::<Vec<_>>()
    );
    println!(
        "verdict: {}",
        if report.all_orderings_clean() {
            "the patch fixes MDL-59854 without reintroducing MDL-60669"
        } else {
            "the patch is not safe"
        }
    );
}
