//! The MediaWiki case studies (paper §4.1): MW-44325 duplicate site links
//! and MW-39225 wrong article-size history, reproduced, diagnosed and
//! verified fixed with TROD.
//!
//! Run with: `cargo run --example mediawiki_races`

use std::sync::Arc;

use trod::apps::mediawiki::{self, PAGES_TABLE, REVISIONS_TABLE, SITE_LINKS_TABLE};
use trod::prelude::*;

fn main() {
    sitelink_duplicates();
    println!();
    wrong_article_size();
}

/// MW-44325: concurrent edits create duplicated site URL links.
fn sitelink_duplicates() {
    println!("== MW-44325: duplicate site links ==");
    let db = mediawiki::mediawiki_db();
    let provenance = mediawiki::provenance_for(&db);
    let scheduler = Arc::new(Scheduler::scripted(mediawiki::sitelink_race_script(
        "E1", "E2",
    )));
    let runtime = Runtime::builder(db, mediawiki::registry())
        .default_isolation(IsolationLevel::ReadCommitted)
        .scheduler(scheduler)
        .request_prefix("AUX-")
        .build();

    runtime.must_handle(
        "createPage",
        Args::new()
            .with("title", "Berlin")
            .with("content", "Berlin is a city."),
    );
    std::thread::scope(|scope| {
        let r = &runtime;
        scope.spawn(move || {
            r.handle_request_with_id(
                "E1",
                "addSiteLink",
                mediawiki::sitelink_args("L1", "Berlin", "https://de.wikipedia.org/Berlin"),
            )
        });
        scope.spawn(move || {
            r.handle_request_with_id(
                "E2",
                "addSiteLink",
                mediawiki::sitelink_args("L2", "Berlin", "https://de.wikipedia.org/Berlin"),
            )
        });
    });
    let listing =
        runtime.handle_request_with_id("E3", "listSiteLinks", Args::new().with("page", "Berlin"));
    println!("production symptom: listSiteLinks -> {:?}", listing.output);

    provenance.ingest(runtime.tracer().drain());
    let trod = Trod::attach_with(runtime, provenance);

    let writers = trod
        .declarative()
        .find_writers(
            SITE_LINKS_TABLE,
            "Insert",
            &[
                ("page", "Berlin"),
                ("url", "https://de.wikipedia.org/Berlin"),
            ],
        )
        .expect("provenance query");
    println!("requests that inserted the duplicated link:");
    for w in &writers {
        println!(
            "  ts={} request={} handler={}",
            w.timestamp, w.req_id, w.handler
        );
    }

    let replay = trod
        .replay(&writers[1].req_id)
        .expect("traced request")
        .run_to_end()
        .expect("replay");
    println!(
        "replaying {}: {} concurrent transactions were injected between its transactions",
        replay.req_id,
        replay.injected_count()
    );

    let retro = trod
        .retroactive(mediawiki::patched_registry())
        .requests(&["E1", "E2", "E3"])
        .invariant(Invariant::no_duplicates(SITE_LINKS_TABLE, &["page", "url"]))
        .run()
        .expect("retroactive run");
    println!(
        "retroactive test of the atomic addSiteLink: {} orderings, all clean = {}",
        retro.orderings.len(),
        retro.all_orderings_clean()
    );
}

/// MW-39225: concurrent edits record inconsistent article-size changes.
fn wrong_article_size() {
    println!("== MW-39225: wrong article size changes ==");
    let db = mediawiki::mediawiki_db();
    let provenance = mediawiki::provenance_for(&db);
    let scheduler = Arc::new(Scheduler::scripted(mediawiki::edit_race_script("E1", "E2")));
    let runtime = Runtime::builder(db, mediawiki::registry())
        .default_isolation(IsolationLevel::ReadCommitted)
        .scheduler(scheduler)
        .request_prefix("AUX-")
        .build();
    runtime.must_handle(
        "createPage",
        Args::new().with("title", "Art").with("content", "12345"),
    );
    std::thread::scope(|scope| {
        let r = &runtime;
        scope.spawn(move || {
            r.handle_request_with_id(
                "E1",
                "editPage",
                mediawiki::edit_args("rev-a", "Art", "1234567890"),
            )
        });
        scope.spawn(move || {
            r.handle_request_with_id("E2", "editPage", mediawiki::edit_args("rev-b", "Art", "12"))
        });
    });

    let final_size = runtime
        .database()
        .get_latest(PAGES_TABLE, &Key::single("Art"))
        .expect("page readable")
        .expect("page exists")[2]
        .as_int()
        .unwrap_or(0);
    let recorded_delta: i64 = runtime
        .database()
        .scan_latest(REVISIONS_TABLE, &Predicate::True)
        .expect("revisions readable")
        .iter()
        .map(|(_, r)| r[2].as_int().unwrap_or(0))
        .sum();
    println!(
        "production symptom: final size = {final_size}, but the revision history records a total delta of {recorded_delta} (expected {})",
        final_size - 5
    );

    provenance.ingest(runtime.tracer().drain());
    let trod = Trod::attach_with(runtime, provenance);

    let editors = trod
        .declarative()
        .find_writers(PAGES_TABLE, "Update", &[("title", "Art")])
        .expect("provenance query");
    println!(
        "concurrent editors of the page: {:?}",
        editors.iter().map(|w| w.req_id.clone()).collect::<Vec<_>>()
    );

    let retro = trod
        .retroactive(mediawiki::patched_registry())
        .requests(&["E1", "E2"])
        .run()
        .expect("retroactive run");
    for ordering in &retro.orderings {
        let size = ordering
            .dev_db()
            .get_latest(PAGES_TABLE, &Key::single("Art"))
            .expect("page readable")
            .expect("page exists")[2]
            .as_int()
            .unwrap_or(0);
        let delta: i64 = ordering
            .dev_db()
            .scan_latest(REVISIONS_TABLE, &Predicate::True)
            .expect("revisions readable")
            .iter()
            .map(|(_, r)| r[2].as_int().unwrap_or(0))
            .sum();
        println!(
            "patched handler, order {:?}: final size {size}, recorded delta {delta} (consistent = {})",
            ordering.order,
            delta == size - 5
        );
    }
}
