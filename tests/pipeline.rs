//! Experiment F2: the end-to-end architecture of Figure 2.
//!
//! A production runtime serves a concurrent microservice workload while a
//! background flusher continuously moves trace events from the in-memory
//! buffer into the provenance database; afterwards the debugger answers
//! queries and replays requests from that provenance alone.

use std::sync::Arc;
use std::time::Duration;

use trod::apps::{checkout_only, shop, WorkloadConfig};
use trod::prelude::*;
use trod::trace::BackgroundFlusher;

#[test]
fn production_tracing_pipeline_with_background_flusher() {
    // Production environment: shop application under concurrent load.
    let db = shop::shop_db();
    shop::seed_inventory(&db, 20, 10_000);
    let provenance = Arc::new(shop::provenance_for(&db));
    let runtime = Runtime::new(db, shop::registry());

    // Always-on tracing flows to the provenance DB off the request path.
    let flusher = BackgroundFlusher::start(
        runtime.tracer().clone(),
        provenance.clone(),
        Duration::from_millis(2),
    );

    let cfg = WorkloadConfig {
        requests: 300,
        users: 30,
        items: 20,
        conflict_rate: 0.05,
        seed: 99,
    };
    let results = runtime.run_concurrent(checkout_only(&cfg), 8);
    let succeeded = results.iter().filter(|r| r.is_ok()).count();
    assert!(succeeded > 250, "most checkouts succeed ({succeeded}/300)");

    flusher.stop();
    assert!(
        runtime.tracer().buffer().is_empty(),
        "flusher drained everything"
    );

    // The provenance store saw every handler invocation (the checkout
    // workflow fans out into three RPCs per successful request).
    let stats = provenance.stats();
    assert!(stats.handler_invocations >= 300);
    assert!(stats.transactions >= succeeded * 3);
    assert!(stats.external_calls >= succeeded);
    assert_eq!(stats.unregistered_table_events, 0);

    // Declarative query over the captured traces: per-handler activity.
    let activity = provenance
        .query(
            "SELECT HandlerName, COUNT(*) AS n FROM Executions \
             WHERE Committed = TRUE GROUP BY HandlerName ORDER BY n DESC",
        )
        .unwrap();
    // The checkout workflow's three service handlers each ran transactions
    // (the root `checkout` handler only orchestrates RPCs).
    assert!(activity.len() >= 3);

    // Any traced request can be replayed faithfully from provenance.
    let trod = Trod::attach_with(runtime, Arc::try_unwrap(provenance).expect("sole owner"));
    let some_checkout = trod
        .provenance()
        .request_ids()
        .into_iter()
        .find(|r| {
            trod.provenance()
                .request_records(r)
                .first()
                .map(|rec| rec.handler == "checkout" && rec.ok == Some(true))
                .unwrap_or(false)
        })
        .expect("at least one successful checkout");
    let report = trod.replay(&some_checkout).unwrap().run_to_end().unwrap();
    assert!(report.is_faithful());
    assert!(
        report.steps.len() >= 3,
        "checkout spans at least three transactions"
    );
}

#[test]
fn trod_attach_registers_every_application_table() {
    let db = shop::shop_db();
    shop::seed_inventory(&db, 2, 10);
    let runtime = Runtime::new(db, shop::registry());
    let trod = Trod::attach(runtime).unwrap();

    trod.runtime()
        .must_handle("checkout", shop::checkout_args("O1", "zoe", "item-1", 1));
    let flushed = trod.sync();
    assert!(flushed >= 5);

    // Default event-table names derived from the application tables.
    for (app_table, event_table) in [
        ("inventory", "InventoryEvents"),
        ("orders", "OrdersEvents"),
        ("payments", "PaymentsEvents"),
    ] {
        assert_eq!(
            trod.provenance().event_table_for(app_table),
            Some(event_table.to_string())
        );
    }
    let orders = trod
        .query("SELECT COUNT(*) AS n FROM OrdersEvents WHERE Type = 'Insert'")
        .unwrap();
    assert_eq!(orders.value(0, "n"), Some(&Value::Int(1)));
}

#[test]
fn disabling_tracing_stops_provenance_growth_but_not_the_application() {
    let db = shop::shop_db();
    shop::seed_inventory(&db, 2, 100);
    let runtime = Runtime::new(db, shop::registry());
    let trod = Trod::attach(runtime).unwrap();

    trod.runtime()
        .must_handle("checkout", shop::checkout_args("O1", "amy", "item-0", 1));
    trod.sync();
    let before = trod.provenance().stats().transactions;

    trod.runtime().tracer().set_enabled(false);
    trod.runtime()
        .must_handle("checkout", shop::checkout_args("O2", "amy", "item-0", 1));
    trod.sync();
    assert_eq!(trod.provenance().stats().transactions, before);

    trod.runtime().tracer().set_enabled(true);
    trod.runtime()
        .must_handle("checkout", shop::checkout_args("O3", "amy", "item-0", 1));
    trod.sync();
    assert!(trod.provenance().stats().transactions > before);
}
