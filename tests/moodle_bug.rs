//! Experiment F1 / T1 / T2 / Q1: the paper's running example (MDL-59854).
//!
//! Reproduces Figure 1's buggy interleaving deterministically, then checks
//! that TROD's always-on tracing captured the provenance the paper shows
//! in Table 1 (`Executions`) and Table 2 (`ForumEvents`), and that the
//! §3.3 declarative-debugging query pinpoints the two offending requests.

use trod::apps::moodle::{self, FORUM_SUB_TABLE};
use trod::prelude::*;

#[test]
fn racy_interleaving_creates_duplicates_and_a_late_error() {
    let scenario = moodle::toctou_scenario();
    let fetch_error = scenario.run();
    // The error surfaces only at the *fetch* request, not at either insert
    // — exactly the frustrating symptom the paper describes.
    let error = fetch_error.expect("fetchSubscribers must observe the duplicates");
    assert!(error.contains("duplicate"));

    let duplicates = scenario
        .runtime
        .database()
        .scan_latest(
            FORUM_SUB_TABLE,
            &Predicate::eq("user_id", "U1").and(Predicate::eq("forum", "F2")),
        )
        .unwrap();
    assert_eq!(duplicates.len(), 2);
}

#[test]
fn provenance_tables_match_the_papers_shape() {
    let scenario = moodle::toctou_scenario();
    scenario.run();
    scenario.sync_provenance();

    // Table 1: the Executions log. Five transactions: two checks, two
    // inserts, one fetch — with the two subscribe requests interleaved.
    let executions = scenario
        .provenance
        .query(
            "SELECT TxnId, HandlerName, ReqId, Metadata, Committed \
             FROM Executions ORDER BY Timestamp ASC",
        )
        .unwrap();
    assert_eq!(executions.len(), 5);
    let handlers: Vec<String> = executions
        .column_values("HandlerName")
        .iter()
        .map(|v| v.to_string())
        .collect();
    assert_eq!(
        handlers,
        vec![
            "subscribeUser",
            "subscribeUser",
            "subscribeUser",
            "subscribeUser",
            "fetchSubscribers"
        ]
    );
    let metadata: Vec<String> = executions
        .column_values("Metadata")
        .iter()
        .map(|v| v.to_string())
        .collect();
    assert_eq!(metadata[0], "func:isSubscribed");
    assert_eq!(metadata[1], "func:isSubscribed");
    assert_eq!(metadata[2], "func:DB.insert");
    assert_eq!(metadata[3], "func:DB.insert");
    assert_eq!(metadata[4], "func:DB.executeQuery");
    // The interleaving: the two inserts belong to *different* requests in
    // the order R2 then R1 (paper Table 1, TXN3/TXN4).
    let reqs: Vec<String> = executions
        .column_values("ReqId")
        .iter()
        .map(|v| v.to_string())
        .collect();
    assert_eq!(reqs[2], "R2");
    assert_eq!(reqs[3], "R1");

    // Table 2: the ForumEvents data-operation log. Two empty-result reads
    // (NULL data columns), two inserts, and the fetch's reads.
    let events = scenario
        .provenance
        .query("SELECT Type, user_id, forum FROM ForumEvents ORDER BY EventId ASC")
        .unwrap();
    assert!(events.len() >= 6);
    assert_eq!(events.value(0, "Type"), Some(&Value::Text("Read".into())));
    assert_eq!(events.value(0, "user_id"), Some(&Value::Null));
    let inserts: Vec<_> = events
        .rows()
        .iter()
        .filter(|r| r[0] == Value::Text("Insert".into()))
        .collect();
    assert_eq!(inserts.len(), 2);
    for insert in inserts {
        assert_eq!(insert[1], Value::Text("U1".into()));
        assert_eq!(insert[2], Value::Text("F2".into()));
    }
}

#[test]
fn declarative_debugging_query_identifies_the_two_buggy_requests() {
    let scenario = moodle::toctou_scenario();
    scenario.run();
    let trod = scenario.into_trod();

    // The paper's §3.3 query (adapted to this schema's column names).
    let result = trod
        .query(
            "SELECT Timestamp, ReqId, HandlerName \
             FROM Executions as E, ForumEvents as F ON E.TxnId = F.TxnId \
             WHERE F.user_id = 'U1' AND F.forum = 'F2' AND F.Type = 'Insert' \
             ORDER BY Timestamp ASC",
        )
        .unwrap();
    assert_eq!(result.len(), 2);
    // Both rows name the same handler and two different requests with
    // adjacent timestamps — the tell-tale sign of the race.
    assert_eq!(
        result.value(0, "HandlerName"),
        Some(&Value::Text("subscribeUser".into()))
    );
    assert_eq!(
        result.value(1, "HandlerName"),
        Some(&Value::Text("subscribeUser".into()))
    );
    assert_eq!(result.value(0, "ReqId"), Some(&Value::Text("R2".into())));
    assert_eq!(result.value(1, "ReqId"), Some(&Value::Text("R1".into())));

    // The typed helper returns the same answer.
    let writers = trod
        .declarative()
        .find_writers("forum_sub", "Insert", &[("user_id", "U1"), ("forum", "F2")])
        .unwrap();
    assert_eq!(writers.len(), 2);
    assert_eq!(writers[0].req_id, "R2");
    assert_eq!(writers[1].req_id, "R1");
    assert!(writers[0].timestamp < writers[1].timestamp);

    // Concurrency analysis: R1 and R2 interleave; R3 (the fetch) ran later.
    let concurrent = trod.declarative().concurrent_requests("R1");
    assert!(concurrent.contains(&"R2".to_string()));
    assert!(!concurrent.contains(&"R3".to_string()));

    // Handler activity summary is available for a quick overview.
    let activity = trod.declarative().handler_activity().unwrap();
    assert_eq!(
        activity.value(0, "HandlerName"),
        Some(&Value::Text("subscribeUser".into()))
    );
}

#[test]
fn tracing_survives_a_realistic_mixed_workload() {
    // Beyond the 3-request example: run a mixed subscribe/fetch workload
    // and check the provenance store keeps up and stays consistent.
    let db = moodle::moodle_db();
    let provenance = moodle::provenance_for(&db);
    let runtime = Runtime::builder(db, moodle::registry())
        .default_isolation(IsolationLevel::ReadCommitted)
        .build();
    let cfg = trod::apps::WorkloadConfig {
        requests: 200,
        users: 20,
        items: 10,
        conflict_rate: 0.3,
        seed: 11,
    };
    let results = runtime.run_concurrent(trod::apps::moodle_workload(&cfg), 8);
    assert_eq!(results.len(), 200);
    provenance.ingest(runtime.tracer().drain());

    let stats = provenance.stats();
    assert_eq!(stats.handler_invocations, 200);
    assert!(
        stats.transactions >= 200,
        "every request runs at least one txn"
    );
    // Executions row count matches the archived transaction count.
    let execs = provenance
        .query("SELECT COUNT(*) AS n FROM Executions")
        .unwrap();
    assert_eq!(
        execs.value(0, "n"),
        Some(&Value::Int(stats.transactions as i64))
    );
}
