//! Functional sanity checks behind the quantitative experiments E1–E4.
//!
//! The real measurements live in `crates/bench` (Criterion); these tests
//! assert the *qualitative* shape cheaply enough to run in the normal test
//! suite: tracing changes no application behaviour, provenance queries
//! over tens of thousands of events stay interactive, replay cost follows
//! dependencies rather than database size, and retroactive exploration
//! enumerates exactly the conflict-distinct orderings.

use std::time::{Duration, Instant};

use trod::apps::{checkout_only, moodle, shop, WorkloadConfig};
use trod::prelude::*;

#[test]
fn tracing_does_not_change_application_results() {
    // E1 sanity: run the identical workload traced and untraced; the
    // database ends up in the same state and the same requests succeed.
    let cfg = WorkloadConfig {
        requests: 120,
        users: 12,
        items: 8,
        conflict_rate: 0.0,
        seed: 21,
    };
    let run = |tracing: bool| {
        let db = shop::shop_db();
        shop::seed_inventory(&db, 8, 1_000_000);
        let runtime = Runtime::new(db, shop::registry());
        runtime.tracer().set_enabled(tracing);
        // Single worker: the comparison must be deterministic, so no
        // serialization conflicts may decide which requests succeed.
        let results = runtime.run_concurrent(checkout_only(&cfg), 1);
        let ok = results.iter().filter(|r| r.is_ok()).count();
        let orders = runtime
            .database()
            .scan_latest(shop::ORDERS_TABLE, &Predicate::True)
            .unwrap()
            .len();
        (ok, orders, runtime.tracer().stats().pushed)
    };
    let (ok_untraced, orders_untraced, pushed_untraced) = run(false);
    let (ok_traced, orders_traced, pushed_traced) = run(true);
    assert_eq!(ok_untraced, ok_traced);
    assert_eq!(orders_untraced, orders_traced);
    assert_eq!(pushed_untraced, 0);
    assert!(pushed_traced > 0);
}

#[test]
fn declarative_query_over_tens_of_thousands_of_events_is_interactive() {
    // E2 sanity, scaled to test-suite size: 20 000 provenance events and
    // the paper's join query, well under the 5-second interactivity budget
    // even in a debug build.
    let db = moodle::moodle_db();
    let provenance = moodle::provenance_for(&db);
    let runtime = Runtime::new(db, moodle::registry());
    for i in 0..5_000 {
        // Distinct users so every request performs both a read event and
        // an insert event.
        runtime.handle_request(
            "subscribeUser",
            moodle::subscribe_args(&format!("s{i}"), &format!("U{i}"), &format!("F{}", i % 25)),
        );
    }
    provenance.ingest(runtime.tracer().drain());
    assert!(provenance.stats().data_events >= 10_000);

    let start = Instant::now();
    let result = provenance
        .query(
            "SELECT Timestamp, ReqId, HandlerName \
             FROM Executions as E, ForumEvents as F ON E.TxnId = F.TxnId \
             WHERE F.user_id = 'U42' AND F.forum = 'F17' AND F.Type = 'Insert' \
             ORDER BY Timestamp ASC",
        )
        .unwrap();
    let elapsed = start.elapsed();
    assert!(!result.is_empty());
    assert!(
        elapsed < Duration::from_secs(5),
        "query took {elapsed:?}, beyond the paper's interactivity budget"
    );
}

#[test]
fn replay_cost_tracks_dependencies_not_database_size() {
    // E3 sanity: a request with zero concurrent dependencies replays with
    // zero injected transactions regardless of how much unrelated data the
    // database holds.
    let db = moodle::moodle_db();
    let mut seed = db.begin();
    for i in 0..5_000 {
        seed.insert(
            moodle::FORUM_SUB_TABLE,
            row![
                format!("seed-{i}"),
                format!("U{}", i % 100),
                format!("F{}", i % 10)
            ],
        )
        .unwrap();
    }
    seed.commit().unwrap();

    let provenance = moodle::provenance_for(&db);
    let runtime = Runtime::new(db, moodle::registry());
    let req = runtime.handle_request(
        "subscribeUser",
        moodle::subscribe_args("lonely", "U-new", "F-new"),
    );
    assert!(req.is_ok());
    provenance.ingest(runtime.tracer().drain());

    let report =
        trod::core::ReplaySession::for_request(&provenance, runtime.database(), &req.req_id)
            .unwrap()
            .run_to_end()
            .unwrap();
    assert!(report.is_faithful());
    assert_eq!(report.injected_count(), 0);
    assert_eq!(report.steps.len(), 2);
}

#[test]
fn retroactive_exploration_enumerates_conflict_distinct_orderings_only() {
    // E4 sanity: two conflicting subscriptions plus one request touching
    // entirely different tables produce exactly 2 orderings (the unrelated
    // request never reorders), and a cap on orderings is honoured.
    // Conflict detection is table-granular, as the paper suggests
    // ("transactions that access the same table"), so the unrelated
    // request must use different tables, not merely different rows.
    let db = moodle::moodle_db();
    let provenance = moodle::provenance_for(&db);
    let runtime = Runtime::builder(db, moodle::registry())
        .default_isolation(IsolationLevel::ReadCommitted)
        .request_prefix("GEN-")
        .build();
    runtime.handle_request_with_id(
        "A",
        "subscribeUser",
        moodle::subscribe_args("s1", "U1", "F2"),
    );
    runtime.handle_request_with_id(
        "B",
        "subscribeUser",
        moodle::subscribe_args("s2", "U1", "F2"),
    );
    runtime.handle_request_with_id(
        "C",
        "createForum",
        Args::new()
            .with("forum", "F-OTHER")
            .with("course", "C-OTHER"),
    );
    provenance.ingest(runtime.tracer().drain());
    let trod = Trod::attach_with(runtime, provenance);

    let report = trod
        .retroactive(moodle::patched_registry())
        .requests(&["A", "B", "C"])
        .invariant(Invariant::no_duplicates(
            moodle::FORUM_SUB_TABLE,
            &["user_id", "forum"],
        ))
        .run()
        .unwrap();
    assert_eq!(report.conflicting_pairs, 1);
    assert_eq!(report.orderings.len(), 2);
    assert!(report.all_orderings_clean());

    let capped = trod
        .retroactive(moodle::patched_registry())
        .requests(&["A", "B", "C"])
        .max_orderings(1)
        .run()
        .unwrap();
    assert_eq!(capped.orderings.len(), 1);
    assert_eq!(capped.orderings[0].order, vec!["A", "B", "C"]);
}

#[test]
fn on_disk_profile_makes_commits_slower_but_not_incorrect() {
    // The storage-profile substitution behind E1: the on-disk profile adds
    // measurable commit latency while preserving behaviour.
    let run = |profile: StorageProfile| {
        let db = shop::shop_db_with_profile(profile);
        shop::seed_inventory(&db, 4, 1_000);
        let runtime = Runtime::new(db, shop::registry());
        let start = Instant::now();
        for i in 0..20 {
            let r = runtime.handle_request(
                "checkout",
                shop::checkout_args(&format!("o{i}"), "u", &format!("item-{}", i % 4), 1),
            );
            assert!(r.is_ok());
        }
        start.elapsed()
    };
    let fast = run(StorageProfile::InMemory);
    let slow = run(StorageProfile::OnDisk {
        read_micros: 0,
        commit_micros: 800,
    });
    // 20 requests × 3 transactions × 800 µs ≈ 48 ms of injected latency.
    assert!(
        slow > fast,
        "on-disk profile must be slower ({slow:?} vs {fast:?})"
    );
    assert!(slow - fast > Duration::from_millis(20));
}
