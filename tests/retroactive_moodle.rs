//! Experiments F3b and C3: retroactive programming (paper §3.6, Figure 3
//! bottom) and the MDL-60669 regression the paper warns about (§4.1).

use trod::apps::moodle::{self, FORUM_SUB_TABLE, RESTORED_SUB_TABLE};
use trod::prelude::*;

fn traced_scenario() -> trod::core::Trod {
    let scenario = moodle::toctou_scenario();
    scenario.run();
    scenario.into_trod()
}

#[test]
fn patched_handler_passes_retroactive_testing_in_every_ordering() {
    let trod = traced_scenario();
    let report = trod
        .retroactive(moodle::patched_registry())
        .requests(&["R1", "R2", "R3"])
        .invariant(Invariant::no_duplicates(
            FORUM_SUB_TABLE,
            &["user_id", "forum"],
        ))
        .run()
        .unwrap();

    // R1 and R2 conflict (same forum/user); R3 reads the same table, so
    // several orderings are explored, the original order first.
    assert!(report.conflicting_pairs >= 1);
    assert!(report.orderings.len() >= 2);
    assert_eq!(report.orderings[0].order, vec!["R1", "R2", "R3"]);

    // The patch holds in *every* explored ordering: no duplicates, and the
    // fetch request no longer raises the duplicate error.
    assert!(
        report.all_orderings_clean(),
        "violations: {:?}",
        report.violations()
    );
    for ordering in &report.orderings {
        for outcome in &ordering.outcomes {
            if outcome.handler == "fetchSubscribers" {
                assert!(outcome.ok, "fetch failed in ordering {:?}", ordering.order);
            }
        }
        let subs = ordering
            .dev_db()
            .scan_latest(
                FORUM_SUB_TABLE,
                &Predicate::eq("user_id", "U1").and(Predicate::eq("forum", "F2")),
            )
            .unwrap();
        assert_eq!(
            subs.len(),
            1,
            "exactly one subscription in {:?}",
            ordering.order
        );
    }

    // Figure 3 (bottom): the re-executed requests carry primed ids.
    assert!(report.orderings[0]
        .outcomes
        .iter()
        .any(|o| o.req_id == "R1'" && o.original_req_id == "R1"));
}

#[test]
fn buggy_handler_fails_retroactive_testing() {
    // Re-executing the original requests with the *unpatched* code (under
    // the weak isolation the application originally used) does not
    // magically fix anything: serial re-execution hides the race, so the
    // first request to run inserts and the second sees the subscription.
    // The value of retroactive testing is comparative: the patched run
    // above keeps the invariant under every ordering, and the outputs of
    // the original requests are preserved.
    let trod = traced_scenario();
    let report = trod
        .retroactive(moodle::registry())
        .requests(&["R1", "R2", "R3"])
        .isolation(IsolationLevel::ReadCommitted)
        .invariant(Invariant::no_duplicates(
            FORUM_SUB_TABLE,
            &["user_id", "forum"],
        ))
        .run()
        .unwrap();
    // Serial re-execution of the buggy code cannot create the duplicate,
    // but the original production outputs are available for comparison
    // and show that R1/R2 both reported success while production ended up
    // corrupted.
    assert!(report.all_orderings_clean());
    for outcome in &report.orderings[0].outcomes {
        assert_eq!(
            outcome.original_ok,
            Some(outcome.handler != "fetchSubscribers")
        );
    }
    // The fetch now succeeds retroactively even though it failed in
    // production — a changed outcome the report surfaces explicitly.
    let changed = report.changed_outcomes();
    assert!(changed.iter().any(|o| o.handler == "fetchSubscribers"));
}

#[test]
fn requests_touching_table_selects_related_requests_automatically() {
    let trod = traced_scenario();
    let report = trod
        .retroactive(moodle::patched_registry())
        .requests_touching_table(FORUM_SUB_TABLE)
        .invariant(Invariant::no_duplicates(
            FORUM_SUB_TABLE,
            &["user_id", "forum"],
        ))
        .max_orderings(6)
        .run()
        .unwrap();
    // All three traced requests touch forum_sub.
    assert_eq!(report.orderings[0].order.len(), 3);
    assert!(report.orderings.len() <= 6);
    assert!(report.all_orderings_clean());
}

#[test]
fn retroactive_run_without_requests_is_an_error() {
    let trod = traced_scenario();
    let err = trod
        .retroactive(moodle::patched_registry())
        .run()
        .unwrap_err();
    assert!(matches!(
        err,
        trod::core::RetroactiveError::NoRequestsSelected
    ));
}

#[test]
fn mdl_60669_regression_is_caught_by_a_second_invariant() {
    // The paper's §4.1 warning: the MDL-59854 patch caused MDL-60669
    // because nobody re-tested course restore against old data containing
    // duplicates. With TROD, the developer retroactively re-executes the
    // original requests *plus* a course-restore request with the patched
    // code and an invariant on the restored table.
    let scenario = moodle::toctou_scenario();
    scenario.runtime.must_handle(
        "createForum",
        Args::new().with("forum", "F2").with("course", "C1"),
    );
    scenario.run();
    // Production also ran a course delete + restore after the corruption;
    // the restore failed in production (MDL-60669).
    scenario
        .runtime
        .must_handle("deleteCourse", Args::new().with("course", "C1"));
    let restore = scenario.runtime.handle_request_with_id(
        "R4",
        "restoreCourse",
        Args::new().with("course", "C1"),
    );
    assert!(
        !restore.is_ok(),
        "production restore fails on the duplicates"
    );
    let trod = scenario.into_trod();

    // Retroactively re-run the subscription requests and the restore with
    // the patched subscribeUser: the duplicates never form, so the restore
    // succeeds in every ordering.
    let report = trod
        .retroactive(moodle::patched_registry())
        .requests(&["R1", "R2", "R4"])
        .invariant(Invariant::no_duplicates(
            FORUM_SUB_TABLE,
            &["user_id", "forum"],
        ))
        .invariant(Invariant::no_duplicates(
            RESTORED_SUB_TABLE,
            &["user_id", "forum"],
        ))
        .run()
        .unwrap();
    assert!(report.all_orderings_clean());
    for ordering in &report.orderings {
        let restore_outcome = ordering
            .outcomes
            .iter()
            .find(|o| o.handler == "restoreCourse")
            .expect("restore request is part of every ordering");
        assert!(
            restore_outcome.ok,
            "restore failed retroactively in ordering {:?}: {}",
            ordering.order, restore_outcome.output
        );
    }
}
