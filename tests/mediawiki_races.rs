//! Experiments C1 and C2: the MediaWiki case studies (paper §4.1).
//!
//! MW-44325 (duplicate site links) and MW-39225 (wrong article size
//! changes) are reproduced deterministically, located through declarative
//! debugging, replayed, and finally shown fixed by retroactively testing
//! the patched handlers.

use std::sync::Arc;

use trod::apps::mediawiki::{self, PAGES_TABLE, REVISIONS_TABLE, SITE_LINKS_TABLE};
use trod::prelude::*;

/// Builds a production environment in which two `addSiteLink` requests
/// race (E1/E2) after a page was created, and traces everything.
fn sitelink_race() -> trod::core::Trod {
    let db = mediawiki::mediawiki_db();
    let provenance = mediawiki::provenance_for(&db);
    let scheduler = Arc::new(Scheduler::scripted(mediawiki::sitelink_race_script(
        "E1", "E2",
    )));
    let runtime = Runtime::builder(db, mediawiki::registry())
        .default_isolation(IsolationLevel::ReadCommitted)
        .scheduler(scheduler)
        .request_prefix("AUX-")
        .build();
    runtime.must_handle(
        "createPage",
        Args::new().with("title", "Berlin").with("content", "city"),
    );
    std::thread::scope(|scope| {
        let r = &runtime;
        scope.spawn(move || {
            r.handle_request_with_id(
                "E1",
                "addSiteLink",
                mediawiki::sitelink_args("L1", "Berlin", "https://de.wikipedia.org/Berlin"),
            )
        });
        scope.spawn(move || {
            r.handle_request_with_id(
                "E2",
                "addSiteLink",
                mediawiki::sitelink_args("L2", "Berlin", "https://de.wikipedia.org/Berlin"),
            )
        });
    });
    let listing =
        runtime.handle_request_with_id("E3", "listSiteLinks", Args::new().with("page", "Berlin"));
    assert!(
        !listing.is_ok(),
        "the duplicate must be detected by the listing"
    );
    provenance.ingest(runtime.tracer().drain());
    trod::core::Trod::attach_with(runtime, provenance)
}

#[test]
fn mw_44325_duplicate_sitelinks_are_located_replayed_and_fixed() {
    let trod = sitelink_race();

    // Locate: which requests inserted links for the same page/url?
    let writers = trod
        .declarative()
        .find_writers(
            SITE_LINKS_TABLE,
            "Insert",
            &[
                ("page", "Berlin"),
                ("url", "https://de.wikipedia.org/Berlin"),
            ],
        )
        .unwrap();
    assert_eq!(writers.len(), 2);
    assert_eq!(writers[0].handler, "addSiteLink");
    assert_ne!(writers[0].req_id, writers[1].req_id);

    // Replay the losing request and observe the other request's insert
    // being injected between its check and its insert.
    let late_req = &writers[1].req_id;
    let report = trod.replay(late_req).unwrap().run_to_end().unwrap();
    assert!(report.is_faithful());
    assert_eq!(report.injected_count(), 1);

    // Retroactively test the patched handler: no ordering produces
    // duplicates, and the listing request stays healthy.
    let retro = trod
        .retroactive(mediawiki::patched_registry())
        .requests(&["E1", "E2", "E3"])
        .invariant(Invariant::no_duplicates(SITE_LINKS_TABLE, &["page", "url"]))
        .run()
        .unwrap();
    assert!(retro.all_orderings_clean(), "{:?}", retro.violations());
    for ordering in &retro.orderings {
        let links = ordering
            .dev_db()
            .scan_latest(SITE_LINKS_TABLE, &Predicate::eq("page", "Berlin"))
            .unwrap();
        assert_eq!(links.len(), 1, "ordering {:?}", ordering.order);
    }
}

#[test]
fn mw_39225_wrong_article_size_is_reproduced_and_fixed() {
    // Production: two racy edits of the same page.
    let db = mediawiki::mediawiki_db();
    let provenance = mediawiki::provenance_for(&db);
    let scheduler = Arc::new(Scheduler::scripted(mediawiki::edit_race_script("E1", "E2")));
    let runtime = Runtime::builder(db, mediawiki::registry())
        .default_isolation(IsolationLevel::ReadCommitted)
        .scheduler(scheduler)
        .request_prefix("AUX-")
        .build();
    runtime.must_handle(
        "createPage",
        Args::new().with("title", "Art").with("content", "12345"),
    );
    std::thread::scope(|scope| {
        let r = &runtime;
        scope.spawn(move || {
            r.handle_request_with_id(
                "E1",
                "editPage",
                mediawiki::edit_args("rev-a", "Art", "1234567890"),
            )
        });
        scope.spawn(move || {
            r.handle_request_with_id("E2", "editPage", mediawiki::edit_args("rev-b", "Art", "12"))
        });
    });
    provenance.ingest(runtime.tracer().drain());

    // Symptom: the recorded size deltas are inconsistent with the final size.
    let final_size = runtime
        .database()
        .get_latest(PAGES_TABLE, &Key::single("Art"))
        .unwrap()
        .unwrap()[2]
        .as_int()
        .unwrap();
    let deltas: i64 = runtime
        .database()
        .scan_latest(REVISIONS_TABLE, &Predicate::True)
        .unwrap()
        .iter()
        .map(|(_, r)| r[2].as_int().unwrap_or(0))
        .sum();
    assert_ne!(deltas, final_size - 5);

    let trod = trod::core::Trod::attach_with(runtime, provenance);

    // Declarative debugging: both edits updated the same page row.
    let writers = trod
        .declarative()
        .find_writers(PAGES_TABLE, "Update", &[("title", "Art")])
        .unwrap();
    assert_eq!(writers.len(), 2);

    // Replaying the second editor shows the first editor's write being
    // injected between its read and its write — the lost update laid bare.
    let second_editor = &writers[1].req_id;
    let mut session = trod.replay(second_editor).unwrap();
    let report = session.run_to_end().unwrap();
    assert!(report.is_faithful());
    assert!(report.injected_count() >= 1);

    // Retroactive testing of the atomic editPage: every ordering keeps the
    // revision history consistent with the final page size.
    let retro = trod
        .retroactive(mediawiki::patched_registry())
        .requests(&["E1", "E2"])
        .run()
        .unwrap();
    for ordering in &retro.orderings {
        assert!(ordering.outcomes.iter().all(|o| o.ok));
        let final_size = ordering
            .dev_db()
            .get_latest(PAGES_TABLE, &Key::single("Art"))
            .unwrap()
            .unwrap()[2]
            .as_int()
            .unwrap();
        let deltas: i64 = ordering
            .dev_db()
            .scan_latest(REVISIONS_TABLE, &Predicate::True)
            .unwrap()
            .iter()
            .map(|(_, r)| r[2].as_int().unwrap_or(0))
            .sum();
        assert_eq!(
            deltas,
            final_size - 5,
            "inconsistent history in ordering {:?}",
            ordering.order
        );
    }
}
