//! Experiment F3a: faithful bug replay of the Moodle race (paper §3.5,
//! Figure 3 top).
//!
//! Replays request R1 in a development database: its first transaction
//! sees no subscription, then TROD injects R2's concurrently committed
//! insert, then R1's second transaction inserts the duplicate — making the
//! cause of the duplication visible step by step.

use trod::apps::moodle::{self, FORUM_SUB_TABLE};
use trod::prelude::*;

fn traced_scenario() -> trod::core::Trod {
    let scenario = moodle::toctou_scenario();
    scenario.run();
    scenario.into_trod()
}

#[test]
fn replaying_r1_reveals_the_interleaved_insert() {
    let trod = traced_scenario();
    let mut session = trod.replay("R1").unwrap();
    assert_eq!(session.steps().len(), 2, "R1 ran two transactions");
    assert_eq!(session.position(), 0);
    assert!(!session.is_finished());

    // Step 1: the isSubscribed check. Nothing is injected before it and
    // the development database contains no subscription yet.
    let step1 = session.step().unwrap().unwrap();
    assert_eq!(step1.function, "func:isSubscribed");
    assert!(step1.injected.is_empty());
    assert!(step1.is_faithful());
    assert_eq!(
        session
            .dev_db()
            .scan_latest(FORUM_SUB_TABLE, &Predicate::True)
            .unwrap()
            .len(),
        0
    );

    // Step 2: before R1's insert, TROD injects the change committed by the
    // concurrent request R2 — the developer can now *see* the database
    // being modified between R1's two transactions.
    let step2 = session.step().unwrap().unwrap();
    assert_eq!(step2.function, "func:DB.insert");
    assert_eq!(step2.injected.len(), 1);
    assert_eq!(step2.injected[0].1, "R2");
    assert!(step2.is_faithful());
    assert_eq!(step2.writes_applied, 1);

    // After the replay, the development database shows the duplicate, just
    // like production did.
    let rows = session
        .dev_db()
        .scan_latest(
            FORUM_SUB_TABLE,
            &Predicate::eq("user_id", "U1").and(Predicate::eq("forum", "F2")),
        )
        .unwrap();
    assert_eq!(rows.len(), 2);

    assert!(session.step().unwrap().is_none());
    assert!(session.is_finished());
}

#[test]
fn replaying_r2_is_also_faithful_and_injects_nothing() {
    // R2's insert committed *before* R1's, so replaying R2 needs no
    // injected dependencies at all.
    let trod = traced_scenario();
    let report = trod.replay("R2").unwrap().run_to_end().unwrap();
    assert_eq!(report.req_id, "R2");
    assert_eq!(report.steps.len(), 2);
    assert!(report.is_faithful());
    assert_eq!(report.injected_count(), 0);
}

#[test]
fn replaying_the_fetch_request_reproduces_the_error_context() {
    let trod = traced_scenario();
    let report = trod.replay("R3").unwrap().run_to_end().unwrap();
    assert!(report.is_faithful());
    // The fetch read both duplicate rows; the replay verified both.
    assert_eq!(report.steps.len(), 1);
    assert_eq!(report.steps[0].reads_checked, 2);
}

#[test]
fn replay_of_unknown_or_untraced_requests_fails_cleanly() {
    let trod = traced_scenario();
    assert!(matches!(
        trod.replay("R999"),
        Err(trod::core::ReplayError::UnknownRequest(_))
    ));
}

#[test]
fn replay_works_from_provenance_and_a_forked_production_database() {
    // The same replay can be driven directly from the provenance store and
    // production database handles (no Trod façade), which is how a
    // separate development environment would consume shipped traces.
    let scenario = moodle::toctou_scenario();
    scenario.run();
    scenario.sync_provenance();
    let mut session = trod::core::ReplaySession::for_request(
        &scenario.provenance,
        scenario.runtime.database(),
        "R1",
    )
    .unwrap();
    let report = session.run_to_end().unwrap();
    assert!(report.is_faithful());
    assert_eq!(report.injected_count(), 1);
}

#[test]
fn replay_is_faithful_for_every_request_of_a_larger_workload() {
    // Property-style end-to-end check over a concurrent workload: every
    // traced request can be replayed faithfully.
    let db = moodle::moodle_db();
    let provenance = moodle::provenance_for(&db);
    let runtime = Runtime::builder(db, moodle::registry())
        .default_isolation(IsolationLevel::ReadCommitted)
        .build();
    let cfg = trod::apps::WorkloadConfig {
        requests: 120,
        users: 10,
        items: 4,
        conflict_rate: 0.4,
        seed: 3,
    };
    runtime.run_concurrent(trod::apps::moodle_workload(&cfg), 8);
    provenance.ingest(runtime.tracer().drain());

    let mut replayed = 0;
    for req_id in provenance.request_ids() {
        match trod::core::ReplaySession::for_request(&provenance, runtime.database(), &req_id) {
            Ok(mut session) => {
                let report = session.run_to_end().unwrap();
                assert!(
                    report.is_faithful(),
                    "request {req_id} replayed unfaithfully: {:?}",
                    report
                        .steps
                        .iter()
                        .flat_map(|s| s.mismatches.clone())
                        .collect::<Vec<_>>()
                );
                replayed += 1;
            }
            // Requests whose only transaction aborted have nothing to replay.
            Err(trod::core::ReplayError::NoTransactions(_)) => {}
            Err(e) => panic!("unexpected replay error for {req_id}: {e}"),
        }
    }
    assert!(replayed > 100, "most requests should be replayable");
}

#[test]
fn read_committed_reads_past_the_snapshot_replay_faithfully() {
    // A read-committed transaction legally observes a commit that landed
    // AFTER its snapshot. The per-read timestamps recorded by the unified
    // Txn surface let the replay engine inject that commit before the
    // read is verified — without them this replay deterministically
    // reported the row as "missing in development database".
    let db = moodle::moodle_db();
    let provenance = moodle::provenance_for(&db);
    let tracer = Tracer::new();
    let session = Session::builder(db.clone()).tracer(tracer.clone()).build();

    // The reader begins first (snapshot taken here)...
    let mut reader = session.begin_with(
        trod::kv::TxnOptions::new()
            .isolation(IsolationLevel::ReadCommitted)
            .traced(TxnContext::new(
                "R-reader",
                "fetchSubscribers",
                "func:DB.executeQuery",
            )),
    );
    // ...then a concurrent writer commits a subscription...
    let mut writer = session.begin_traced(TxnContext::new("R-writer", "subscribeUser", "f"));
    writer
        .insert(FORUM_SUB_TABLE, trod::db::row!["sub-1", "U1", "F2"])
        .unwrap();
    writer.commit().unwrap();
    // ...and the read-committed reader observes it mid-transaction.
    let rows = reader
        .scan(FORUM_SUB_TABLE, &Predicate::eq("forum", "F2"))
        .unwrap();
    assert_eq!(rows.len(), 1, "read committed sees the fresh commit");
    reader.commit().unwrap();
    provenance.ingest(tracer.drain());

    let mut replay = trod::core::ReplaySession::for_request(&provenance, &db, "R-reader").unwrap();
    let report = replay.run_to_end().unwrap();
    assert!(
        report.is_faithful(),
        "per-read timestamps must make the RC read replayable: {:?}",
        report
            .steps
            .iter()
            .flat_map(|s| s.mismatches.clone())
            .collect::<Vec<_>>()
    );
    assert_eq!(
        report.injected_count(),
        1,
        "the writer's commit is injected before the read is checked"
    );
}
