//! Experiments C4 and C5: security debugging (paper §4.2).
//!
//! C4 — the *User Profiles* access-control pattern: find every request
//! that updated a profile it did not own, using the paper's SQL query.
//! C5 — data exfiltration through workflows: trace sensitive data from the
//! request that harvested it, through the staging table, to the external
//! endpoint it was shipped to.

use trod::apps::profiles::{self, PROFILE_EVENTS_TABLE};
use trod::prelude::*;

fn traced_profile_service() -> trod::core::Trod {
    let db = profiles::profiles_db();
    let provenance = profiles::provenance_for(&db);
    let runtime = Runtime::new(db, profiles::registry());

    // Legitimate traffic.
    for (user, email) in [
        ("alice", "a@x.org"),
        ("bob", "b@x.org"),
        ("carol", "c@x.org"),
    ] {
        runtime.must_handle(
            "createProfile",
            Args::new().with("user_name", user).with("email", email),
        );
    }
    runtime.must_handle(
        "updateProfile",
        profiles::update_args("alice", "alice", "hello"),
    );
    runtime.must_handle("viewProfile", Args::new().with("user_name", "bob"));

    // The attack: mallory rewrites bob's profile, then a compromised
    // handler harvests all profiles into the staging table, and a separate
    // "sync" workflow ships the staged data to an external endpoint.
    runtime.handle_request_with_id(
        "ATTACK-1",
        "updateProfile",
        profiles::update_args("bob", "mallory", "defaced"),
    );
    runtime.handle_request_with_id(
        "ATTACK-2",
        "harvestProfiles",
        Args::new().with("batch", "B99"),
    );
    runtime.handle_request_with_id("ATTACK-3", "syncStaging", Args::new().with("batch", "B99"));

    provenance.ingest(runtime.tracer().drain());
    trod::core::Trod::attach_with(runtime, provenance)
}

#[test]
fn user_profile_pattern_violations_are_found_by_the_papers_query() {
    let trod = traced_profile_service();

    // The paper's literal query shape over ProfileEvents.
    let raw = trod
        .query(&format!(
            "SELECT Timestamp, ReqId, HandlerName \
             FROM Executions as E, {PROFILE_EVENTS_TABLE} as P ON E.TxnId = P.TxnId \
             WHERE P.user_name != P.updated_by AND P.Type = 'Update' \
             ORDER BY Timestamp ASC"
        ))
        .unwrap();
    assert_eq!(raw.len(), 1);
    assert_eq!(raw.value(0, "ReqId"), Some(&Value::Text("ATTACK-1".into())));

    // The typed helper returns the same single violation with context.
    let violations = trod
        .security()
        .user_profile_violations(PROFILE_EVENTS_TABLE, "user_name", "updated_by")
        .unwrap();
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].req_id, "ATTACK-1");
    assert_eq!(violations[0].handler, "updateProfile");
    assert!(violations[0].detail.contains("bob"));
    assert!(violations[0].detail.contains("mallory"));
}

#[test]
fn authentication_pattern_flags_unexpected_readers() {
    let trod = traced_profile_service();
    // Only viewProfile and updateProfile are sanctioned entry points that
    // may read profiles; the harvester is flagged.
    let violations = trod
        .security()
        .unauthenticated_reads(PROFILE_EVENTS_TABLE, &["viewProfile", "updateProfile"])
        .unwrap();
    assert!(!violations.is_empty());
    assert!(violations.iter().any(|v| v.handler == "harvestProfiles"));
    assert!(violations.iter().all(|v| v.handler != "viewProfile"));
}

#[test]
fn exfiltration_is_traced_from_the_harvest_to_the_external_endpoint() {
    let trod = traced_profile_service();
    let flow = trod.security().trace_data_flow("ATTACK-2");

    assert_eq!(flow.origin_req_id, "ATTACK-2");
    // The staging write is tainted, the sync request read it, and its
    // external call is the exfiltration point.
    assert!(flow
        .tainted_writes
        .iter()
        .any(|(table, _)| table == profiles::STAGING_TABLE));
    assert!(flow.tainted_requests.contains(&"ATTACK-3".to_string()));
    assert!(flow.data_left_the_system());
    let (req, service, payload) = &flow.exfiltration_candidates[0];
    assert_eq!(req, "ATTACK-3");
    assert_eq!(service, "analytics-endpoint");
    assert!(payload.contains("alice:a@x.org"));

    // A read-only request (the viewProfile call, R5) writes nothing, so it
    // taints nothing beyond itself and no data leaves the system from it.
    let benign = trod.security().trace_data_flow("R5");
    assert!(!benign.data_left_the_system());
    assert_eq!(benign.tainted_requests, vec!["R5".to_string()]);
    assert!(benign.tainted_writes.is_empty());

    // By contrast, tracing from the request that *created* alice's profile
    // shows that her data ultimately reached the external endpoint via the
    // harvest → staging → sync chain: data provenance follows the data,
    // not the attacker.
    let from_creation = trod.security().trace_data_flow("R1");
    assert!(from_creation.data_left_the_system());
}

#[test]
fn patched_access_control_stops_future_violations_retroactively() {
    let trod = traced_profile_service();
    // Retroactively re-run the attack request with the patched handler:
    // the cross-user update is denied in every ordering.
    let report = trod
        .retroactive(profiles::patched_registry())
        .requests(&["ATTACK-1"])
        .run()
        .unwrap();
    for ordering in &report.orderings {
        let attack = &ordering.outcomes[0];
        assert!(!attack.ok, "patched handler must deny the update");
        assert!(attack.output.contains("access denied"));
        assert_eq!(
            attack.original_ok,
            Some(true),
            "the buggy handler had allowed it"
        );
        assert!(attack.outcome_changed());
    }
}

#[test]
fn external_call_audit_lists_everything_that_left_the_system() {
    let trod = traced_profile_service();
    let calls = trod.security().external_calls().unwrap();
    assert_eq!(calls.len(), 1);
    assert_eq!(
        calls.value(0, "Service"),
        Some(&Value::Text("analytics-endpoint".into()))
    );
}
