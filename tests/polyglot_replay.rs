//! Polyglot time travel end to end (paper §5 + §3.5): replaying requests
//! that span the relational store *and* the key-value store.
//!
//! PR 3 made the transaction log aligned by construction; this suite pins
//! the other half of the §5 story — the debugger actually *using* that
//! aligned history for key-value data:
//!
//! * a shop checkout (relational order + kv cart, one atomic commit)
//!   replays with every kv read verified and every kv write re-applied —
//!   `writes_skipped == 0`, unlike the relational-only replay that used
//!   to skip-count `kv:` records;
//! * the kv fidelity check catches a divergence injected outside the
//!   traced commit path;
//! * with retention enabled, replay still reaches history older than the
//!   GC watermark by rebuilding the environment from spilled aligned
//!   entries; without retention the truncation is reported, not papered
//!   over.

use trod::apps::shop;
use trod::core::ReplayError;
use trod::prelude::*;

fn shop_trod() -> Trod {
    let db = shop::shop_db();
    shop::seed_inventory(&db, 3, 100);
    let runtime = Runtime::builder(db, shop::registry())
        .kv(shop::shop_kv())
        .build();
    Trod::attach(runtime).unwrap()
}

fn cart_args(customer: &str, item: &str) -> Args {
    Args::new().with("customer", customer).with("item", item)
}

#[test]
fn polyglot_checkout_replays_with_zero_skipped_writes() {
    let trod = shop_trod();
    let rt = trod.runtime();
    rt.handle_request_with_id("R1", "addToCart", cart_args("alice", "item-1"));
    rt.handle_request_with_id("R2", "getCart", Args::new().with("customer", "alice"));
    rt.handle_request_with_id(
        "R3",
        "checkout",
        shop::checkout_args("O1", "alice", "item-1", 2),
    );
    trod.sync();

    for req in ["R1", "R2", "R3"] {
        let report = trod.replay(req).unwrap().run_to_end().unwrap();
        assert!(report.is_faithful(), "{req} must replay faithfully");
        assert_eq!(
            report.writes_skipped(),
            0,
            "{req}: polyglot replay must re-apply every kv record"
        );
    }

    // The getCart replay *verified* its kv read against the forked store
    // (the read is counted, not skipped).
    let r2 = trod.replay("R2").unwrap().run_to_end().unwrap();
    assert_eq!(r2.steps.len(), 1);
    assert_eq!(r2.steps[0].reads_checked, 1);

    // The checkout replay reconstructs the cross-store end state in the
    // development environment: order confirmed AND cart cleared — the
    // atomic polyglot commit, re-experienced.
    let mut session = trod.replay("R3").unwrap();
    let report = session.run_to_end().unwrap();
    assert!(report.is_faithful());
    assert!(
        session
            .dev_db()
            .get_latest(shop::ORDERS_TABLE, &Key::single("O1"))
            .unwrap()
            .is_some(),
        "the replayed order exists in the development database"
    );
    assert_eq!(
        session
            .dev_kv()
            .unwrap()
            .get_latest(shop::CARTS_NAMESPACE, "cart:alice")
            .unwrap(),
        None,
        "the replayed checkout cleared the cart in the development store"
    );
    // The development environment's log is aligned like production's:
    // the createOrder commit spans both stores.
    assert!(session
        .dev_session()
        .aligned_log()
        .iter()
        .any(|c| c.spans_both_stores()));
}

#[test]
fn kv_read_verification_catches_an_injected_divergence() {
    let db = Database::new();
    let kv = KvStore::new();
    kv.create_namespace("carts").unwrap();
    let tracer = Tracer::new();
    let traced = trod::kv::Session::builder(db.clone())
        .kv(kv.clone())
        .tracer(tracer.clone())
        .build();
    let provenance = ProvenanceStore::for_application(&db).unwrap();

    let mut setup = traced.begin_traced(TxnContext::new("R0", "setup", "f"));
    setup.kv_put("carts", "cart:alice", "widget").unwrap();
    setup.commit().unwrap();

    // A read-committed reader begins; a commit from an UNTRACED session
    // then changes the key (the aligned provenance never sees it); the
    // reader observes the tampered value.
    let mut reader = traced.begin_with(
        TxnOptions::new()
            .traced(TxnContext::new("R1", "getCart", "f"))
            .isolation(IsolationLevel::ReadCommitted),
    );
    let rogue_session = trod::kv::Session::with_kv(db.clone(), kv.clone());
    let mut rogue = rogue_session.begin();
    rogue.kv_put("carts", "cart:alice", "tampered").unwrap();
    rogue.commit().unwrap();
    assert_eq!(
        reader.kv_get("carts", "cart:alice").unwrap(),
        Some("tampered".into())
    );
    reader.commit().unwrap();
    provenance.ingest(tracer.drain());

    // Replay forks at the reader's snapshot and injects only *traced*
    // concurrent commits — the rogue change cannot be reproduced, so the
    // kv fidelity check must flag the read instead of skipping it.
    let mut session = ReplaySession::for_session(&provenance, &traced, "R1").unwrap();
    let report = session.run_to_end().unwrap();
    assert!(!report.is_faithful());
    let mismatches: Vec<String> = report
        .steps
        .iter()
        .flat_map(|s| s.mismatches.iter().cloned())
        .collect();
    assert_eq!(mismatches.len(), 1);
    assert!(
        mismatches[0].contains("kv:carts") && mismatches[0].contains("tampered"),
        "mismatch must name the store and the divergent value: {}",
        mismatches[0]
    );
}

#[test]
fn replay_reaches_history_older_than_the_gc_watermark_via_spilled_retention() {
    let trod = shop_trod();
    let rt = trod.runtime();
    rt.handle_request_with_id("R1", "addToCart", cart_args("alice", "item-1"));
    rt.handle_request_with_id(
        "R2",
        "checkout",
        shop::checkout_args("O1", "alice", "item-1", 1),
    );
    rt.handle_request_with_id(
        "R3",
        "checkout",
        shop::checkout_args("O2", "bob", "item-2", 1),
    );
    trod.sync();

    trod.enable_retention();
    let db = trod.production_db();
    let live_len = db.log_len();
    let (_, truncated) = db.gc_before(db.current_ts());
    assert_eq!(truncated, live_len, "the whole log was truncated");
    assert_eq!(db.log_len(), 0);
    assert!(db.log_truncated_below() > 0);

    // The debugger stitches spilled + live history into one continuous
    // aligned view.
    assert_eq!(trod.provenance().spilled_count(), live_len);
    let stitched = trod.aligned_history();
    assert_eq!(stitched.len(), live_len);
    assert!(stitched.windows(2).all(|w| w[0].commit_ts < w[1].commit_ts));
    assert!(stitched.iter().any(|c| c.spans_both_stores()));

    // A defensive repeat of enable_retention must not disown the
    // existing complete spill (idempotent re-install keeps the original
    // coverage floor).
    trod.enable_retention();

    // Every request predates the GC floor now; replay reconstructs the
    // environment from the spilled aligned history and stays faithful,
    // kv records included.
    for req in ["R1", "R2", "R3"] {
        let report = trod.replay(req).unwrap().run_to_end().unwrap();
        assert!(
            report.is_faithful(),
            "{req} must replay from spilled history"
        );
        assert_eq!(report.writes_skipped(), 0, "{req}");
    }
    let mut session = trod.replay("R2").unwrap();
    session.run_to_end().unwrap();
    assert!(session
        .dev_db()
        .get_latest(shop::ORDERS_TABLE, &Key::single("O1"))
        .unwrap()
        .is_some());
    assert_eq!(
        session
            .dev_kv()
            .unwrap()
            .get_latest(shop::CARTS_NAMESPACE, "cart:alice")
            .unwrap(),
        None,
        "R2's replayed checkout cleared the cart rebuilt from spilled history"
    );
}

#[test]
fn retention_installed_after_truncation_cannot_paper_over_the_gap() {
    let trod = shop_trod();
    trod.runtime().handle_request_with_id(
        "R1",
        "checkout",
        shop::checkout_args("O1", "alice", "item-1", 1),
    );
    trod.sync();
    // First GC runs WITHOUT retention: R1's aligned history is gone for
    // good.
    let db = trod.production_db();
    db.gc_before(db.current_ts());

    // Retention arrives late; more traffic commits and is spilled by a
    // second GC.
    trod.enable_retention();
    trod.runtime().handle_request_with_id(
        "R2",
        "checkout",
        shop::checkout_args("O2", "bob", "item-2", 1),
    );
    trod.sync();
    db.gc_before(db.current_ts());
    assert!(trod.provenance().spilled_count() > 0);

    // Both replays must refuse: R1's history was never spilled, and R2's
    // spill is only partial (everything truncated before the install is
    // missing) — rebuilding from it would silently fork wrong state.
    for req in ["R1", "R2"] {
        let err = trod.replay(req).expect_err("partial spill must be refused");
        assert!(
            matches!(err, ReplayError::HistoryTruncated { .. }),
            "{req}: got {err}"
        );
    }
}

#[test]
fn replay_below_the_gc_floor_without_retention_reports_truncation() {
    let trod = shop_trod();
    trod.runtime().handle_request_with_id(
        "R1",
        "checkout",
        shop::checkout_args("O1", "alice", "item-1", 1),
    );
    trod.sync();
    // GC without any retention policy: the history below the floor is
    // simply gone.
    let db = trod.production_db();
    db.gc_before(db.current_ts());

    let err = trod.replay("R1").expect_err("replay must refuse");
    assert!(
        matches!(err, ReplayError::HistoryTruncated { .. }),
        "got {err}"
    );
}

#[test]
fn a_foreign_retention_policy_does_not_vouch_for_this_debugger() {
    use std::sync::Arc;

    let trod = shop_trod();
    trod.runtime().handle_request_with_id(
        "R1",
        "checkout",
        shop::checkout_args("O1", "alice", "item-1", 1),
    );
    trod.sync();
    // Some OTHER store is installed as the retention policy (coverage
    // floor 0) before GC — its spill is complete, but it is not the
    // debugger's provenance store, so replay still must refuse rather
    // than reconstruct from the debugger's (empty) spill.
    let foreign = Arc::new(ProvenanceStore::new());
    let db = trod.production_db();
    db.set_retention_policy(Some(foreign.clone()));
    db.gc_before(db.current_ts());
    assert!(foreign.spilled_count() > 0);
    assert_eq!(trod.provenance().spilled_count(), 0);

    let err = trod
        .replay("R1")
        .expect_err("foreign spill must be refused");
    assert!(
        matches!(err, ReplayError::HistoryTruncated { .. }),
        "got {err}"
    );
}
