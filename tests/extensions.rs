//! Integration tests for the §5 research-direction features exposed on the
//! `Trod` façade: performance debugging, data-quality debugging with
//! provenance blame, privacy redaction with "debugging from partial data",
//! and weak-isolation auditing — all exercised through the same Moodle
//! scenario the paper uses as its running example.

use trod::apps::moodle;
use trod::prelude::*;

/// Runs the MDL-59854 race (duplicated forum subscription) and hands back
/// a fully attached debugger.
fn buggy_moodle_trod() -> Trod {
    let scenario = moodle::toctou_scenario();
    let error = scenario.run();
    assert!(error.is_some(), "the racy schedule must reproduce the bug");
    scenario.sync_provenance();
    scenario.into_trod()
}

#[test]
fn perf_views_are_computed_from_existing_provenance() {
    let trod = buggy_moodle_trod();
    let perf = trod.perf();

    let latencies = perf.handler_latencies();
    assert!(!latencies.is_empty());
    let subscribe = latencies
        .iter()
        .find(|l| l.handler == "subscribeUser")
        .expect("subscribeUser was traced");
    assert_eq!(subscribe.invocations, 2);
    assert_eq!(
        subscribe.transactions, 4,
        "two transactions per subscribe request"
    );
    assert!(subscribe.p95_us >= subscribe.p50_us);

    // Every handler invocation qualifies at threshold zero; none at MAX.
    assert!(perf.slow_requests(0).len() >= 3);
    assert!(perf.slow_requests(i64::MAX).is_empty());

    let profile = perf.request_breakdown("R1").expect("R1 was traced");
    assert_eq!(profile.root.handler, "subscribeUser");
    assert_eq!(profile.transactions, 2);
    assert!(profile.end_to_end_us.is_some());

    let profiles = perf.all_request_profiles();
    assert_eq!(profiles.len(), 3, "R1, R2 and R3 were traced");
}

#[test]
fn quality_rules_blame_the_requests_that_created_the_duplicate() {
    let trod = buggy_moodle_trod();
    let report = trod
        .quality()
        .check(&[QualityRule::unique(
            moodle::FORUM_SUB_TABLE,
            &["user_id", "forum"],
        )])
        .expect("rules evaluate");

    assert_eq!(
        report.violations.len(),
        1,
        "exactly one duplicated subscription"
    );
    let blamed = &report.violations[0];
    assert!(
        !blamed.culprits.is_empty(),
        "the duplicate must be blamed on a request"
    );
    assert!(blamed
        .culprits
        .iter()
        .all(|c| c.handler == "subscribeUser" && c.operation == "Insert"));
    let implicated = report.implicated_requests();
    assert!(implicated.iter().all(|r| r == "R1" || r == "R2"));
}

#[test]
fn redaction_marks_replay_as_partial_data() {
    let trod = buggy_moodle_trod();

    // Before redaction the replay is fully faithful and on complete data.
    let report = trod
        .replay("R1")
        .expect("R1 traced")
        .run_to_end()
        .expect("replay");
    assert!(report.is_faithful());
    assert!(!report.has_partial_data());

    // The affected user invokes their right to erasure.
    let redaction = trod
        .provenance()
        .redact_rows(
            moodle::FORUM_SUB_TABLE,
            &[("user_id", Value::Text("U1".into()))],
        )
        .expect("redaction");
    assert!(redaction.transactions_affected > 0);

    // Replay still runs, but reports that it operated on partial data.
    let partial = trod
        .replay("R1")
        .expect("R1 traced")
        .run_to_end()
        .expect("replay");
    assert!(partial.has_partial_data());
}

#[test]
fn reenactment_confirms_the_serializable_history_is_snapshot_consistent() {
    let trod = buggy_moodle_trod();
    let reenactor = trod.reenactor();

    // Every transaction of every request reenacts consistently: the
    // history ran under strict serializability, so time-travel
    // reconstruction at each snapshot matches the recorded reads.
    for req in ["R1", "R2", "R3"] {
        for report in reenactor.reenact_request(req).expect("reenactment") {
            assert!(
                report.is_snapshot_consistent(),
                "{req} txn {} diverged: {:?}",
                report.txn_id,
                report.divergent_reads
            );
        }
    }

    // The two inserts write different keys and read nothing each other
    // wrote, so neither lost-update nor write-skew candidates exist.
    assert!(reenactor.audit_anomalies().is_empty());
}

#[test]
fn retention_after_the_investigation_empties_the_store_but_keeps_it_usable() {
    let trod = buggy_moodle_trod();
    let cutoff = trod.runtime().tracer().now();
    let report = trod.provenance().retain_since(cutoff).expect("retention");
    assert!(report.transactions_dropped >= 5);
    assert_eq!(trod.provenance().txn_count(), 0);

    // New traffic after the cutoff is traced and queryable as usual.
    let result = trod
        .runtime()
        .handle_request("fetchSubscribers", moodle::fetch_args("F2"));
    assert!(!result.req_id.is_empty());
    trod.sync();
    assert!(trod.provenance().txn_count() >= 1);
}
