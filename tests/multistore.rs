//! Cross-data-store tracing end to end (paper §5, "Handling Multiple Data
//! Stores"): an application that keeps orders in the relational store and
//! session state in a key-value store, coordinated through the unified
//! session's commit coordinator, produces one aligned provenance history
//! that the normal TROD workflow (declarative debugging, redaction)
//! operates on.

use trod::db::{DataType, Database, Key, Predicate, Schema, Value};
use trod::kv::{kv_provenance_schema, kv_table_name, KvStore, Session};
use trod::provenance::ProvenanceStore;
use trod::trace::{Tracer, TxnContext};

fn orders_db() -> Database {
    let db = Database::new();
    db.create_table(
        "orders",
        Schema::builder()
            .column("id", DataType::Int)
            .column("customer", DataType::Text)
            .column("item", DataType::Text)
            .primary_key(&["id"])
            .build()
            .unwrap(),
    )
    .unwrap();
    db
}

fn traced_cross_store() -> (Session, ProvenanceStore, Tracer) {
    let db = orders_db();
    let kv = KvStore::new();
    kv.create_namespace("sessions").unwrap();
    let tracer = Tracer::new();
    let cross = Session::with_tracer(db.clone(), kv, tracer.clone());

    let provenance = ProvenanceStore::new();
    provenance
        .register_table_as("orders", "OrderEvents", &db.schema_of("orders").unwrap())
        .unwrap();
    provenance
        .register_table_as(
            &kv_table_name("sessions"),
            "SessionEvents",
            &kv_provenance_schema(),
        )
        .unwrap();
    (cross, provenance, tracer)
}

/// Serves one "checkout" request that writes both stores atomically.
fn checkout(cross: &Session, req: &str, order_id: i64, customer: &str, item: &str) {
    let mut txn = cross.begin_traced(TxnContext::new(req, "checkout", "func:placeOrder"));
    assert!(!txn
        .exists("orders", &Predicate::eq("id", order_id))
        .unwrap());
    txn.insert("orders", trod::db::row![order_id, customer, item])
        .unwrap();
    txn.kv_put("sessions", &format!("cart:{customer}"), "checked-out")
        .unwrap();
    txn.commit().unwrap();
}

#[test]
fn cross_store_commits_produce_one_aligned_provenance_history() {
    let (cross, provenance, tracer) = traced_cross_store();
    checkout(&cross, "R1", 1, "alice", "widget");
    checkout(&cross, "R2", 2, "bob", "gadget");
    provenance.ingest(tracer.drain());

    // One Executions row per cross-store transaction.
    let execs = provenance
        .query("SELECT TxnId, ReqId, CommitTs FROM Executions ORDER BY CommitTs")
        .unwrap();
    assert_eq!(execs.len(), 2);

    // The aligned log and the provenance agree on the commit order and
    // timestamps — this is the "aligned transaction logs" requirement.
    let aligned = cross.aligned_log();
    assert_eq!(aligned.len(), 2);
    for (i, commit) in aligned.iter().enumerate() {
        assert!(commit.spans_both_stores());
        assert_eq!(
            execs.value(i, "CommitTs"),
            Some(&Value::Int(commit.commit_ts as i64)),
            "aligned log entry {i} must match the Executions commit order"
        );
    }

    // The relational transaction log IS the aligned log: every commit's
    // key-value changes ride in the same entry as its relational ones,
    // under the virtual kv:<namespace> table name.
    let aligned_entries = cross
        .database()
        .log_entries()
        .iter()
        .filter(|e| e.writes_table(&kv_table_name("sessions")) && e.writes_table("orders"))
        .count();
    assert_eq!(aligned_entries, 2);

    // Data-operation provenance exists for both stores.
    let order_events = provenance
        .query("SELECT Type, customer FROM OrderEvents ORDER BY EventId")
        .unwrap();
    assert!(order_events.len() >= 2);
    let session_events = provenance
        .query("SELECT Type, kv_key, kv_value FROM SessionEvents ORDER BY EventId")
        .unwrap();
    assert_eq!(session_events.len(), 2);
    assert_eq!(
        session_events.value(0, "kv_key"),
        Some(&Value::Text("cart:alice".into()))
    );
}

#[test]
fn declarative_debugging_answers_who_wrote_this_kv_key() {
    let (cross, provenance, tracer) = traced_cross_store();
    checkout(&cross, "R1", 1, "alice", "widget");
    checkout(&cross, "R2", 2, "bob", "gadget");
    provenance.ingest(tracer.drain());

    // The paper's §3.3 query shape, pointed at key-value provenance: which
    // request wrote bob's cart session?
    let result = provenance
        .query(
            "SELECT ReqId, HandlerName FROM Executions as E, SessionEvents as S \
             ON E.TxnId = S.TxnId \
             WHERE S.kv_key = 'cart:bob' ORDER BY Timestamp",
        )
        .unwrap();
    assert_eq!(result.len(), 1);
    assert_eq!(result.value(0, "ReqId"), Some(&Value::Text("R2".into())));
    assert_eq!(
        result.value(0, "HandlerName"),
        Some(&Value::Text("checkout".into()))
    );
}

#[test]
fn kv_provenance_can_be_redacted_like_relational_provenance() {
    let (cross, provenance, tracer) = traced_cross_store();
    checkout(&cross, "R1", 1, "alice", "widget");
    checkout(&cross, "R2", 2, "bob", "gadget");
    provenance.ingest(tracer.drain());

    let report = provenance
        .redact_rows(
            &kv_table_name("sessions"),
            &[("kv_key", Value::Text("cart:alice".into()))],
        )
        .unwrap();
    assert_eq!(report.event_rows_redacted, 1);
    assert_eq!(report.archive_writes_redacted, 1);

    let remaining = provenance
        .query("SELECT kv_key FROM SessionEvents ORDER BY EventId")
        .unwrap();
    let leaked = remaining
        .rows()
        .iter()
        .filter(|r| r.iter().any(|v| v.as_text() == Some("cart:alice")))
        .count();
    assert_eq!(leaked, 0, "alice's session key must no longer be visible");
    let bob_rows = remaining
        .rows()
        .iter()
        .filter(|r| r.iter().any(|v| v.as_text() == Some("cart:bob")))
        .count();
    assert_eq!(bob_rows, 1, "bob's provenance must be untouched");
}

#[test]
fn cross_store_conflicts_keep_both_stores_consistent_under_concurrency() {
    let (cross, provenance, tracer) = traced_cross_store();

    // Two requests race to place the same order id while updating the same
    // session key; exactly one may win, and the loser must leave no trace
    // in either store.
    let mut first = cross.begin_traced(TxnContext::new("R1", "checkout", "func:placeOrder"));
    let mut second = cross.begin_traced(TxnContext::new("R2", "checkout", "func:placeOrder"));
    first
        .insert("orders", trod::db::row![1i64, "alice", "widget"])
        .unwrap();
    first.kv_put("sessions", "cart:alice", "first").unwrap();
    second
        .insert("orders", trod::db::row![1i64, "alice", "gadget"])
        .unwrap();
    second.kv_put("sessions", "cart:alice", "second").unwrap();

    first.commit().unwrap();
    assert!(second.commit().is_err());
    provenance.ingest(tracer.drain());

    assert_eq!(
        cross.kv().get_latest("sessions", "cart:alice").unwrap(),
        Some("first".into())
    );
    assert_eq!(
        cross
            .database()
            .get_latest("orders", &Key::single(1i64))
            .unwrap()
            .map(|r| r[2].clone()),
        Some(Value::Text("widget".into()))
    );

    // The aborted attempt is still visible to declarative debugging.
    let aborted = provenance
        .query("SELECT ReqId FROM Executions WHERE Committed = FALSE")
        .unwrap();
    assert_eq!(aborted.len(), 1);
    assert_eq!(aborted.value(0, "ReqId"), Some(&Value::Text("R2".into())));
}

#[test]
fn polyglot_requests_replay_their_relational_side_faithfully() {
    // Replay of a request that wrote BOTH stores: the relational reads
    // and writes replay (and verify) normally against the development
    // fork; the kv:<namespace> records are skipped and counted rather
    // than failing the whole replay (kv-state reconstruction in the
    // development environment is a ROADMAP item).
    let (cross, provenance, tracer) = traced_cross_store();
    checkout(&cross, "R1", 1, "alice", "widget");
    checkout(&cross, "R2", 2, "bob", "gadget");
    provenance.ingest(tracer.drain());

    let mut replay =
        trod::core::ReplaySession::for_request(&provenance, cross.database(), "R2").unwrap();
    let report = replay.run_to_end().unwrap();
    assert!(report.is_faithful(), "relational side must verify cleanly");
    let step = &report.steps[0];
    assert_eq!(step.writes_applied, 1, "the order insert is re-applied");
    assert_eq!(step.writes_skipped, 1, "the kv cart write is skipped");
    // R1 committed before R2's snapshot, so its state arrived via the
    // development fork rather than injection.
    assert_eq!(report.injected_count(), 0);
    assert!(replay
        .dev_db()
        .get_latest("orders", &Key::single(1i64))
        .unwrap()
        .is_some());
    assert_eq!(
        replay
            .dev_db()
            .get_latest("orders", &Key::single(2i64))
            .unwrap()
            .map(|r| r[1].clone()),
        Some(Value::Text("bob".into()))
    );
}
