//! Wire-driving load generation: run the trod-apps workloads (shop,
//! Moodle, MediaWiki) against a *server* over N concurrent keep-alive
//! connections, and a reusable connection pool for throughput
//! benchmarks.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use trod_core::json::Json;
use trod_core::wire;
use trod_runtime::Args;

use crate::client::{Client, ClientError};

/// Encodes handler arguments as the `args` object of `trod_invoke`.
pub fn args_to_json(args: &Args) -> Json {
    Json::Object(
        args.iter()
            .map(|(name, value)| (name.clone(), wire::value_to_json(value)))
            .collect(),
    )
}

/// What a workload run observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReport {
    pub requests: usize,
    pub ok: usize,
    /// Requests that failed with a retryable error (conflicts under
    /// contention — expected for the hot-key workloads).
    pub retryable_failures: usize,
    /// Requests that failed fatally (should be zero for the shipped
    /// workloads; surfaced so tests can assert on it).
    pub fatal_failures: usize,
    pub elapsed: Duration,
}

impl LoadReport {
    pub fn requests_per_sec(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.requests as f64 / self.elapsed.as_secs_f64()
    }
}

/// Drives a `(handler, args)` workload — e.g.
/// [`trod_apps::workload::shop_workload`] — against a running server
/// over `connections` concurrent keep-alive connections, each request a
/// `trod_invoke`. Requests are dealt round-robin, so per-connection
/// streams preserve the workload's relative order.
pub fn drive_workload(
    addr: &str,
    workload: Vec<(String, Args)>,
    connections: usize,
) -> Result<LoadReport, ClientError> {
    let connections = connections.clamp(1, workload.len().max(1));
    let total = workload.len();
    let mut shards: Vec<Vec<(String, Json)>> = (0..connections).map(|_| Vec::new()).collect();
    for (i, (handler, args)) in workload.into_iter().enumerate() {
        shards[i % connections].push((handler, args_to_json(&args)));
    }

    let ok = Arc::new(AtomicUsize::new(0));
    let retryable = Arc::new(AtomicUsize::new(0));
    let fatal = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let mut threads = Vec::with_capacity(connections);
    for shard in shards {
        let addr = addr.to_string();
        let ok = ok.clone();
        let retryable = retryable.clone();
        let fatal = fatal.clone();
        threads.push(std::thread::spawn(move || -> Result<(), ClientError> {
            let mut client = Client::connect(&addr)?;
            for (handler, args) in shard {
                let params = Json::obj(vec![("handler", Json::str(handler)), ("args", args)]);
                match client.call("trod_invoke", params) {
                    Ok(_) => ok.fetch_add(1, Ordering::Relaxed),
                    Err(ClientError::Rpc(f)) if f.retryable => {
                        retryable.fetch_add(1, Ordering::Relaxed)
                    }
                    Err(ClientError::Rpc(_)) => fatal.fetch_add(1, Ordering::Relaxed),
                    Err(e) => return Err(e),
                };
            }
            Ok(())
        }));
    }
    for t in threads {
        t.join()
            .map_err(|_| ClientError::Protocol("load worker panicked".into()))??;
    }
    Ok(LoadReport {
        requests: total,
        ok: ok.load(Ordering::Relaxed),
        retryable_failures: retryable.load(Ordering::Relaxed),
        fatal_failures: fatal.load(Ordering::Relaxed),
        elapsed: started.elapsed(),
    })
}

/// A request generator for [`WirePool`]: maps `(worker index, request
/// index within the worker's round)` to a call.
pub type RequestGen = Arc<dyn Fn(usize, u64) -> (String, Json) + Send + Sync>;

/// A persistent pool of keep-alive connections that executes rounds of
/// requests on demand. Built for `criterion` benches: the connections
/// (and their worker threads) survive across iterations, so a measured
/// round pays only for request/response cycles, not connection setup.
pub struct WirePool {
    workers: Vec<std::thread::JoinHandle<Result<(), ClientError>>>,
    barrier: Arc<Barrier>,
    per_worker: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    errors: Arc<AtomicUsize>,
    conns: usize,
}

impl WirePool {
    /// Connects `conns` workers to `addr`. Every worker issues the
    /// requests `gen` produces for its index.
    pub fn connect(addr: &str, conns: usize, gen: RequestGen) -> Result<WirePool, ClientError> {
        let conns = conns.max(1);
        let barrier = Arc::new(Barrier::new(conns + 1));
        let per_worker = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let errors = Arc::new(AtomicUsize::new(0));
        let mut workers = Vec::with_capacity(conns);
        for worker_idx in 0..conns {
            let addr = addr.to_string();
            let barrier = barrier.clone();
            let per_worker = per_worker.clone();
            let stop = stop.clone();
            let errors = errors.clone();
            let gen = gen.clone();
            workers.push(std::thread::spawn(move || -> Result<(), ClientError> {
                // A failed connect must still participate in the
                // barriers, or every round would deadlock; the error
                // surfaces from `close()`.
                let mut client = Client::connect(&addr);
                loop {
                    barrier.wait(); // round start (or stop)
                    if stop.load(Ordering::SeqCst) {
                        return client.map(|_| ());
                    }
                    let n = per_worker.load(Ordering::SeqCst);
                    match client.as_mut() {
                        Ok(client) => {
                            for i in 0..n {
                                let (method, params) = gen(worker_idx, i);
                                if client.call(&method, params).is_err() {
                                    errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Err(_) => {
                            errors.fetch_add(n as usize, Ordering::Relaxed);
                        }
                    }
                    barrier.wait(); // round done
                }
            }));
        }
        Ok(WirePool {
            workers,
            barrier,
            per_worker,
            stop,
            errors,
            conns,
        })
    }

    pub fn connections(&self) -> usize {
        self.conns
    }

    /// Runs one round of `per_conn` requests on every connection
    /// concurrently; returns the wall-clock time from release to the
    /// last worker finishing.
    pub fn run_round(&self, per_conn: u64) -> Duration {
        self.per_worker.store(per_conn, Ordering::SeqCst);
        let started = Instant::now();
        self.barrier.wait(); // release
        self.barrier.wait(); // all done
        started.elapsed()
    }

    /// Requests that failed across all rounds so far.
    pub fn error_count(&self) -> usize {
        self.errors.load(Ordering::Relaxed)
    }

    /// Stops the workers and joins them, surfacing connect errors.
    pub fn close(self) -> Result<(), ClientError> {
        self.stop.store(true, Ordering::SeqCst);
        self.barrier.wait(); // release into the stop check
        for w in self.workers {
            w.join()
                .map_err(|_| ClientError::Protocol("pool worker panicked".into()))??;
        }
        Ok(())
    }
}
