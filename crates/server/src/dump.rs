//! Devnet-style dump/load: serialize a whole session environment —
//! relational schema, key-value namespaces, and the complete *aligned
//! history* — to one JSON document, and boot a fresh instance from it.
//!
//! The dump carries history, not state: loading replays every
//! [`CommittedTxn`] through [`Session::apply_entry`], the same
//! identity-preserving injection path crash recovery uses, so the loaded
//! instance has byte-identical aligned history (same txn ids, same
//! start/commit timestamps, same change records) and its commit clock
//! resumes where the source's left off. That is what makes the loaded
//! instance *debuggable*, not just state-equivalent: time-travel reads,
//! replay and retroactive runs against it see the same past.
//!
//! [`fork_from_instance`] builds the same document over the wire from a
//! *running* server — `sys_schema` plus `sys_history {up_to: ts}` — so a
//! new developer instance can pull a fork at any timestamp from
//! production without ever touching its files.
//!
//! Caveat: DDL is not part of the transaction log, so a dump taken at
//! (or truncated to) timestamp `ts` carries the *current* schema and
//! namespace set, applied up front. History at `ts` replays against it
//! exactly because schema changes are append-only in this engine.

use std::path::Path;

use trod_core::json::{Json, JsonError};
use trod_core::wire::{self, WireError};
use trod_core::Trod;
use trod_db::{Column, CommittedTxn, DataType, Database, Schema, Ts};
use trod_kv::{KvStore, Session};

/// Why a dump could not be produced, parsed, or booted.
#[derive(Debug)]
pub enum DumpError {
    Json(JsonError),
    Wire(WireError),
    /// The document is well-formed JSON but not a valid dump.
    Format(String),
    /// Rebuilding the environment failed.
    Load(String),
    Io(std::io::Error),
}

impl std::fmt::Display for DumpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DumpError::Json(e) => write!(f, "dump is not valid JSON: {e}"),
            DumpError::Wire(e) => write!(f, "dump entry malformed: {e}"),
            DumpError::Format(d) => write!(f, "not a trod dump: {d}"),
            DumpError::Load(d) => write!(f, "could not boot from dump: {d}"),
            DumpError::Io(e) => write!(f, "dump i/o: {e}"),
        }
    }
}

impl From<JsonError> for DumpError {
    fn from(e: JsonError) -> Self {
        DumpError::Json(e)
    }
}

impl From<WireError> for DumpError {
    fn from(e: WireError) -> Self {
        DumpError::Wire(e)
    }
}

impl From<std::io::Error> for DumpError {
    fn from(e: std::io::Error) -> Self {
        DumpError::Io(e)
    }
}

const FORMAT: &str = "trod-dump/1";

/// One table's DDL, as captured in a dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    pub name: String,
    /// `(name, dtype, nullable)` triples in schema order.
    pub columns: Vec<(String, DataType, bool)>,
    pub primary_key: Vec<String>,
    pub indexes: Vec<String>,
    pub range_indexes: Vec<String>,
}

/// A serialized session environment: schema + namespaces + the complete
/// aligned history up to `current_ts`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dump {
    pub current_ts: Ts,
    pub tables: Vec<TableDef>,
    pub namespaces: Vec<String>,
    /// Aligned history in commit order, spilled retention entries
    /// stitched ahead of the live log.
    pub entries: Vec<CommittedTxn>,
}

/// Stitches spilled retention history and the live transaction log into
/// one commit-ordered, duplicate-free entry list (same overlap rule as
/// `Trod::aligned_history`: read live first, drop live entries at or
/// below the spill watermark).
pub fn stitched_entries(trod: &Trod) -> Vec<CommittedTxn> {
    let live = trod.production_db().log_entries();
    let mut out = trod.provenance().spilled_log();
    let spilled_up_to = out.last().map(|e| e.commit_ts).unwrap_or(0);
    out.extend(live.into_iter().filter(|e| e.commit_ts > spilled_up_to));
    out
}

fn dtype_from_str(s: &str) -> Result<DataType, DumpError> {
    match s {
        "BOOL" => Ok(DataType::Bool),
        "INT" => Ok(DataType::Int),
        "FLOAT" => Ok(DataType::Float),
        "TEXT" => Ok(DataType::Text),
        "BYTES" => Ok(DataType::Bytes),
        "TIMESTAMP" => Ok(DataType::Timestamp),
        other => Err(DumpError::Format(format!("unknown column type {other:?}"))),
    }
}

fn table_def_of(db: &Database, name: &str) -> Option<TableDef> {
    let schema = db.schema_of(name).ok()?;
    let store = db.table(name).ok()?;
    let columns: Vec<(String, DataType, bool)> = schema
        .columns()
        .iter()
        .map(|c| (c.name.clone(), c.dtype, c.nullable))
        .collect();
    let primary_key = schema
        .primary_key()
        .iter()
        .map(|&i| columns[i].0.clone())
        .collect();
    Some(TableDef {
        name: name.to_string(),
        columns,
        primary_key,
        indexes: store.indexed_columns(),
        range_indexes: store.range_indexed_columns(),
    })
}

impl Dump {
    /// Captures the whole environment of a live [`Trod`] instance.
    /// Sync the tracer first if you also want the most recent requests'
    /// provenance reflected in retention spills.
    pub fn capture(trod: &Trod) -> Dump {
        let db = trod.production_db();
        let tables = db
            .table_names()
            .into_iter()
            .filter_map(|name| table_def_of(db, &name))
            .collect();
        let namespaces = trod
            .session()
            .kv_store()
            .map(|kv| kv.namespaces())
            .unwrap_or_default();
        Dump {
            current_ts: db.current_ts(),
            tables,
            namespaces,
            entries: stitched_entries(trod),
        }
    }

    /// Like [`Dump::capture`] but without the history — the shape
    /// `sys_schema` serves (the entries travel separately via
    /// `sys_history`, so a fork pull doesn't fetch the log twice).
    pub fn capture_schema(trod: &Trod) -> Dump {
        Dump {
            entries: Vec::new(),
            ..Dump::capture(trod)
        }
    }

    /// Drops every entry above `ts` and rewinds the recorded clock, so
    /// booting reproduces the environment as of `ts`.
    pub fn truncate_to(mut self, ts: Ts) -> Dump {
        self.entries.retain(|e| e.commit_ts <= ts);
        self.current_ts = ts;
        self
    }

    pub fn to_json(&self) -> Json {
        let tables = self
            .tables
            .iter()
            .map(|t| {
                Json::obj(vec![
                    ("name", Json::str(t.name.clone())),
                    (
                        "columns",
                        Json::Array(
                            t.columns
                                .iter()
                                .map(|(n, d, nullable)| {
                                    Json::obj(vec![
                                        ("name", Json::str(n.clone())),
                                        ("dtype", Json::str(d.to_string())),
                                        ("nullable", Json::Bool(*nullable)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "primary_key",
                        Json::Array(t.primary_key.iter().map(|c| Json::str(c.clone())).collect()),
                    ),
                    (
                        "indexes",
                        Json::Array(t.indexes.iter().map(|c| Json::str(c.clone())).collect()),
                    ),
                    (
                        "range_indexes",
                        Json::Array(
                            t.range_indexes
                                .iter()
                                .map(|c| Json::str(c.clone()))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::obj(vec![
            ("format", Json::str(FORMAT)),
            ("current_ts", Json::from(self.current_ts)),
            ("tables", Json::Array(tables)),
            (
                "namespaces",
                Json::Array(
                    self.namespaces
                        .iter()
                        .map(|n| Json::str(n.clone()))
                        .collect(),
                ),
            ),
            (
                "entries",
                Json::Array(self.entries.iter().map(wire::txn_to_json).collect()),
            ),
        ])
    }

    pub fn from_json(j: &Json) -> Result<Dump, DumpError> {
        let format = j.get("format").and_then(Json::as_str).unwrap_or("");
        if format != FORMAT {
            return Err(DumpError::Format(format!(
                "format is {format:?}, expected {FORMAT:?}"
            )));
        }
        let current_ts: Ts = j
            .get("current_ts")
            .and_then(Json::as_u64)
            .ok_or_else(|| DumpError::Format("missing current_ts".into()))?;
        let mut tables = Vec::new();
        for t in j
            .get("tables")
            .and_then(Json::as_array)
            .ok_or_else(|| DumpError::Format("missing tables".into()))?
        {
            let name = t
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| DumpError::Format("table without name".into()))?
                .to_string();
            let mut columns = Vec::new();
            for c in t
                .get("columns")
                .and_then(Json::as_array)
                .ok_or_else(|| DumpError::Format(format!("table {name}: missing columns")))?
            {
                let cname = c
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| DumpError::Format(format!("table {name}: column without name")))?
                    .to_string();
                let dtype = dtype_from_str(c.get("dtype").and_then(Json::as_str).unwrap_or(""))?;
                let nullable = c.get("nullable").and_then(Json::as_bool).unwrap_or(false);
                columns.push((cname, dtype, nullable));
            }
            let strings = |field: &str| -> Vec<String> {
                t.get(field)
                    .and_then(Json::as_array)
                    .map(|a| {
                        a.iter()
                            .filter_map(Json::as_str)
                            .map(str::to_string)
                            .collect()
                    })
                    .unwrap_or_default()
            };
            tables.push(TableDef {
                name,
                columns,
                primary_key: strings("primary_key"),
                indexes: strings("indexes"),
                range_indexes: strings("range_indexes"),
            });
        }
        let namespaces = j
            .get("namespaces")
            .and_then(Json::as_array)
            .map(|a| {
                a.iter()
                    .filter_map(Json::as_str)
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default();
        let mut entries = Vec::new();
        for e in j
            .get("entries")
            .and_then(Json::as_array)
            .ok_or_else(|| DumpError::Format("missing entries".into()))?
        {
            entries.push(wire::txn_from_json(e)?);
        }
        Ok(Dump {
            current_ts,
            tables,
            namespaces,
            entries,
        })
    }

    /// Serializes to a file.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), DumpError> {
        std::fs::write(path, self.to_json().to_string())?;
        Ok(())
    }

    /// Parses a dump file.
    pub fn read_from(path: impl AsRef<Path>) -> Result<Dump, DumpError> {
        let text = std::fs::read_to_string(path)?;
        Dump::from_json(&Json::parse(&text)?)
    }

    /// Boots a fresh session environment from this dump: DDL first, then
    /// every history entry re-applied with its original identity, then
    /// the commit clock advanced to the dumped watermark.
    pub fn boot(&self) -> Result<Session, DumpError> {
        let db = Database::new();
        for t in &self.tables {
            let columns: Vec<Column> = t
                .columns
                .iter()
                .map(|(n, d, nullable)| {
                    if *nullable {
                        Column::nullable(n.clone(), *d)
                    } else {
                        Column::new(n.clone(), *d)
                    }
                })
                .collect();
            let pk: Vec<&str> = t.primary_key.iter().map(String::as_str).collect();
            let schema = Schema::new(columns, &pk)
                .map_err(|e| DumpError::Load(format!("table {}: {e}", t.name)))?;
            db.create_table(t.name.clone(), schema)
                .map_err(|e| DumpError::Load(format!("table {}: {e}", t.name)))?;
            for col in &t.indexes {
                db.create_index(&t.name, col)
                    .map_err(|e| DumpError::Load(format!("index {}.{col}: {e}", t.name)))?;
            }
            for col in &t.range_indexes {
                db.create_range_index(&t.name, col)
                    .map_err(|e| DumpError::Load(format!("range index {}.{col}: {e}", t.name)))?;
            }
        }
        let session = Session::with_kv(db, KvStore::new());
        for ns in &self.namespaces {
            session
                .create_namespace(ns)
                .map_err(|e| DumpError::Load(format!("namespace {ns}: {e}")))?;
        }
        for entry in &self.entries {
            session
                .apply_entry(entry)
                .map_err(|e| DumpError::Load(format!("entry @{}: {e}", entry.commit_ts)))?;
        }
        session.database().ensure_ts_at_least(self.current_ts);
        Ok(session)
    }
}

/// Pulls a fork of a *running* instance at timestamp `ts` over the wire:
/// `sys_schema` for the DDL, `sys_history {up_to: ts}` for the aligned
/// prefix, then a local [`Dump::boot`]. The result is a whole-environment
/// fork equivalent to calling [`Session::fork_at`] on the remote
/// instance — without file access to it.
pub fn fork_from_instance(addr: &str, ts: Ts) -> Result<Session, DumpError> {
    let mut client = crate::client::Client::connect(addr)
        .map_err(|e| DumpError::Load(format!("connect {addr}: {e}")))?;
    let schema = client
        .call("sys_schema", Json::obj(Vec::<(String, Json)>::new()))
        .map_err(|e| DumpError::Load(format!("sys_schema: {e}")))?;
    let history = client
        .call("sys_history", Json::obj(vec![("up_to", Json::from(ts))]))
        .map_err(|e| DumpError::Load(format!("sys_history: {e}")))?;
    // Reassemble the two replies into one dump document and boot it.
    let mut doc = vec![
        ("format".to_string(), Json::str(FORMAT)),
        ("current_ts".to_string(), Json::from(ts)),
    ];
    for field in ["tables", "namespaces"] {
        doc.push((
            field.to_string(),
            schema
                .get(field)
                .cloned()
                .ok_or_else(|| DumpError::Format(format!("sys_schema missing {field}")))?,
        ));
    }
    doc.push((
        "entries".to_string(),
        history
            .get("entries")
            .cloned()
            .ok_or_else(|| DumpError::Format("sys_history missing entries".into()))?,
    ));
    Dump::from_json(&Json::Object(doc))?.boot()
}
