//! Typed JSON-RPC error codes with retryable-vs-fatal semantics.
//!
//! Every error a request can surface — protocol violations, handler
//! failures, engine errors, debugger errors — maps to one numeric code
//! plus a machine-readable `data` object carrying `kind` and
//! `retryable`. Clients implement exactly one retry rule: retry iff
//! `error.data.retryable` is `true` (conflicts, serialization aborts,
//! and the drain window); everything else is fatal for that request.
//! See `PROTOCOL.md` for the full table.

use trod_core::json::Json;
use trod_core::replay::ReplayError;
use trod_core::retroactive::RetroactiveError;
use trod_db::TrodError;
use trod_query::QueryError;
use trod_runtime::HandlerError;
use trod_trace::wire::WireError;

/// JSON-RPC 2.0 standard protocol codes.
pub const PARSE_ERROR: i64 = -32700;
pub const INVALID_REQUEST: i64 = -32600;
pub const METHOD_NOT_FOUND: i64 = -32601;
pub const INVALID_PARAMS: i64 = -32602;

/// Application codes (positive, TROD-specific).
/// A retryable conflict: write conflict, SSI serialization abort, kv
/// freshness veto. The request may succeed verbatim on retry.
pub const CONFLICT: i64 = 1000;
/// A fatal engine/storage error.
pub const STORE: i64 = 1001;
/// A named thing (handler, request, fork, patch, table, namespace, row)
/// does not exist.
pub const NOT_FOUND: i64 = 1004;
/// SQL lex/parse/execution error.
pub const QUERY: i64 = 1020;
/// Replay could not run (no transactions, history truncated, ...).
pub const REPLAY: i64 = 1030;
/// Retroactive re-execution could not run.
pub const RETROACTIVE: i64 = 1040;
/// The handler executed and failed with a non-retryable application
/// error; the failure is part of traced history.
pub const HANDLER: i64 = 1050;
/// Dump/load serialization or reconstruction failure.
pub const DUMP: i64 = 1060;
/// The server is draining for shutdown; retry against a peer or after
/// restart. Maps to HTTP 503.
pub const DRAINING: i64 = 1503;

/// A typed RPC error: numeric code, human message, machine kind, and the
/// one bit clients key retries off.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcError {
    pub code: i64,
    pub message: String,
    /// Stable machine-readable discriminator (e.g. `"write_conflict"`,
    /// `"history_truncated"`), finer-grained than the numeric code.
    pub kind: String,
    pub retryable: bool,
    /// Extra structured context merged into `error.data`.
    pub details: Vec<(String, Json)>,
}

impl RpcError {
    pub fn new(code: i64, kind: impl Into<String>, message: impl Into<String>) -> Self {
        RpcError {
            code,
            message: message.into(),
            kind: kind.into(),
            retryable: matches!(code, CONFLICT | DRAINING),
            details: Vec::new(),
        }
    }

    pub fn with_detail(mut self, key: impl Into<String>, value: Json) -> Self {
        self.details.push((key.into(), value));
        self
    }

    pub fn invalid_params(message: impl Into<String>) -> Self {
        RpcError::new(INVALID_PARAMS, "invalid_params", message)
    }

    pub fn not_found(kind: impl Into<String>, message: impl Into<String>) -> Self {
        RpcError::new(NOT_FOUND, kind, message)
    }

    pub fn draining() -> Self {
        RpcError::new(
            DRAINING,
            "draining",
            "server is draining for shutdown; retry later",
        )
    }

    /// The HTTP status this error travels under. JSON-RPC errors ride a
    /// 200 response (the RPC layer succeeded); the drain window is the
    /// one exception, surfaced as a real 503 so load balancers and plain
    /// HTTP clients see it too.
    pub fn http_status(&self) -> u16 {
        if self.code == DRAINING {
            503
        } else {
            200
        }
    }

    /// The JSON-RPC `error` member.
    pub fn to_json(&self) -> Json {
        let mut data = vec![
            ("kind".to_string(), Json::str(self.kind.clone())),
            ("retryable".to_string(), Json::Bool(self.retryable)),
        ];
        for (k, v) in &self.details {
            data.push((k.clone(), v.clone()));
        }
        Json::obj(vec![
            ("code", Json::Int(self.code)),
            ("message", Json::str(self.message.clone())),
            ("data", Json::Object(data)),
        ])
    }
}

impl From<&HandlerError> for RpcError {
    fn from(e: &HandlerError) -> Self {
        let (code, kind) = match e {
            HandlerError::NoSuchHandler(_) => (NOT_FOUND, "no_such_handler"),
            HandlerError::BadArgument(_) => (INVALID_PARAMS, "bad_argument"),
            _ if e.is_retryable() => (CONFLICT, "conflict"),
            HandlerError::App(_) => (HANDLER, "application_error"),
            HandlerError::Db(_) => (HANDLER, "database_error"),
            HandlerError::Kv(_) => (HANDLER, "kv_error"),
        };
        RpcError::new(code, kind, e.to_string())
    }
}

impl From<&TrodError> for RpcError {
    fn from(e: &TrodError) -> Self {
        let kind = match e {
            TrodError::Relational(_) => "relational",
            TrodError::KeyValue(_) => "key_value",
            TrodError::Storage(_) => "storage",
        };
        if e.is_retryable() {
            RpcError::new(CONFLICT, format!("{kind}_conflict"), e.to_string())
        } else {
            RpcError::new(STORE, kind, e.to_string())
        }
    }
}

impl From<TrodError> for RpcError {
    fn from(e: TrodError) -> Self {
        RpcError::from(&e)
    }
}

impl From<&ReplayError> for RpcError {
    fn from(e: &ReplayError) -> Self {
        match e {
            ReplayError::UnknownRequest(req) => RpcError::not_found(
                "unknown_request",
                format!("no traced request `{req}` in provenance"),
            ),
            ReplayError::HistoryTruncated { snapshot_ts, floor } => {
                RpcError::new(REPLAY, "history_truncated", e.to_string())
                    .with_detail("snapshot_ts", Json::from(*snapshot_ts))
                    .with_detail("floor", Json::from(*floor))
            }
            _ => RpcError::new(REPLAY, "replay", e.to_string()),
        }
    }
}

impl From<&QueryError> for RpcError {
    fn from(e: &QueryError) -> Self {
        RpcError::new(QUERY, "query", e.to_string())
    }
}

impl From<&RetroactiveError> for RpcError {
    fn from(e: &RetroactiveError) -> Self {
        match e {
            RetroactiveError::MissingRequestRecord(req) => RpcError::not_found(
                "unknown_request",
                format!("no traced request `{req}` in provenance"),
            ),
            RetroactiveError::Fork(fork) => {
                let mut err = RpcError::from(fork);
                err.code = RETROACTIVE;
                err
            }
            _ => RpcError::new(RETROACTIVE, "retroactive", e.to_string()),
        }
    }
}

impl From<&WireError> for RpcError {
    fn from(e: &WireError) -> Self {
        RpcError::invalid_params(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trod_db::{DbError, KvError};

    #[test]
    fn retryability_tracks_the_engine() {
        let conflict: RpcError = (&TrodError::from(DbError::WriteConflict {
            table: "t".into(),
            key: "k".into(),
        }))
            .into();
        assert_eq!(conflict.code, CONFLICT);
        assert!(conflict.retryable);

        let fatal: RpcError = (&TrodError::from(DbError::NoSuchTable("t".into()))).into();
        assert_eq!(fatal.code, STORE);
        assert!(!fatal.retryable);

        let kv: RpcError = (&HandlerError::Kv(KvError::Conflict {
            namespace: "n".into(),
            key: "k".into(),
        }))
            .into();
        assert_eq!(kv.code, CONFLICT);
        assert!(kv.retryable);

        assert!(RpcError::draining().retryable);
        assert_eq!(RpcError::draining().http_status(), 503);
    }

    #[test]
    fn error_json_carries_kind_and_retryable() {
        let e = RpcError::new(CONFLICT, "write_conflict", "boom")
            .with_detail("table", Json::str("orders"));
        let j = e.to_json();
        assert_eq!(j.get("code").and_then(Json::as_i64), Some(CONFLICT));
        let data = j.get("data").unwrap();
        assert_eq!(data.get("retryable").and_then(Json::as_bool), Some(true));
        assert_eq!(
            data.get("kind").and_then(Json::as_str),
            Some("write_conflict")
        );
        assert_eq!(data.get("table").and_then(Json::as_str), Some("orders"));
    }
}
