//! A hand-rolled HTTP/1.1 subset: exactly what the JSON-RPC front-end
//! needs, nothing else.
//!
//! The build environment has no registry access, so there is no hyper and
//! no tokio — requests are parsed straight off a `BufRead` with hard
//! limits on line length, header count and body size, and the parser is
//! property-tested against arbitrary bytes (it must reject, never
//! panic). Supported: `GET`/`POST`, `Content-Length` bodies, keep-alive.
//! Not supported (rejected with a clear error): chunked transfer
//! encoding, HTTP/0.9/2, multiline headers.

use std::io::{self, BufRead, Write};

/// Parser limits; defaults are generous for RPC traffic while bounding
/// hostile input.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum request-line or header-line length in bytes.
    pub max_line: usize,
    /// Maximum number of headers.
    pub max_headers: usize,
    /// Maximum `Content-Length` accepted. Dump transfers ride this, so
    /// the default is large.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_line: 8 * 1024,
            max_headers: 64,
            max_body: 256 * 1024 * 1024,
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    pub method: String,
    pub path: String,
    /// Header names lower-cased at parse time; values trimmed.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First header with this (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// True if the client asked to close the connection after this
    /// request (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false)
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// Transport error (includes read timeouts, surfaced as
    /// `WouldBlock`/`TimedOut`).
    Io(io::Error),
    /// The bytes are not a well-formed request within our subset.
    Malformed(String),
    /// A limit was exceeded.
    TooLarge(String),
}

impl HttpError {
    /// True if this is a read timeout rather than a real failure.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            HttpError::Io(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
        )
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Malformed(d) => write!(f, "malformed request: {d}"),
            HttpError::TooLarge(d) => write!(f, "request too large: {d}"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one line terminated by `\n` (tolerating `\r\n`), bounded by
/// `max_line`. Returns `None` on clean EOF before any byte.
fn read_line(r: &mut impl BufRead, max_line: usize) -> Result<Option<String>, HttpError> {
    let mut buf = Vec::with_capacity(80);
    loop {
        let mut byte = [0u8; 1];
        let n = match r.read(&mut byte) {
            Ok(n) => n,
            Err(e) => return Err(HttpError::Io(e)),
        };
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(HttpError::Malformed("eof mid-line".into()));
        }
        if byte[0] == b'\n' {
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            let s = String::from_utf8(buf)
                .map_err(|_| HttpError::Malformed("non-utf8 header line".into()))?;
            return Ok(Some(s));
        }
        buf.push(byte[0]);
        if buf.len() > max_line {
            return Err(HttpError::TooLarge(format!(
                "line exceeds {max_line} bytes"
            )));
        }
    }
}

/// Reads one request off the stream. `Ok(None)` means the peer closed
/// the connection cleanly between requests (normal keep-alive end).
pub fn read_request(
    r: &mut impl BufRead,
    limits: &Limits,
) -> Result<Option<HttpRequest>, HttpError> {
    let request_line = match read_line(r, limits.max_line)? {
        None => return Ok(None),
        Some(line) => line,
    };
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?;
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::Malformed(format!("bad method {method:?}")));
    }
    let path = parts
        .next()
        .filter(|p| p.starts_with('/'))
        .ok_or_else(|| HttpError::Malformed("missing request path".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    if parts.next().is_some() {
        return Err(HttpError::Malformed("extra tokens in request line".into()));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(r, limits.max_line)?
            .ok_or_else(|| HttpError::Malformed("eof in headers".into()))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::TooLarge(format!(
                "more than {} headers",
                limits.max_headers
            )));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without ':': {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed(format!("bad header name {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let req = HttpRequest {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };
    if req.header("transfer-encoding").is_some() {
        return Err(HttpError::Malformed("chunked bodies not supported".into()));
    }
    let content_length = match req.header("content-length") {
        None => 0usize,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))?,
    };
    if content_length > limits.max_body {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds {}",
            limits.max_body
        )));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        io::Read::read_exact(r, &mut body).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                HttpError::Malformed("eof mid-body".into())
            } else {
                HttpError::Io(e)
            }
        })?;
    }
    Ok(Some(HttpRequest { body, ..req }))
}

/// Parses a request from a complete byte buffer (the fuzz entry point).
pub fn parse_request(bytes: &[u8]) -> Result<Option<HttpRequest>, HttpError> {
    let mut cursor = io::Cursor::new(bytes);
    read_request(&mut cursor, &Limits::default())
}

/// The canonical reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a full response with a JSON body.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    // One buffered write per response: header + body in a single syscall
    // keeps small responses in one TCP segment (with TCP_NODELAY set).
    let mut head = String::with_capacity(128);
    use std::fmt::Write as _;
    let _ = write!(
        head,
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        status,
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    let mut buf = Vec::with_capacity(head.len() + body.len());
    buf.extend_from_slice(head.as_bytes());
    buf.extend_from_slice(body);
    w.write_all(&buf)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn parse_str(s: &str) -> Result<Option<HttpRequest>, HttpError> {
        parse_request(s.as_bytes())
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse_str(
            "POST /rpc HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\nContent-Type: application/json\r\n\r\nbody",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/rpc");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"body");
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_bare_lf_and_connection_close() {
        let req = parse_str("GET /health HTTP/1.1\nConnection: close\n\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.wants_close());
        assert!(req.body.is_empty());
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse_str("").unwrap().is_none());
    }

    #[test]
    fn rejections() {
        for bad in [
            "GET\r\n\r\n",
            "GET /x\r\n\r\n",
            "get /x HTTP/1.1\r\n\r\n",
            "GET /x HTTP/2\r\n\r\n",
            "GET x HTTP/1.1\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "GET /x HTTP/1.1\r\nno-colon\r\n\r\n",
            "GET /x HTTP/1.1\r\nbad name: v\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
            "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            "GET /x HTTP/1.1\r\nHost: x",
        ] {
            assert!(parse_str(bad).is_err(), "expected rejection: {bad:?}");
        }
    }

    #[test]
    fn limits_are_enforced() {
        let limits = Limits {
            max_line: 32,
            max_headers: 2,
            max_body: 8,
        };
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(100));
        assert!(matches!(
            read_request(&mut io::Cursor::new(long.as_bytes()), &limits),
            Err(HttpError::TooLarge(_))
        ));
        let many = "GET /x HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n\r\n";
        assert!(matches!(
            read_request(&mut io::Cursor::new(many.as_bytes()), &limits),
            Err(HttpError::TooLarge(_))
        ));
        let big = "POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\n";
        assert!(matches!(
            read_request(&mut io::Cursor::new(big.as_bytes()), &limits),
            Err(HttpError::TooLarge(_))
        ));
    }

    #[test]
    fn response_round_trips_shape() {
        let mut out = Vec::new();
        write_response(&mut out, 200, b"{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// The parser never panics on arbitrary bytes — reject, don't die.
        #[test]
        fn parser_never_panics(bytes in prop::collection::vec(0u8..=255, 0..200)) {
            let _ = parse_request(&bytes);
        }

        /// Nor on inputs that look *almost* like real requests.
        #[test]
        fn parser_never_panics_on_near_requests(
            method in "[A-Za-z]{0,8}",
            path in "[ -~]{0,24}",
            header in "[ -~]{0,32}",
            len in 0usize..64,
            body in "[ -~]{0,32}",
        ) {
            let raw = format!("{method} {path} HTTP/1.1\r\n{header}\r\ncontent-length: {len}\r\n\r\n{body}");
            let _ = parse_request(raw.as_bytes());
        }

        /// Well-formed requests round-trip through the parser.
        #[test]
        fn well_formed_requests_parse(
            path in "[a-z/_]{1,16}",
            body in "[ -~]{0,64}",
        ) {
            let raw = format!(
                "POST /{path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
                body.len()
            );
            let req = parse_request(raw.as_bytes()).unwrap().unwrap();
            prop_assert_eq!(req.path, format!("/{path}"));
            prop_assert_eq!(req.body, body.into_bytes());
        }
    }
}
