//! The JSON-RPC method surface: one dispatcher mapping method names to
//! the engine, time-travel, and debugger operations of the wrapped
//! [`Trod`] instance. See `PROTOCOL.md` for the protocol reference.

use trod_core::json::Json;
use trod_core::wire;
use trod_db::{Key, Ts, Value};
use trod_query::{QueryEngine, ResultSet};
use trod_runtime::Args;

use crate::dump::{self, Dump};
use crate::error::{RpcError, DUMP};
use crate::state::{ForkEntry, ServerState};

/// Default `retries` for `trod_invoke`: retryable conflicts are retried
/// server-side this many times before the error goes back on the wire.
const DEFAULT_RETRIES: usize = 0;

fn p_str<'a>(params: &'a Json, field: &str) -> Result<&'a str, RpcError> {
    params
        .get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| RpcError::invalid_params(format!("missing string param `{field}`")))
}

fn p_opt_u64(params: &Json, field: &str) -> Result<Option<u64>, RpcError> {
    match params.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            RpcError::invalid_params(format!("param `{field}` must be a non-negative integer"))
        }),
    }
}

fn p_ts(params: &Json, field: &str) -> Result<Ts, RpcError> {
    p_opt_u64(params, field)?
        .ok_or_else(|| RpcError::invalid_params(format!("missing timestamp param `{field}`")))
}

fn args_from_json(params: &Json) -> Result<Args, RpcError> {
    let mut args = Args::new();
    match params.get("args") {
        None | Some(Json::Null) => {}
        Some(Json::Object(fields)) => {
            for (name, v) in fields {
                let value: Value = wire::value_from_json(v).map_err(|e| RpcError::from(&e))?;
                args.set(name.clone(), value);
            }
        }
        Some(_) => return Err(RpcError::invalid_params("`args` must be an object")),
    }
    Ok(args)
}

fn key_from_params(params: &Json) -> Result<Key, RpcError> {
    let j = params
        .get("key")
        .ok_or_else(|| RpcError::invalid_params("missing param `key`"))?;
    wire::key_from_json(j).map_err(|e| RpcError::from(&e))
}

fn result_set_to_json(rs: &ResultSet) -> Json {
    Json::obj(vec![
        (
            "columns",
            Json::Array(rs.columns().iter().map(|c| Json::str(c.clone())).collect()),
        ),
        (
            "rows",
            Json::Array(
                rs.rows()
                    .iter()
                    .map(|r| Json::Array(r.iter().map(wire::value_to_json).collect()))
                    .collect(),
            ),
        ),
    ])
}

fn kv_entries_to_json(entries: Vec<(String, String)>) -> Json {
    Json::Array(
        entries
            .into_iter()
            .map(|(k, v)| Json::Array(vec![Json::str(k), Json::str(v)]))
            .collect(),
    )
}

fn replay_report_to_json(report: &trod_core::replay::ReplayReport) -> Json {
    Json::obj(vec![
        ("req_id", Json::str(report.req_id.clone())),
        ("faithful", Json::Bool(report.is_faithful())),
        ("injected_count", Json::from(report.injected_count())),
        ("writes_skipped", Json::from(report.writes_skipped())),
        (
            "steps",
            Json::Array(
                report
                    .steps
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("txn_id", Json::from(s.txn_id)),
                            ("handler", Json::str(s.handler.clone())),
                            ("function", Json::str(s.function.clone())),
                            (
                                "injected",
                                Json::Array(
                                    s.injected
                                        .iter()
                                        .map(|(txn, req)| {
                                            Json::Array(vec![
                                                Json::from(*txn),
                                                Json::str(req.clone()),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                            ("reads_checked", Json::from(s.reads_checked)),
                            (
                                "mismatches",
                                Json::Array(
                                    s.mismatches.iter().map(|m| Json::str(m.clone())).collect(),
                                ),
                            ),
                            ("writes_applied", Json::from(s.writes_applied)),
                            ("writes_skipped", Json::from(s.writes_skipped)),
                            ("partial_data", Json::Bool(s.partial_data)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Runs a closure against a registered fork session.
fn with_fork<T>(
    state: &ServerState,
    params: &Json,
    f: impl FnOnce(&ForkEntry) -> Result<T, RpcError>,
) -> Result<T, RpcError> {
    let id = p_str(params, "fork")?;
    let forks = state.forks.lock();
    let entry = forks
        .get(id)
        .ok_or_else(|| RpcError::not_found("no_such_fork", format!("no fork `{id}`")))?;
    f(entry)
}

/// Dispatches one already-parsed JSON-RPC call. Protocol-level errors
/// (unknown method, bad params) and every engine error come back as a
/// typed [`RpcError`].
pub fn dispatch(state: &ServerState, method: &str, params: &Json) -> Result<Json, RpcError> {
    match method {
        // ------------------------------------------------------ execution
        "trod_invoke" => {
            let handler = p_str(params, "handler")?;
            let args = args_from_json(params)?;
            let retries = p_opt_u64(params, "retries")?.unwrap_or(DEFAULT_RETRIES as u64) as usize;
            let want_sync = params.get("sync").and_then(Json::as_bool).unwrap_or(false);
            let result = state
                .trod
                .runtime()
                .handle_request_retrying(handler, args, retries);
            match result.output {
                Ok(value) => {
                    let mut fields = vec![
                        ("req_id".to_string(), Json::str(result.req_id.clone())),
                        ("output".to_string(), wire::value_to_json(&value)),
                        (
                            "duration_micros".to_string(),
                            Json::from(result.duration_micros),
                        ),
                    ];
                    if want_sync {
                        state.sync_provenance();
                        let commit_ts = state
                            .trod
                            .provenance()
                            .txns_for_request(&result.req_id)
                            .iter()
                            .map(|t| t.commit_ts)
                            .max()
                            .unwrap_or(0);
                        fields.push(("commit_ts".to_string(), Json::from(commit_ts)));
                    }
                    Ok(Json::Object(fields))
                }
                Err(e) => {
                    Err(RpcError::from(&e).with_detail("req_id", Json::str(result.req_id.clone())))
                }
            }
        }

        // ------------------------------------------ queries & time travel
        "trod_sql" => {
            let sql = p_str(params, "sql")?;
            let target = params.get("target").and_then(Json::as_str).unwrap_or("app");
            let engine = match target {
                "app" => QueryEngine::new(state.trod.production_db().clone()),
                "provenance" => {
                    state.sync_provenance();
                    QueryEngine::new(state.trod.provenance().database().clone())
                }
                other => {
                    return Err(RpcError::invalid_params(format!(
                        "unknown target {other:?} (expected \"app\" or \"provenance\")"
                    )))
                }
            };
            let rs = match p_opt_u64(params, "as_of")? {
                Some(ts) => engine.execute_as_of(sql, ts),
                None => engine.execute(sql),
            }
            .map_err(|e| RpcError::from(&e))?;
            Ok(result_set_to_json(&rs))
        }
        "trod_get" => {
            let table = p_str(params, "table")?;
            let key = key_from_params(params)?;
            let db = state.trod.production_db();
            let row = match p_opt_u64(params, "as_of")? {
                Some(ts) => db.get_as_of(table, &key, ts),
                None => db.get_latest(table, &key),
            }
            .map_err(|e| RpcError::from(&trod_db::TrodError::Relational(e)))?;
            Ok(Json::obj(vec![(
                "row",
                row.map(|r| wire::row_to_json(&r)).unwrap_or(Json::Null),
            )]))
        }
        "kv_get" => {
            let namespace = p_str(params, "namespace")?;
            let key = p_str(params, "key")?;
            let kv =
                state.trod.session().kv_store().ok_or_else(|| {
                    RpcError::not_found("no_kv_store", "no key-value store bound")
                })?;
            let value = match p_opt_u64(params, "as_of")? {
                Some(ts) => kv.get_as_of(namespace, key, ts),
                None => kv.get_latest(namespace, key),
            }
            .map_err(|e| RpcError::from(&trod_db::TrodError::KeyValue(e)))?;
            Ok(Json::obj(vec![(
                "value",
                value.map(Json::str).unwrap_or(Json::Null),
            )]))
        }
        "kv_scan" => {
            let namespace = p_str(params, "namespace")?;
            let prefix = params.get("prefix").and_then(Json::as_str).unwrap_or("");
            let kv =
                state.trod.session().kv_store().ok_or_else(|| {
                    RpcError::not_found("no_kv_store", "no key-value store bound")
                })?;
            let entries = match p_opt_u64(params, "as_of")? {
                Some(ts) => kv.scan_prefix_as_of(namespace, prefix, ts),
                None => kv.scan_prefix(namespace, prefix),
            }
            .map_err(|e| RpcError::from(&trod_db::TrodError::KeyValue(e)))?;
            Ok(Json::obj(vec![("entries", kv_entries_to_json(entries))]))
        }

        // ------------------------------------------------- fork sessions
        "trod_fork" => {
            let ts = p_ts(params, "ts")?;
            state.sync_provenance();
            let session = state.trod.fork_at(ts).map_err(|e| RpcError::from(&e))?;
            let id = state.fresh_fork_id();
            state
                .forks
                .lock()
                .insert(id.clone(), ForkEntry { session, ts });
            Ok(Json::obj(vec![
                ("fork_id", Json::str(id)),
                ("ts", Json::from(ts)),
            ]))
        }
        "fork_sql" => {
            let sql = p_str(params, "sql")?.to_string();
            with_fork(state, params, |fork| {
                let engine = QueryEngine::new(fork.session.database().clone());
                let rs = engine.execute(&sql).map_err(|e| RpcError::from(&e))?;
                Ok(result_set_to_json(&rs))
            })
        }
        "fork_get" => {
            let table = p_str(params, "table")?.to_string();
            let key = key_from_params(params)?;
            with_fork(state, params, |fork| {
                let row = fork
                    .session
                    .database()
                    .get_latest(&table, &key)
                    .map_err(|e| RpcError::from(&trod_db::TrodError::Relational(e)))?;
                Ok(Json::obj(vec![(
                    "row",
                    row.map(|r| wire::row_to_json(&r)).unwrap_or(Json::Null),
                )]))
            })
        }
        "fork_kv_get" => {
            let namespace = p_str(params, "namespace")?.to_string();
            let key = p_str(params, "key")?.to_string();
            with_fork(state, params, |fork| {
                let kv = fork.session.kv_store().ok_or_else(|| {
                    RpcError::not_found("no_kv_store", "fork has no key-value store")
                })?;
                let value = kv
                    .get_latest(&namespace, &key)
                    .map_err(|e| RpcError::from(&trod_db::TrodError::KeyValue(e)))?;
                Ok(Json::obj(vec![(
                    "value",
                    value.map(Json::str).unwrap_or(Json::Null),
                )]))
            })
        }
        "fork_kv_scan" => {
            let namespace = p_str(params, "namespace")?.to_string();
            let prefix = params
                .get("prefix")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string();
            with_fork(state, params, |fork| {
                let kv = fork.session.kv_store().ok_or_else(|| {
                    RpcError::not_found("no_kv_store", "fork has no key-value store")
                })?;
                let entries = kv
                    .scan_prefix(&namespace, &prefix)
                    .map_err(|e| RpcError::from(&trod_db::TrodError::KeyValue(e)))?;
                Ok(Json::obj(vec![("entries", kv_entries_to_json(entries))]))
            })
        }
        "fork_drop" => {
            let id = p_str(params, "fork")?;
            let removed = state.forks.lock().remove(id).is_some();
            if removed {
                Ok(Json::obj(vec![("dropped", Json::str(id))]))
            } else {
                Err(RpcError::not_found(
                    "no_such_fork",
                    format!("no fork `{id}`"),
                ))
            }
        }
        "fork_list" => {
            let forks = state.forks.lock();
            let mut list: Vec<(&String, Ts)> = forks.iter().map(|(id, e)| (id, e.ts)).collect();
            list.sort();
            Ok(Json::obj(vec![(
                "forks",
                Json::Array(
                    list.into_iter()
                        .map(|(id, ts)| {
                            Json::obj(vec![
                                ("fork_id", Json::str(id.clone())),
                                ("ts", Json::from(ts)),
                            ])
                        })
                        .collect(),
                ),
            )]))
        }

        // ------------------------------------------------------ debugger
        "trod_replay" => {
            let req_id = p_str(params, "req_id")?;
            state.sync_provenance();
            let mut replay = state.trod.replay(req_id).map_err(|e| RpcError::from(&e))?;
            let report = replay.run_to_end().map_err(|e| RpcError::from(&e))?;
            // Keep the development environment inspectable over the wire.
            let fork_id = state.fresh_fork_id();
            let dev = replay.dev_session().clone();
            let ts = dev.database().current_ts();
            state
                .forks
                .lock()
                .insert(fork_id.clone(), ForkEntry { session: dev, ts });
            let mut j = replay_report_to_json(&report);
            if let Json::Object(fields) = &mut j {
                fields.push(("fork_id".to_string(), Json::str(fork_id)));
            }
            Ok(j)
        }
        "trod_reenact" => {
            let req_id = p_str(params, "req_id")?;
            state.sync_provenance();
            let reports = state
                .trod
                .reenactor()
                .reenact_request(req_id)
                .map_err(|e| RpcError::from(&trod_db::TrodError::Relational(e)))?;
            if reports.is_empty() {
                return Err(RpcError::not_found(
                    "unknown_request",
                    format!("no traced request `{req_id}` in provenance"),
                ));
            }
            Ok(Json::obj(vec![(
                "reports",
                Json::Array(
                    reports
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("txn_id", Json::from(r.txn_id)),
                                ("req_id", Json::str(r.req_id.clone())),
                                ("handler", Json::str(r.handler.clone())),
                                ("snapshot_ts", Json::from(r.snapshot_ts)),
                                ("reads_checked", Json::from(r.reads_checked)),
                                (
                                    "divergent_reads",
                                    Json::Array(
                                        r.divergent_reads
                                            .iter()
                                            .map(|d| Json::str(d.clone()))
                                            .collect(),
                                    ),
                                ),
                                (
                                    "snapshot_consistent",
                                    Json::Bool(r.is_snapshot_consistent()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            )]))
        }
        "trod_anomalies" => {
            state.sync_provenance();
            let anomalies = state.trod.reenactor().audit_anomalies();
            Ok(Json::obj(vec![(
                "anomalies",
                Json::Array(
                    anomalies
                        .iter()
                        .map(|a| {
                            Json::obj(vec![
                                ("kind", Json::str(a.kind.to_string())),
                                (
                                    "txns",
                                    Json::Array(vec![Json::from(a.txns.0), Json::from(a.txns.1)]),
                                ),
                                (
                                    "requests",
                                    Json::Array(vec![
                                        Json::str(a.requests.0.clone()),
                                        Json::str(a.requests.1.clone()),
                                    ]),
                                ),
                                (
                                    "handlers",
                                    Json::Array(vec![
                                        Json::str(a.handlers.0.clone()),
                                        Json::str(a.handlers.1.clone()),
                                    ]),
                                ),
                                (
                                    "tables",
                                    Json::Array(
                                        a.tables.iter().map(|t| Json::str(t.clone())).collect(),
                                    ),
                                ),
                                ("detail", Json::str(a.detail.clone())),
                            ])
                        })
                        .collect(),
                ),
            )]))
        }
        "trod_retroactive" => {
            let patch = p_str(params, "patch")?;
            let registry = state.patches.get(patch).cloned().ok_or_else(|| {
                RpcError::not_found(
                    "no_such_patch",
                    format!(
                        "no patch registry `{patch}` installed (available: {:?})",
                        state.patches.keys().collect::<Vec<_>>()
                    ),
                )
            })?;
            state.sync_provenance();
            let mut builder = state.trod.retroactive(registry);
            if let Some(reqs) = params.get("requests").and_then(Json::as_array) {
                let ids: Vec<String> = reqs
                    .iter()
                    .map(|r| {
                        r.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| RpcError::invalid_params("`requests` must be strings"))
                    })
                    .collect::<Result<_, _>>()?;
                let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
                builder = builder.requests(&refs);
            }
            if let Some(table) = params.get("table").and_then(Json::as_str) {
                builder = builder.requests_touching_table(table);
            }
            if let Some(ts) = p_opt_u64(params, "snapshot_at")? {
                builder = builder.snapshot_at(ts);
            }
            if let Some(n) = p_opt_u64(params, "max_orderings")? {
                builder = builder.max_orderings(n as usize);
            }
            let keep_forks = params
                .get("keep_forks")
                .and_then(Json::as_bool)
                .unwrap_or(false);
            let report = builder.run().map_err(|e| RpcError::from(&e))?;
            let orderings = report
                .orderings
                .iter()
                .map(|o| {
                    let mut fields = vec![
                        (
                            "order".to_string(),
                            Json::Array(o.order.iter().map(|r| Json::str(r.clone())).collect()),
                        ),
                        (
                            "outcomes".to_string(),
                            Json::Array(
                                o.outcomes
                                    .iter()
                                    .map(|oc| {
                                        Json::obj(vec![
                                            ("req_id", Json::str(oc.req_id.clone())),
                                            (
                                                "original_req_id",
                                                Json::str(oc.original_req_id.clone()),
                                            ),
                                            ("handler", Json::str(oc.handler.clone())),
                                            ("ok", Json::Bool(oc.ok)),
                                            ("output", Json::str(oc.output.clone())),
                                            (
                                                "original_output",
                                                oc.original_output
                                                    .clone()
                                                    .map(Json::str)
                                                    .unwrap_or(Json::Null),
                                            ),
                                            (
                                                "original_ok",
                                                oc.original_ok
                                                    .map(Json::Bool)
                                                    .unwrap_or(Json::Null),
                                            ),
                                            ("outcome_changed", Json::Bool(oc.outcome_changed())),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                        (
                            "violations".to_string(),
                            Json::Array(
                                o.violations.iter().map(|v| Json::str(v.clone())).collect(),
                            ),
                        ),
                    ];
                    if keep_forks {
                        let fork_id = state.fresh_fork_id();
                        let dev = o.dev.clone();
                        let ts = dev.database().current_ts();
                        state
                            .forks
                            .lock()
                            .insert(fork_id.clone(), ForkEntry { session: dev, ts });
                        fields.push(("fork_id".to_string(), Json::str(fork_id)));
                    }
                    Json::Object(fields)
                })
                .collect();
            Ok(Json::obj(vec![
                ("snapshot_ts", Json::from(report.snapshot_ts)),
                ("conflicting_pairs", Json::from(report.conflicting_pairs)),
                (
                    "all_orderings_clean",
                    Json::Bool(report.all_orderings_clean()),
                ),
                ("orderings", Json::Array(orderings)),
            ]))
        }
        "trod_trace" => {
            let req_id = p_str(params, "req_id")?;
            state.sync_provenance();
            let txns = state.trod.provenance().txns_for_request(req_id);
            if txns.is_empty() {
                return Err(RpcError::not_found(
                    "unknown_request",
                    format!("no traced request `{req_id}` in provenance"),
                ));
            }
            Ok(Json::obj(vec![(
                "txns",
                Json::Array(txns.iter().map(wire::txn_trace_to_json).collect()),
            )]))
        }

        // -------------------------------------------------------- system
        "sys_status" => {
            let db = state.trod.production_db();
            let wal = match db.wal() {
                Some(wal) => Json::obj(vec![
                    ("appended", Json::from(wal.appended())),
                    ("durable", Json::from(wal.durable())),
                ]),
                None => Json::Null,
            };
            let mut handlers = state.trod.runtime().registry().names();
            handlers.sort();
            Ok(Json::obj(vec![
                ("draining", Json::Bool(state.is_draining())),
                (
                    "served",
                    Json::from(state.served.load(std::sync::atomic::Ordering::Relaxed)),
                ),
                (
                    "inflight",
                    Json::from(state.inflight.load(std::sync::atomic::Ordering::Relaxed)),
                ),
                ("current_ts", Json::from(db.current_ts())),
                (
                    "handlers",
                    Json::Array(handlers.into_iter().map(Json::str).collect()),
                ),
                (
                    "patches",
                    Json::Array({
                        let mut names: Vec<&String> = state.patches.keys().collect();
                        names.sort();
                        names.into_iter().map(|n| Json::str(n.clone())).collect()
                    }),
                ),
                ("forks", Json::from(state.forks.lock().len())),
                ("wal", wal),
            ]))
        }
        "sys_health" => {
            let db = state.trod.production_db();
            let wal = match db.wal() {
                Some(wal) => {
                    let s = wal.stats();
                    Json::obj(vec![
                        ("segmented", Json::Bool(wal.is_segmented())),
                        ("segments", Json::from(s.segments as u64)),
                        ("cold_files", Json::from(s.cold_files as u64)),
                        ("active_bytes", Json::from(s.active_bytes)),
                        ("appended", Json::from(s.appended)),
                        ("durable", Json::from(s.durable)),
                        ("segment_bytes", Json::from(s.segment_bytes)),
                        ("rotations", Json::from(s.rotations)),
                        ("compactions", Json::from(s.compactions)),
                        ("rotation_errors", Json::from(s.rotation_errors)),
                        ("compaction_errors", Json::from(s.compaction_errors)),
                        (
                            "last_compaction_unix_ms",
                            Json::from(s.last_compaction_unix_ms),
                        ),
                        (
                            "checkpoints",
                            Json::obj(vec![
                                ("count", Json::from(s.checkpoints as u64)),
                                ("newest_ts", Json::from(s.checkpoint_newest_ts)),
                                ("checkpoint_bytes", Json::from(s.checkpoint_bytes)),
                                ("writes", Json::from(s.checkpoint_writes)),
                                ("skips", Json::from(s.checkpoint_skips)),
                                ("errors", Json::from(s.checkpoint_errors)),
                                ("fallbacks", Json::from(s.checkpoint_fallbacks)),
                            ]),
                        ),
                    ])
                }
                None => Json::Null,
            };
            Ok(Json::obj(vec![
                ("draining", Json::Bool(state.is_draining())),
                (
                    "served",
                    Json::from(state.served.load(std::sync::atomic::Ordering::Relaxed)),
                ),
                (
                    "inflight",
                    Json::from(state.inflight.load(std::sync::atomic::Ordering::Relaxed)),
                ),
                ("current_ts", Json::from(db.current_ts())),
                ("gc_floor", Json::from(db.log_truncated_below())),
                ("live_log_entries", Json::from(db.log_entries().len())),
                ("wal", wal),
            ]))
        }
        "sys_checkpoint" => {
            let written = state.trod.checkpoint()?;
            Ok(Json::obj(vec![
                ("written", Json::Bool(written.is_some())),
                (
                    "checkpoint_ts",
                    written.map(|(ts, _)| Json::from(ts)).unwrap_or(Json::Null),
                ),
                (
                    "bytes",
                    written
                        .map(|(_, bytes)| Json::from(bytes))
                        .unwrap_or(Json::Null),
                ),
            ]))
        }
        "sys_schema" => {
            let schema = Dump::capture_schema(&state.trod);
            let j = schema.to_json();
            Ok(Json::obj(vec![
                ("tables", j.get("tables").cloned().unwrap_or(Json::Null)),
                (
                    "namespaces",
                    j.get("namespaces").cloned().unwrap_or(Json::Null),
                ),
                ("current_ts", Json::from(schema.current_ts)),
            ]))
        }
        "sys_history" => {
            let mut entries = dump::stitched_entries(&state.trod);
            if let Some(up_to) = p_opt_u64(params, "up_to")? {
                entries.retain(|e| e.commit_ts <= up_to);
            }
            Ok(Json::obj(vec![
                (
                    "current_ts",
                    Json::from(state.trod.production_db().current_ts()),
                ),
                (
                    "entries",
                    Json::Array(entries.iter().map(wire::txn_to_json).collect()),
                ),
            ]))
        }
        "sys_dump" => {
            state.sync_provenance();
            let dump = Dump::capture(&state.trod);
            match params.get("path").and_then(Json::as_str) {
                Some(path) => {
                    dump.write_to(path)
                        .map_err(|e| RpcError::new(DUMP, "dump_write", e.to_string()))?;
                    Ok(Json::obj(vec![
                        ("written", Json::str(path)),
                        ("entries", Json::from(dump.entries.len())),
                        ("current_ts", Json::from(dump.current_ts)),
                    ]))
                }
                None => Ok(Json::obj(vec![("dump", dump.to_json())])),
            }
        }

        _ => Err(RpcError::new(
            crate::error::METHOD_NOT_FOUND,
            "method_not_found",
            format!("unknown method `{method}`"),
        )),
    }
}
