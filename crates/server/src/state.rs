//! Shared state behind every connection thread: the [`Trod`] instance,
//! named retroactive patch registries, remote fork sessions, and the
//! drain/served counters the graceful-shutdown path reads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use trod_core::Trod;
use trod_kv::Session;
use trod_runtime::HandlerRegistry;

/// A fork of the whole environment held open on behalf of remote
/// clients, addressable by the id `trod_fork` returned.
pub struct ForkEntry {
    pub session: Session,
    /// The timestamp the fork was taken at.
    pub ts: trod_db::Ts,
}

/// State shared by the acceptor, every worker thread, and the shutdown
/// path.
pub struct ServerState {
    pub trod: Arc<Trod>,
    /// Named patched handler registries for `trod_retroactive` — the
    /// wire protocol can't ship Rust closures, so patches are installed
    /// server-side at build time and selected by name.
    pub patches: HashMap<String, HandlerRegistry>,
    /// Remote fork sessions, keyed by the id handed to the client.
    pub forks: Mutex<HashMap<String, ForkEntry>>,
    next_fork: AtomicU64,
    /// Set once by shutdown; workers answer every request received after
    /// this with a typed retryable 503.
    draining: AtomicBool,
    /// Requests currently being dispatched (incremented after a request
    /// is parsed, decremented once its response bytes are written).
    pub inflight: AtomicU64,
    /// Requests answered with a real response (including RPC errors).
    pub served: AtomicU64,
    /// Requests rejected with 503 during the drain window.
    pub rejected_draining: AtomicU64,
    /// Serializes `Trod::sync` against itself. Tracer drains are
    /// destructive (drained events exist only in the caller's hands
    /// until ingested), so two racing syncs must not interleave
    /// drain/ingest; every dispatch path that needs fresh provenance
    /// goes through [`ServerState::sync_provenance`].
    sync_lock: Mutex<()>,
}

impl ServerState {
    pub fn new(trod: Arc<Trod>, patches: HashMap<String, HandlerRegistry>) -> Self {
        ServerState {
            trod,
            patches,
            forks: Mutex::new(HashMap::new()),
            next_fork: AtomicU64::new(1),
            draining: AtomicBool::new(false),
            inflight: AtomicU64::new(0),
            served: AtomicU64::new(0),
            rejected_draining: AtomicU64::new(0),
            sync_lock: Mutex::new(()),
        }
    }

    /// Drains the tracer into the provenance store, serialized against
    /// concurrent syncs. Returns the number of events ingested.
    pub fn sync_provenance(&self) -> usize {
        let _guard = self.sync_lock.lock();
        self.trod.sync()
    }

    pub fn fresh_fork_id(&self) -> String {
        format!("fork-{}", self.next_fork.fetch_add(1, Ordering::Relaxed))
    }

    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}
