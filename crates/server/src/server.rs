//! The network front-end: a thread-per-connection HTTP/1.1 JSON-RPC
//! server over `std::net`, with a bounded connection pool and graceful
//! shutdown that drains in-flight requests and WAL group-commit waiters.
//!
//! No async runtime: the paper's debugger workflow is interactive
//! (hundreds of connections, not hundreds of thousands), and blocking
//! threads keep the replay/retroactive call stacks trivially
//! inspectable. Keep-alive connections make the per-request cost one
//! `read`/`write` pair; `TCP_NODELAY` is set on every socket so small
//! RPC responses are not Nagle-delayed.

use std::collections::HashMap;
use std::io::{self, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use trod_core::json::Json;
use trod_core::Trod;
use trod_runtime::HandlerRegistry;

use crate::error::{RpcError, DRAINING, INVALID_REQUEST, PARSE_ERROR};
use crate::http::{self, HttpRequest, Limits};
use crate::rpc;
use crate::state::ServerState;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrently open connections; a connection over the
    /// limit receives a single retryable 503 and is closed.
    pub max_connections: usize,
    /// HTTP parser limits.
    pub limits: Limits,
    /// How often the background thread drains the tracer into the
    /// provenance store; `None` disables the thread (dispatch paths that
    /// need fresh provenance still sync on demand).
    pub sync_interval: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 1024,
            limits: Limits::default(),
            sync_interval: Some(Duration::from_millis(25)),
        }
    }
}

/// Configures and launches a server around a [`Trod`] instance.
pub struct ServerBuilder {
    trod: Arc<Trod>,
    patches: HashMap<String, HandlerRegistry>,
    config: ServerConfig,
}

impl ServerBuilder {
    pub fn new(trod: Trod) -> Self {
        ServerBuilder::from_arc(Arc::new(trod))
    }

    pub fn from_arc(trod: Arc<Trod>) -> Self {
        ServerBuilder {
            trod,
            patches: HashMap::new(),
            config: ServerConfig::default(),
        }
    }

    /// Installs a named patched handler registry for `trod_retroactive`.
    /// The wire protocol cannot ship Rust closures, so retroactive code
    /// changes are deployed server-side and selected by name.
    pub fn patch(mut self, name: impl Into<String>, registry: HandlerRegistry) -> Self {
        self.patches.insert(name.into(), registry);
        self
    }

    pub fn max_connections(mut self, n: usize) -> Self {
        self.config.max_connections = n.max(1);
        self
    }

    pub fn sync_interval(mut self, interval: Option<Duration>) -> Self {
        self.config.sync_interval = interval;
        self
    }

    pub fn config(mut self, config: ServerConfig) -> Self {
        self.config = config;
        self
    }

    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// acceptor. Returns once the socket is listening.
    pub fn serve(self, addr: &str) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let state = Arc::new(ServerState::new(self.trod, self.patches));
        let conns: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let config = Arc::new(self.config);

        let stop_sync = Arc::new(AtomicBool::new(false));
        let sync_thread = config.sync_interval.map(|interval| {
            let state = state.clone();
            let stop = stop_sync.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    state.sync_provenance();
                }
            })
        });

        let acceptor = {
            let state = state.clone();
            let conns = conns.clone();
            let workers = workers.clone();
            let config = config.clone();
            std::thread::spawn(move || {
                let next_conn = AtomicU64::new(1);
                for stream in listener.incoming() {
                    if state.is_draining() {
                        break;
                    }
                    let stream = match stream {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    let _ = stream.set_nodelay(true);
                    if conns.lock().len() >= config.max_connections {
                        reject_overloaded(stream, config.max_connections);
                        continue;
                    }
                    let id = next_conn.fetch_add(1, Ordering::Relaxed);
                    if let Ok(clone) = stream.try_clone() {
                        conns.lock().insert(id, clone);
                    }
                    let state = state.clone();
                    let conns_for_worker = conns.clone();
                    let limits = config.limits;
                    let handle = std::thread::spawn(move || {
                        serve_connection(&state, stream, &limits);
                        conns_for_worker.lock().remove(&id);
                    });
                    workers.lock().push(handle);
                }
            })
        };

        Ok(ServerHandle {
            addr: local_addr,
            state,
            acceptor: Some(acceptor),
            workers,
            conns,
            sync_thread,
            stop_sync,
        })
    }
}

/// What graceful shutdown observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Requests answered over the server's lifetime (including RPC
    /// errors, excluding drain rejections).
    pub requests_served: u64,
    /// Requests answered with the typed 503 during the drain window.
    pub draining_rejects: u64,
    /// WAL records appended / made durable by the time shutdown
    /// completed; equal iff every group-commit waiter was drained.
    pub wal_appended: u64,
    pub wal_durable: u64,
}

/// A running server. Dropping the handle leaves the server running
/// (threads are detached from the handle's point of view); call
/// [`ServerHandle::shutdown`] for an orderly stop.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    acceptor: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
    sync_thread: Option<JoinHandle<()>>,
    stop_sync: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The bound address, e.g. `127.0.0.1:41733`.
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// The shared state (for tests and embedding).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Flips the server into drain mode without stopping it: every
    /// request received from now on is answered with the typed,
    /// retryable 503. Used by tests and by operators who want a drain
    /// window before the final [`ServerHandle::shutdown`].
    pub fn begin_drain(&self) {
        self.state.begin_drain();
    }

    /// Graceful shutdown: stop accepting, answer new requests with the
    /// typed 503, wait for in-flight requests to finish, close idle
    /// connections, join every worker, then drain WAL group-commit
    /// waiters so everything appended is durable.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.state.begin_drain();

        // Wake the acceptor if it is blocked in accept(2).
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }

        // Drain in-flight requests: wait for the count to stay at zero
        // across two consecutive checks (a request parsed just before
        // the drain flag landed may still be between read and
        // increment).
        let mut quiet = 0;
        while quiet < 2 {
            if self.state.inflight.load(Ordering::SeqCst) == 0 {
                quiet += 1;
            } else {
                quiet = 0;
            }
            std::thread::sleep(Duration::from_millis(2));
        }

        // Idle keep-alive connections are blocked in read(2) with no
        // request in flight; unblock them so their workers exit.
        for (_, stream) in self.conns.lock().drain() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock());
        for handle in handles {
            let _ = handle.join();
        }

        self.stop_sync.store(true, Ordering::Relaxed);
        if let Some(sync) = self.sync_thread.take() {
            let _ = sync.join();
        }
        // Everything the drained requests appended must be durable
        // before we report the server down.
        let (wal_appended, wal_durable) = match self.state.trod.production_db().wal() {
            Some(wal) => {
                let appended = wal.appended();
                let _ = wal.sync_to(appended);
                (appended, wal.durable())
            }
            None => (0, 0),
        };
        self.state.sync_provenance();

        ShutdownReport {
            requests_served: self.state.served.load(Ordering::SeqCst),
            draining_rejects: self.state.rejected_draining.load(Ordering::SeqCst),
            wal_appended,
            wal_durable,
        }
    }
}

/// Answers a connection rejected by the pool bound with one retryable
/// 503, without admitting it to a worker thread.
fn reject_overloaded(mut stream: TcpStream, max_connections: usize) {
    let err = RpcError::new(
        DRAINING,
        "overloaded",
        format!("connection pool exhausted ({max_connections} connections); retry"),
    );
    let body = rpc_response(Json::Null, Err(err)).to_string();
    let _ = http::write_response(&mut stream, 503, body.as_bytes(), false);
}

/// Builds the JSON-RPC response envelope.
fn rpc_response(id: Json, result: Result<Json, RpcError>) -> Json {
    let mut fields = vec![
        ("jsonrpc".to_string(), Json::str("2.0")),
        ("id".to_string(), id),
    ];
    match result {
        Ok(value) => fields.push(("result".to_string(), value)),
        Err(e) => fields.push(("error".to_string(), e.to_json())),
    }
    Json::Object(fields)
}

/// Serves one connection until close, error, or drain.
fn serve_connection(state: &ServerState, stream: TcpStream, limits: &Limits) {
    let mut reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let request = match http::read_request(&mut reader, limits) {
            Ok(Some(req)) => req,
            // Clean close, peer reset, or force-shutdown during drain.
            Ok(None) => break,
            Err(http::HttpError::Io(_)) => break,
            Err(e) => {
                // The bytes were not HTTP; answer once and close.
                let err = RpcError::new(PARSE_ERROR, "bad_http", e.to_string());
                let body = rpc_response(Json::Null, Err(err)).to_string();
                let _ = http::write_response(&mut writer, 400, body.as_bytes(), false);
                break;
            }
        };

        state.inflight.fetch_add(1, Ordering::SeqCst);
        let draining = state.is_draining();
        let (status, body, served) = if draining {
            let body = rpc_response(Json::Null, Err(RpcError::draining())).to_string();
            (503, body, false)
        } else {
            handle_http(state, &request)
        };
        let keep_alive = !request.wants_close() && !draining;
        let write_ok =
            http::write_response(&mut writer, status, body.as_bytes(), keep_alive).is_ok();
        if served {
            state.served.fetch_add(1, Ordering::SeqCst);
        } else if draining {
            state.rejected_draining.fetch_add(1, Ordering::SeqCst);
        }
        state.inflight.fetch_sub(1, Ordering::SeqCst);
        if !keep_alive || !write_ok {
            break;
        }
    }
    let _ = writer.flush();
}

/// Routes one HTTP request; returns `(status, body, served)`.
fn handle_http(state: &ServerState, request: &HttpRequest) -> (u16, String, bool) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => {
            let body = Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("draining", Json::Bool(state.is_draining())),
            ]);
            (200, body.to_string(), true)
        }
        ("POST", "/rpc") => {
            let (id, result) = serve_rpc(state, &request.body);
            let status = match &result {
                Err(e) => e.http_status(),
                Ok(_) => 200,
            };
            (status, rpc_response(id, result).to_string(), true)
        }
        (_, "/rpc") | (_, "/health") => {
            let err = RpcError::new(
                INVALID_REQUEST,
                "method_not_allowed",
                format!("{} not allowed on {}", request.method, request.path),
            );
            (405, rpc_response(Json::Null, Err(err)).to_string(), true)
        }
        _ => {
            let err = RpcError::not_found("no_such_path", format!("no route {}", request.path));
            (404, rpc_response(Json::Null, Err(err)).to_string(), true)
        }
    }
}

/// Parses the JSON-RPC envelope and dispatches. Returns the request id
/// (echoed even on errors, when recoverable) and the outcome.
fn serve_rpc(state: &ServerState, body: &[u8]) -> (Json, Result<Json, RpcError>) {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => {
            return (
                Json::Null,
                Err(RpcError::new(PARSE_ERROR, "parse", "body is not UTF-8")),
            )
        }
    };
    let doc = match Json::parse(text) {
        Ok(doc) => doc,
        Err(e) => {
            return (
                Json::Null,
                Err(RpcError::new(PARSE_ERROR, "parse", e.to_string())),
            )
        }
    };
    let id = doc.get("id").cloned().unwrap_or(Json::Null);
    if let Json::Array(_) = doc {
        return (
            id,
            Err(RpcError::new(
                INVALID_REQUEST,
                "invalid_request",
                "batch requests are not supported",
            )),
        );
    }
    let method = match doc.get("method").and_then(Json::as_str) {
        Some(m) => m.to_string(),
        None => {
            return (
                id,
                Err(RpcError::new(
                    INVALID_REQUEST,
                    "invalid_request",
                    "missing `method`",
                )),
            )
        }
    };
    let params = doc.get("params").cloned().unwrap_or(Json::Null);
    (id, rpc::dispatch(state, &method, &params))
}
