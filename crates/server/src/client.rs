//! A minimal blocking JSON-RPC client over one keep-alive connection.
//!
//! This is the reference wire consumer: the load generators, the
//! `fork_from_instance` puller, the benchmarks and the integration tests
//! all speak to the server through it. Errors keep the server's
//! retryable-vs-fatal split: [`ClientError::Rpc`] carries the typed
//! failure, and [`ClientError::is_retryable`] implements the one retry
//! rule the protocol promises.

use std::io::{self, BufReader};
use std::net::TcpStream;

use trod_core::json::Json;

use crate::http::Limits;

/// A typed RPC failure, decoded from the server's `error` member.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcFailure {
    pub code: i64,
    pub message: String,
    pub kind: String,
    pub retryable: bool,
    /// The full `error.data` object, for details beyond kind/retryable.
    pub data: Json,
}

impl std::fmt::Display for RpcFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rpc error {} ({}): {}",
            self.code, self.kind, self.message
        )
    }
}

/// Why a call failed.
#[derive(Debug)]
pub enum ClientError {
    Io(io::Error),
    /// The response was not valid HTTP + JSON-RPC.
    Protocol(String),
    /// The server answered with a typed RPC error.
    Rpc(RpcFailure),
}

impl ClientError {
    /// True if retrying the same call may succeed: transport drops and
    /// RPC errors the server marked retryable (conflicts, drain).
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Io(_) => true,
            ClientError::Protocol(_) => false,
            ClientError::Rpc(f) => f.retryable,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(d) => write!(f, "protocol: {d}"),
            ClientError::Rpc(e) => write!(f, "{e}"),
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One keep-alive connection to a trod server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    limits: Limits,
    next_id: u64,
}

impl Client {
    /// Connects with `TCP_NODELAY` (small request/response pairs must
    /// not wait out Nagle + delayed-ACK).
    pub fn connect(addr: &str) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
            limits: Limits::default(),
            next_id: 1,
        })
    }

    /// Issues one call and decodes the response. `params` is typically a
    /// `Json::Object`.
    pub fn call(&mut self, method: &str, params: Json) -> Result<Json, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let envelope = Json::obj(vec![
            ("jsonrpc", Json::str("2.0")),
            ("id", Json::from(id)),
            ("method", Json::str(method)),
            ("params", params),
        ]);
        self.post("/rpc", envelope.to_string().as_bytes(), id)
    }

    /// Like [`Client::call`], retrying retryable failures up to
    /// `retries` extra attempts. Transport errors reconnect first.
    pub fn call_retrying(
        &mut self,
        addr: &str,
        method: &str,
        params: Json,
        retries: usize,
    ) -> Result<Json, ClientError> {
        let mut attempt = 0;
        loop {
            match self.call(method, params.clone()) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() && attempt < retries => {
                    if matches!(e, ClientError::Io(_)) {
                        *self = Client::connect(addr)?;
                    }
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// `GET /health`.
    pub fn health(&mut self) -> Result<Json, ClientError> {
        let request = b"GET /health HTTP/1.1\r\nhost: trod\r\n\r\n";
        io::Write::write_all(&mut self.writer, request)?;
        io::Write::flush(&mut self.writer)?;
        let (status, body) = self.read_response()?;
        if status != 200 {
            return Err(ClientError::Protocol(format!("health returned {status}")));
        }
        Json::parse(&body).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    fn post(&mut self, path: &str, body: &[u8], id: u64) -> Result<Json, ClientError> {
        let head = format!(
            "POST {path} HTTP/1.1\r\nhost: trod\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        let mut buf = Vec::with_capacity(head.len() + body.len());
        buf.extend_from_slice(head.as_bytes());
        buf.extend_from_slice(body);
        io::Write::write_all(&mut self.writer, &buf)?;
        io::Write::flush(&mut self.writer)?;
        let (_status, text) = self.read_response()?;
        // The JSON-RPC envelope, not the HTTP status, is authoritative:
        // typed errors ride 200 (and the drain error rides 503).
        let doc = Json::parse(&text).map_err(|e| ClientError::Protocol(e.to_string()))?;
        if let Some(err) = doc.get("error") {
            let data = err.get("data").cloned().unwrap_or(Json::Null);
            return Err(ClientError::Rpc(RpcFailure {
                code: err.get("code").and_then(Json::as_i64).unwrap_or(0),
                message: err
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
                kind: data
                    .get("kind")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
                retryable: data
                    .get("retryable")
                    .and_then(Json::as_bool)
                    .unwrap_or(false),
                data,
            }));
        }
        match doc.get("id").and_then(Json::as_u64) {
            Some(got) if got == id => {}
            // `/health` and error paths use id null; for calls the echo
            // must match.
            _ => {
                return Err(ClientError::Protocol(format!(
                    "response id does not match request id {id}"
                )))
            }
        }
        doc.get("result")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("response has neither result nor error".into()))
    }

    /// Reads one HTTP response; returns `(status, body)`.
    fn read_response(&mut self) -> Result<(u16, String), ClientError> {
        use std::io::BufRead;
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad status line {status_line:?}")))?;
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(ClientError::Protocol("eof in response headers".into()));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| ClientError::Protocol("bad content-length".into()))?;
                }
            }
        }
        if content_length > self.limits.max_body {
            return Err(ClientError::Protocol(format!(
                "response body of {content_length} bytes exceeds limit"
            )));
        }
        let mut body = vec![0u8; content_length];
        io::Read::read_exact(&mut self.reader, &mut body)?;
        String::from_utf8(body)
            .map(|text| (status, text))
            .map_err(|_| ClientError::Protocol("response body is not UTF-8".into()))
    }
}
