//! # trod-server
//!
//! The network front-end for TROD: a thread-per-connection HTTP/1.1 +
//! JSON-RPC server (hand-rolled over `std::net` — no async runtime, no
//! HTTP dependency) that wraps a shared [`trod_core::Trod`] instance and
//! exposes the *full* debugger surface over the wire:
//!
//! * **Execution** — `trod_invoke` runs application handlers (with
//!   optional server-side conflict retries) through the traced runtime.
//! * **Queries & time travel** — `trod_sql` against the application or
//!   provenance database, `trod_get`/`kv_get`/`kv_scan`, all with
//!   optional `as_of` timestamps.
//! * **The debugger** — fork the whole environment at a timestamp
//!   (`trod_fork` + `fork_*` inspection calls), replay a traced request
//!   (`trod_replay`), reenact reads (`trod_reenact`), audit anomalies
//!   (`trod_anomalies`), and retroactively re-execute requests under a
//!   named server-side patch (`trod_retroactive`).
//! * **Devnet dump/load** — `sys_dump` serializes the whole environment
//!   (schema, namespaces, aligned history) to one document;
//!   [`Dump::boot`] brings up a new instance from it; and
//!   [`fork_from_instance`] pulls a fork at any timestamp from a
//!   *running* server over the network.
//!
//! Every error is typed: a numeric code plus `data.kind` and
//! `data.retryable`, so clients implement exactly one retry rule. See
//! `PROTOCOL.md` in this crate for the wire reference.
//!
//! Graceful shutdown ([`ServerHandle::shutdown`]) drains in-flight
//! requests, answers the drain window with a retryable 503, closes idle
//! connections, and syncs WAL group-commit waiters before reporting the
//! server down.

pub mod client;
pub mod dump;
pub mod error;
pub mod http;
pub mod load;
pub mod rpc;
pub mod server;
pub mod state;

pub use client::{Client, ClientError, RpcFailure};
pub use dump::{fork_from_instance, Dump, DumpError};
pub use error::RpcError;
pub use http::{HttpRequest, Limits};
pub use load::{drive_workload, LoadReport, RequestGen, WirePool};
pub use server::{ServerBuilder, ServerConfig, ServerHandle, ShutdownReport};
pub use state::ServerState;
