//! Dump/load round-trips and network fork-from-instance.
//!
//! The contract under test: a loaded instance is not merely
//! state-equivalent — its aligned history is *byte-identical* (same
//! entries, same wire serialization) and its commit clock resumes where
//! the source's left off, so debugging a loaded instance sees the same
//! past as debugging the source.

use proptest::prelude::*;

use trod_apps::{shop, workload};
use trod_core::json::Json;
use trod_core::wire;
use trod_core::Trod;
use trod_db::{Database, Predicate};
use trod_kv::{KvStore, Session};
use trod_runtime::Runtime;
use trod_server::{fork_from_instance, Client, Dump, ServerBuilder};

fn shop_trod() -> Trod {
    let db = shop::shop_db();
    shop::seed_inventory(&db, 8, 1_000);
    let runtime = Runtime::builder(db, shop::registry())
        .kv(shop::shop_kv())
        .build();
    Trod::attach(runtime).expect("attach")
}

/// Runs a deterministic serial shop workload against an instance.
fn run_workload(trod: &Trod, cfg: &workload::WorkloadConfig) {
    for (handler, args) in workload::shop_workload(cfg) {
        // Serial execution: failures can only be application errors
        // (e.g. getOrder of a not-yet-created order), never conflicts.
        let _ = trod.runtime().handle_request(&handler, args);
    }
    trod.sync();
}

/// Full relational + kv state of a session, in a comparable form.
fn state_of(db: &Database, kv: Option<&KvStore>) -> Vec<String> {
    let mut out = Vec::new();
    let mut tables = db.table_names();
    tables.sort();
    for table in tables {
        let mut rows: Vec<String> = db
            .scan_latest(&table, &Predicate::True)
            .expect("scan")
            .into_iter()
            .map(|(key, row)| format!("{table} {key:?} {row:?}"))
            .collect();
        rows.sort();
        out.extend(rows);
    }
    if let Some(kv) = kv {
        let mut namespaces = kv.namespaces();
        namespaces.sort();
        for ns in namespaces {
            let mut entries: Vec<String> = kv
                .scan_prefix(&ns, "")
                .expect("kv scan")
                .into_iter()
                .map(|(k, v)| format!("kv:{ns} {k}={v}"))
                .collect();
            entries.sort();
            out.extend(entries);
        }
    }
    out
}

fn wire_bytes(entries: &[trod_db::CommittedTxn]) -> String {
    Json::Array(entries.iter().map(wire::txn_to_json).collect()).to_string()
}

fn assert_round_trip(source: &Trod, loaded: &Session) {
    let src_db = source.production_db();
    let loaded_db = loaded.database();

    // Byte-identical aligned history.
    let src_entries = src_db.log_entries();
    let loaded_entries = loaded_db.log_entries();
    assert_eq!(
        src_entries, loaded_entries,
        "aligned history must match exactly"
    );
    assert_eq!(
        wire_bytes(&src_entries),
        wire_bytes(&loaded_entries),
        "wire serialization must be byte-identical"
    );

    // Resumed clocks.
    assert_eq!(src_db.current_ts(), loaded_db.current_ts());

    // Same state, both stores.
    assert_eq!(
        state_of(src_db, source.session().kv_store()),
        state_of(loaded_db, loaded.kv_store())
    );
}

#[test]
fn dump_load_round_trip_preserves_history_and_clocks() {
    let source = shop_trod();
    run_workload(&source, &workload::WorkloadConfig::small());

    let dump = Dump::capture(&source);
    assert!(!dump.entries.is_empty());

    // Through the in-memory document.
    let loaded = dump.boot().expect("boot");
    assert_round_trip(&source, &loaded);

    // Through a file, via the parser.
    let dir = std::env::temp_dir().join(format!("trod-dump-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("round_trip.json");
    dump.write_to(&path).expect("write");
    let reread = Dump::read_from(&path).expect("read");
    assert_eq!(reread, dump);
    let loaded = reread.boot().expect("boot from file");
    assert_round_trip(&source, &loaded);
    std::fs::remove_dir_all(&dir).ok();

    // The loaded instance continues the history: a new commit lands
    // strictly after the resumed watermark, with the next txn id free.
    let resumed_ts = loaded.database().current_ts();
    let runtime = Runtime::builder(loaded.database().clone(), shop::registry())
        .kv(loaded.kv().clone())
        .build();
    let result = runtime.handle_request(
        "checkout",
        shop::checkout_args("order-after-load", "eve", "item-0", 1),
    );
    assert!(
        result.is_ok(),
        "post-load checkout failed: {:?}",
        result.output
    );
    assert!(loaded.database().current_ts() > resumed_ts);
}

#[test]
fn sys_dump_over_the_wire_boots_an_identical_instance() {
    let source = shop_trod();
    let server = ServerBuilder::new(source)
        .serve("127.0.0.1:0")
        .expect("bind");
    let mut client = Client::connect(&server.addr()).expect("connect");

    for i in 0..5 {
        client
            .call(
                "trod_invoke",
                Json::obj(vec![
                    ("handler", Json::str("checkout")),
                    (
                        "args",
                        Json::obj(vec![
                            ("order_id", Json::str(format!("order-{i}"))),
                            ("customer", Json::str("w")),
                            ("item", Json::str(format!("item-{}", i % 3))),
                            ("quantity", Json::Int(1)),
                        ]),
                    ),
                ]),
            )
            .expect("invoke");
    }

    let reply = client
        .call("sys_dump", Json::obj(Vec::<(&str, Json)>::new()))
        .expect("sys_dump");
    let dump = Dump::from_json(reply.get("dump").unwrap()).expect("parse dump");
    let loaded = dump.boot().expect("boot");

    let state = state_of(loaded.database(), loaded.kv_store());
    assert!(state.iter().any(|s| s.contains("order-4")));

    // Compare against the live server state through its own state.
    let trod = &server.state().trod;
    assert_round_trip(trod, &loaded);
    server.shutdown();
}

#[test]
fn fork_from_instance_equals_local_fork() {
    let source = shop_trod();
    let server = ServerBuilder::new(source)
        .serve("127.0.0.1:0")
        .expect("bind");
    let mut client = Client::connect(&server.addr()).expect("connect");

    let mut commit_ts = Vec::new();
    for i in 0..4 {
        let reply = client
            .call(
                "trod_invoke",
                Json::obj(vec![
                    ("handler", Json::str("checkout")),
                    (
                        "args",
                        Json::obj(vec![
                            ("order_id", Json::str(format!("order-{i}"))),
                            ("customer", Json::str("f")),
                            ("item", Json::str("item-1")),
                            ("quantity", Json::Int(1)),
                        ]),
                    ),
                    ("sync", Json::Bool(true)),
                ]),
            )
            .expect("invoke");
        commit_ts.push(reply.get("commit_ts").and_then(Json::as_u64).unwrap());
    }

    // Fork mid-history over the network.
    let ts = commit_ts[1];
    let remote = fork_from_instance(&server.addr(), ts).expect("network fork");

    // The same fork taken in-process on the serving instance.
    let local = server.state().trod.fork_at(ts).expect("local fork");

    assert_eq!(
        state_of(remote.database(), remote.kv_store()),
        state_of(local.database(), local.kv_store()),
        "network fork must equal the in-process fork at ts {ts}"
    );

    // The remote fork is a real environment: it accepts new commits.
    let runtime = Runtime::builder(remote.database().clone(), shop::registry())
        .kv(remote.kv().clone())
        .build();
    let result = runtime.handle_request(
        "checkout",
        shop::checkout_args("order-fork", "g", "item-2", 1),
    );
    assert!(result.is_ok(), "fork checkout failed: {:?}", result.output);

    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Dump → boot round-trips byte-identically for arbitrary small
    /// workloads: any request mix, any skew, any seed.
    #[test]
    fn dump_load_round_trips_for_arbitrary_workloads(
        requests in 1usize..24,
        users in 1usize..6,
        items in 1usize..6,
        seed in 0u64..1_000,
        hot in 0u32..100,
    ) {
        let cfg = workload::WorkloadConfig {
            requests,
            users,
            items,
            conflict_rate: f64::from(hot) / 100.0,
            seed,
        };
        let source = shop_trod();
        run_workload(&source, &cfg);

        let dump = Dump::capture(&source);
        let text = dump.to_json().to_string();
        let reparsed = Dump::from_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(&reparsed, &dump);

        let loaded = reparsed.boot().unwrap();
        prop_assert_eq!(
            source.production_db().log_entries(),
            loaded.database().log_entries()
        );
        prop_assert_eq!(source.production_db().current_ts(), loaded.database().current_ts());
        prop_assert_eq!(
            state_of(source.production_db(), source.session().kv_store()),
            state_of(loaded.database(), loaded.kv_store())
        );
    }
}
