//! Segmented-WAL servers over the wire: `sys_health` reports the
//! segment/compaction state of the durable log, and `sys_dump` stitches
//! one identical history out of many segment files — before and after a
//! restart that recovers from cold + sealed + active segments.
//!
//! PR 10: `sys_checkpoint` forces an environment checkpoint over the
//! wire, `sys_health` reports checkpoint stats, and a restart boots
//! from the checkpoint (recovery report carries its ts) while serving
//! the same stitched dump.

use trod_core::json::Json;
use trod_core::wire;
use trod_core::Trod;
use trod_db::{row, DataType, Schema, SyncMode, Ts, WalOptions};
use trod_kv::Session;
use trod_runtime::{HandlerRegistry, Runtime};
use trod_server::{Client, Dump, ServerBuilder};

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("trod_seg_health_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    path
}

fn events_schema() -> Schema {
    Schema::builder()
        .column("k", DataType::Int)
        .column("v", DataType::Int)
        .primary_key(&["k"])
        .build()
        .unwrap()
}

/// Tiny rotation bound: every synced commit rolls the active segment.
fn tiny_opts() -> WalOptions {
    WalOptions {
        sync_mode: SyncMode::Sync,
        segment_bytes: 1,
        ..WalOptions::default()
    }
}

fn attach(session: Session) -> Trod {
    let runtime = Runtime::builder(session.database().clone(), HandlerRegistry::new())
        .kv(session.kv().clone())
        .build();
    Trod::attach(runtime).expect("attach")
}

fn commit_step(session: &Session, i: i64) -> Ts {
    let mut txn = session.begin();
    txn.insert("events", row![i, i * 10]).unwrap();
    txn.kv_put("cache", &format!("key-{i}"), &i.to_string())
        .unwrap();
    txn.commit().unwrap().commit_ts
}

fn call_sys(client: &mut Client, method: &str) -> Json {
    client
        .call(method, Json::obj(Vec::<(&str, Json)>::new()))
        .unwrap_or_else(|e| panic!("{method}: {e}"))
}

fn wire_entries(dump: &Dump) -> String {
    Json::Array(dump.entries.iter().map(wire::txn_to_json).collect()).to_string()
}

#[test]
fn sys_health_reports_segments_and_sys_dump_stitches_across_restart() {
    let path = scratch_dir("restart");
    let mut floor = 0;
    let (before_dump, before_ts) = {
        let session = Session::create_durable(&path, tiny_opts()).expect("create");
        session
            .database()
            .create_table("events", events_schema())
            .unwrap();
        session.create_namespace("cache").unwrap();
        for i in 0..12 {
            let ts = commit_step(&session, i);
            if i == 5 {
                floor = ts;
            }
        }
        let trod = attach(session);
        // Retention keeps the GC'd prefix reachable in memory; on disk it
        // lives on as compacted cold files.
        trod.enable_retention();
        trod.gc_before(floor);

        let server = ServerBuilder::new(trod).serve("127.0.0.1:0").expect("bind");
        let mut client = Client::connect(&server.addr()).expect("connect");

        let health = call_sys(&mut client, "sys_health");
        let wal = health.get("wal").expect("wal section");
        assert_eq!(wal.get("segmented"), Some(&Json::Bool(true)));
        let get = |k: &str| wal.get(k).and_then(Json::as_u64).unwrap();
        assert!(get("segments") >= 2, "tiny bound must have rotated");
        assert!(get("rotations") >= 2);
        assert!(get("cold_files") >= 1, "GC must have compacted");
        assert!(get("compactions") >= 1);
        assert!(get("last_compaction_unix_ms") > 0);
        assert_eq!(get("durable"), get("appended"), "Sync mode: all durable");
        assert_eq!(get("rotation_errors"), 0);
        assert_eq!(get("compaction_errors"), 0);
        assert_eq!(
            health.get("gc_floor").and_then(Json::as_u64).unwrap(),
            floor
        );

        let reply = call_sys(&mut client, "sys_dump");
        let dump = Dump::from_json(reply.get("dump").unwrap()).expect("parse dump");
        assert_eq!(dump.entries.len(), 12, "stitched history is gap-free");
        server.shutdown();
        (dump, floor)
    };
    assert!(before_ts > 0);

    // Restart: recovery walks the manifest across cold + sealed + active
    // files, so the full history is live again without any spill file.
    let (session, report) = Session::open_durable(&path, tiny_opts()).expect("reopen");
    assert!(report.segments >= 1);
    assert!(report.cold_files >= 1, "cold files survive and replay");
    let trod = attach(session);
    let server = ServerBuilder::new(trod).serve("127.0.0.1:0").expect("bind");
    let mut client = Client::connect(&server.addr()).expect("connect");

    let reply = call_sys(&mut client, "sys_dump");
    let after_dump = Dump::from_json(reply.get("dump").unwrap()).expect("parse dump");
    assert_eq!(
        wire_entries(&before_dump),
        wire_entries(&after_dump),
        "dump must be byte-identical across the restart"
    );
    assert_eq!(before_dump.current_ts, after_dump.current_ts);

    // The recovered server keeps rotating: new commits land and health
    // stays coherent.
    {
        let state = server.state();
        let db = state.trod.production_db();
        assert_eq!(db.current_ts(), before_dump.current_ts);
    }
    let health = call_sys(&mut client, "sys_health");
    let wal = health.get("wal").expect("wal section");
    assert_eq!(wal.get("segmented"), Some(&Json::Bool(true)));
    assert_eq!(
        wal.get("durable").and_then(Json::as_u64),
        wal.get("appended").and_then(Json::as_u64)
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&path);
}

#[test]
fn sys_checkpoint_forces_one_and_recovery_boots_from_it() {
    let path = scratch_dir("checkpoint");
    let before_dump = {
        let session = Session::create_durable(&path, tiny_opts()).expect("create");
        session
            .database()
            .create_table("events", events_schema())
            .unwrap();
        session.create_namespace("cache").unwrap();
        for i in 0..8 {
            commit_step(&session, i);
        }
        let server = ServerBuilder::new(attach(session))
            .serve("127.0.0.1:0")
            .expect("bind");
        let mut client = Client::connect(&server.addr()).expect("connect");

        // No cadence configured: nothing checkpointed yet.
        let health = call_sys(&mut client, "sys_health");
        let ckpt = health
            .get("wal")
            .and_then(|w| w.get("checkpoints"))
            .expect("checkpoint section")
            .clone();
        assert_eq!(ckpt.get("count").and_then(Json::as_u64), Some(0));

        // Force one over the wire; a second call with no new commits is
        // an acknowledged no-op (`written: false`).
        let reply = call_sys(&mut client, "sys_checkpoint");
        assert_eq!(reply.get("written"), Some(&Json::Bool(true)));
        let ckpt_ts = reply.get("checkpoint_ts").and_then(Json::as_u64).unwrap();
        assert!(ckpt_ts > 0);
        assert!(reply.get("bytes").and_then(Json::as_u64).unwrap() > 0);
        let reply = call_sys(&mut client, "sys_checkpoint");
        assert_eq!(reply.get("written"), Some(&Json::Bool(false)));

        let health = call_sys(&mut client, "sys_health");
        let ckpt = health
            .get("wal")
            .and_then(|w| w.get("checkpoints"))
            .expect("checkpoint section")
            .clone();
        let get = |k: &str| ckpt.get(k).and_then(Json::as_u64).unwrap();
        assert_eq!(get("count"), 1);
        assert_eq!(get("newest_ts"), ckpt_ts);
        assert!(get("checkpoint_bytes") > 0);
        assert!(get("writes") >= 1);
        assert_eq!(get("errors"), 0);
        assert_eq!(get("fallbacks"), 0);

        let reply = call_sys(&mut client, "sys_dump");
        let dump = Dump::from_json(reply.get("dump").unwrap()).expect("parse dump");
        server.shutdown();
        dump
    };

    // Restart: recovery restores the forced checkpoint and replays only
    // the (empty) tail, yet serves the identical stitched dump.
    let (session, report) = Session::open_durable(&path, tiny_opts()).expect("reopen");
    assert!(report.checkpoint_ts.is_some(), "boot used the checkpoint");
    assert_eq!(report.checkpoint_fallbacks, 0);
    let server = ServerBuilder::new(attach(session))
        .serve("127.0.0.1:0")
        .expect("bind");
    let mut client = Client::connect(&server.addr()).expect("connect");
    let reply = call_sys(&mut client, "sys_dump");
    let after_dump = Dump::from_json(reply.get("dump").unwrap()).expect("parse dump");
    assert_eq!(before_dump.current_ts, after_dump.current_ts);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&path);
}
