//! End-to-end smoke tests for the HTTP/JSON-RPC front-end: mixed
//! traffic (invoke + SQL + time travel + kv), protocol rejections, the
//! connection-pool bound, and graceful shutdown with a typed 503 drain
//! window.

use std::io::{Read, Write};
use std::net::TcpStream;

use trod_apps::shop;
use trod_core::json::Json;
use trod_core::Trod;
use trod_runtime::Runtime;
use trod_server::{Client, ClientError, ServerBuilder, ServerHandle};

fn shop_server() -> ServerHandle {
    let db = shop::shop_db();
    shop::seed_inventory(&db, 10, 1_000);
    let runtime = Runtime::builder(db, shop::registry())
        .kv(shop::shop_kv())
        .build();
    let trod = Trod::attach(runtime).expect("attach");
    ServerBuilder::new(trod)
        .serve("127.0.0.1:0")
        .expect("bind ephemeral port")
}

fn invoke(client: &mut Client, handler: &str, args: Vec<(&str, Json)>, sync: bool) -> Json {
    client
        .call(
            "trod_invoke",
            Json::obj(vec![
                ("handler", Json::str(handler)),
                ("args", Json::obj(args)),
                ("sync", Json::Bool(sync)),
            ]),
        )
        .expect("invoke")
}

fn checkout_params(order: &str, customer: &str, item: &str) -> Vec<(&'static str, Json)> {
    vec![
        ("order_id", Json::str(order.to_string())),
        ("customer", Json::str(customer.to_string())),
        ("item", Json::str(item.to_string())),
        ("quantity", Json::Int(1)),
    ]
}

#[test]
fn mixed_workload_over_the_wire() {
    let server = shop_server();
    let mut client = Client::connect(&server.addr()).expect("connect");

    // Health first.
    let health = client.health().expect("health");
    assert_eq!(health.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(health.get("draining").and_then(Json::as_bool), Some(false));

    // Invoke a handler; `sync` returns the commit timestamp.
    let result = invoke(
        &mut client,
        "checkout",
        checkout_params("order-1", "ada", "item-1"),
        true,
    );
    let commit_ts = result
        .get("commit_ts")
        .and_then(Json::as_u64)
        .expect("commit_ts present when sync=true");
    assert!(commit_ts > 0);
    let req_id = result
        .get("req_id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    assert!(!req_id.is_empty());

    // A second checkout moves state past the first commit.
    invoke(
        &mut client,
        "checkout",
        checkout_params("order-2", "bob", "item-1"),
        true,
    );

    // SQL over the application database.
    let rs = client
        .call(
            "trod_sql",
            Json::obj(vec![(
                "sql",
                Json::str("SELECT order_id FROM orders ORDER BY order_id ASC"),
            )]),
        )
        .expect("sql");
    let rows = rs.get("rows").and_then(Json::as_array).unwrap();
    assert_eq!(rows.len(), 2);

    // Time travel: as of the first commit, only order-1 exists.
    let rs = client
        .call(
            "trod_sql",
            Json::obj(vec![
                ("sql", Json::str("SELECT order_id FROM orders")),
                ("as_of", Json::from(commit_ts)),
            ]),
        )
        .expect("as_of sql");
    assert_eq!(rs.get("rows").and_then(Json::as_array).unwrap().len(), 1);

    // Point read with a typed key.
    let row = client
        .call(
            "trod_get",
            Json::obj(vec![
                ("table", Json::str("orders")),
                ("key", Json::Array(vec![Json::str("order-1")])),
            ]),
        )
        .expect("get");
    assert!(row.get("row").and_then(Json::as_array).is_some());

    // The polyglot half: checkout cleared the cart namespace entry in
    // the same commit; the kv surface sees the aligned history.
    let kv = client
        .call(
            "kv_scan",
            Json::obj(vec![("namespace", Json::str(shop::CARTS_NAMESPACE))]),
        )
        .expect("kv_scan");
    assert!(kv.get("entries").and_then(Json::as_array).is_some());

    // Provenance SQL sees the traced executions.
    let rs = client
        .call(
            "trod_sql",
            Json::obj(vec![
                ("sql", Json::str("SELECT ReqId FROM Executions")),
                ("target", Json::str("provenance")),
            ]),
        )
        .expect("provenance sql");
    assert!(!rs.get("rows").and_then(Json::as_array).unwrap().is_empty());

    // Status reflects the traffic.
    let status = client
        .call("sys_status", Json::obj(Vec::<(&str, Json)>::new()))
        .expect("status");
    assert!(status.get("served").and_then(Json::as_u64).unwrap() >= 6);
    assert!(status
        .get("handlers")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .any(|h| h.as_str() == Some("checkout")));

    let report = server.shutdown();
    assert!(report.requests_served >= 7);
    assert_eq!(report.wal_appended, report.wal_durable);
}

#[test]
fn typed_errors_over_the_wire() {
    let server = shop_server();
    let mut client = Client::connect(&server.addr()).expect("connect");

    // Unknown method.
    let err = client
        .call("no_such_method", Json::obj(Vec::<(&str, Json)>::new()))
        .expect_err("unknown method must fail");
    match &err {
        ClientError::Rpc(f) => {
            assert_eq!(f.code, -32601);
            assert!(!f.retryable);
        }
        other => panic!("expected rpc error, got {other:?}"),
    }

    // Unknown handler: typed NOT_FOUND with kind.
    let err = client
        .call(
            "trod_invoke",
            Json::obj(vec![("handler", Json::str("nope"))]),
        )
        .expect_err("unknown handler must fail");
    match &err {
        ClientError::Rpc(f) => {
            assert_eq!(f.code, 1004);
            assert_eq!(f.kind, "no_such_handler");
            assert!(!f.retryable);
        }
        other => panic!("expected rpc error, got {other:?}"),
    }

    // Application failure: checkout of a nonexistent item.
    let err = client
        .call(
            "trod_invoke",
            Json::obj(vec![
                ("handler", Json::str("checkout")),
                ("args", Json::obj(checkout_params("o", "x", "item-999"))),
            ]),
        )
        .expect_err("bad item must fail");
    match &err {
        ClientError::Rpc(f) => {
            assert_eq!(f.code, 1050);
            assert!(!f.retryable);
        }
        other => panic!("expected rpc error, got {other:?}"),
    }

    // Malformed JSON body → -32700 on a 400.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.write_all(b"POST /rpc HTTP/1.1\r\nconnection: close\r\ncontent-length: 9\r\n\r\nnot json!")
        .unwrap();
    let mut response = String::new();
    raw.read_to_string(&mut response).unwrap();
    assert!(response.contains("-32700"), "got: {response}");

    // Unknown path → 404; bad method on /rpc → 405.
    let mut client2 = Client::connect(&server.addr()).expect("connect");
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.write_all(b"GET /nope HTTP/1.1\r\n\r\n").unwrap();
    let mut response = [0u8; 64];
    let n = raw.read(&mut response).unwrap();
    assert!(std::str::from_utf8(&response[..n])
        .unwrap()
        .starts_with("HTTP/1.1 404"));
    // The keep-alive client still works after other connections misbehaved.
    client2.health().expect("health after noise");

    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_and_rejects_with_typed_503() {
    let server = shop_server();
    let addr = server.addr();
    let mut client = Client::connect(&addr).expect("connect");
    invoke(
        &mut client,
        "checkout",
        checkout_params("o1", "u", "item-0"),
        false,
    );

    // Flip into drain mode while the connection stays open: the next
    // request gets the typed, retryable 1503 on an HTTP 503.
    server.begin_drain();
    let err = client
        .call("sys_status", Json::obj(Vec::<(&str, Json)>::new()))
        .expect_err("draining server must reject");
    match &err {
        ClientError::Rpc(f) => {
            assert_eq!(f.code, 1503);
            assert_eq!(f.kind, "draining");
            assert!(f.retryable, "drain rejection must be retryable");
        }
        other => panic!("expected rpc error, got {other:?}"),
    }

    // Health reflects the drain for plain HTTP probes on new conns
    // until shutdown finishes. (New connections may also be refused
    // outright once the acceptor exits; both are acceptable during the
    // window, so don't assert here.)

    // An idle keep-alive connection (no request in flight) must not
    // block shutdown.
    let _idle = TcpStream::connect(&addr).unwrap();

    let report = server.shutdown();
    assert_eq!(report.requests_served, 1);
    assert!(report.draining_rejects >= 1);
    assert_eq!(report.wal_appended, report.wal_durable);
}

#[test]
fn connection_pool_bound_rejects_with_retryable_503() {
    let db = shop::shop_db();
    shop::seed_inventory(&db, 5, 100);
    let runtime = Runtime::builder(db, shop::registry())
        .kv(shop::shop_kv())
        .build();
    let trod = Trod::attach(runtime).expect("attach");
    let server = ServerBuilder::new(trod)
        .max_connections(2)
        .serve("127.0.0.1:0")
        .expect("bind");
    let addr = server.addr();

    let mut a = Client::connect(&addr).expect("conn 1");
    let mut b = Client::connect(&addr).expect("conn 2");
    a.health().expect("conn 1 alive");
    b.health().expect("conn 2 alive");

    // The third connection is over the bound: it gets exactly one
    // retryable 503 and is closed.
    let mut c = Client::connect(&addr).expect("tcp connect still succeeds");
    let err = c.health().expect_err("over-bound connection is rejected");
    match err {
        ClientError::Protocol(d) => assert!(d.contains("503"), "got: {d}"),
        other => panic!("expected protocol error with 503, got {other:?}"),
    }

    server.shutdown();
}
