//! The acceptance test for the remote debugger: the full debug loop —
//! invoke over HTTP → fork at the request's commit timestamp over the
//! wire → replay the traced request against a development fork with zero
//! skipped writes → retroactively re-execute under a server-side patch —
//! and every step produces results identical to running the same loop
//! in-process against an identical instance.

use trod_apps::moodle;
use trod_core::json::Json;
use trod_core::Trod;
use trod_db::Ts;
use trod_query::QueryEngine;
use trod_runtime::Runtime;
use trod_server::{Client, ServerBuilder};

const PATCH: &str = "atomic-subscribe";
const SUBS_SQL: &str = "SELECT sub_id, user_id, forum FROM forum_sub ORDER BY sub_id ASC";

fn fresh_trod() -> Trod {
    let db = moodle::moodle_db();
    let provenance = moodle::provenance_for(&db);
    let runtime = Runtime::builder(db, moodle::registry()).build();
    Trod::attach_with(runtime, provenance)
}

/// Renders a local result set in the wire's `{columns, rows}` shape so
/// wire and in-process answers are comparable as JSON text.
fn local_rows(db: &trod_db::Database, sql: &str) -> String {
    let rs = QueryEngine::new(db.clone())
        .execute(sql)
        .expect("local sql");
    let rows: Vec<Json> = rs
        .rows()
        .iter()
        .map(|r| Json::Array(r.iter().map(trod_core::wire::value_to_json).collect()))
        .collect();
    Json::Array(rows).to_string()
}

#[test]
fn remote_debug_loop_matches_in_process() {
    // --- the remote instance, driven entirely over the wire ----------
    let server = ServerBuilder::new(fresh_trod())
        .patch(PATCH, moodle::patched_registry())
        .serve("127.0.0.1:0")
        .expect("bind");
    let mut client = Client::connect(&server.addr()).expect("connect");

    // --- the in-process twin: same app, same request sequence --------
    let local = fresh_trod();

    let mut wire_commits: Vec<(String, Ts)> = Vec::new();
    let mut local_commits: Vec<(String, Ts)> = Vec::new();
    for (sub, user) in [("sub-1", "U1"), ("sub-2", "U2")] {
        let result = client
            .call(
                "trod_invoke",
                Json::obj(vec![
                    ("handler", Json::str("subscribeUser")),
                    (
                        "args",
                        Json::obj(vec![
                            ("sub_id", Json::str(sub)),
                            ("user_id", Json::str(user)),
                            ("forum", Json::str("F1")),
                        ]),
                    ),
                    ("sync", Json::Bool(true)),
                ]),
            )
            .expect("wire invoke");
        wire_commits.push((
            result
                .get("req_id")
                .and_then(Json::as_str)
                .unwrap()
                .to_string(),
            result.get("commit_ts").and_then(Json::as_u64).unwrap(),
        ));

        let local_result = local
            .runtime()
            .handle_request("subscribeUser", moodle::subscribe_args(sub, user, "F1"));
        assert!(local_result.is_ok());
        local.sync();
        let commit_ts = local
            .provenance()
            .txns_for_request(&local_result.req_id)
            .iter()
            .map(|t| t.commit_ts)
            .max()
            .unwrap();
        local_commits.push((local_result.req_id, commit_ts));
    }

    // Identical instances assign identical request ids and commit
    // timestamps — the precondition for everything below.
    assert_eq!(wire_commits, local_commits);
    let (req_1, ts_1) = wire_commits[0].clone();

    // --- fork at the first request's commit ts, over the wire --------
    let fork = client
        .call("trod_fork", Json::obj(vec![("ts", Json::from(ts_1))]))
        .expect("wire fork");
    let fork_id = fork
        .get("fork_id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let wire_fork_rows = client
        .call(
            "fork_sql",
            Json::obj(vec![
                ("fork", Json::str(fork_id.clone())),
                ("sql", Json::str(SUBS_SQL)),
            ]),
        )
        .expect("fork sql");

    let local_fork = local.fork_at(ts_1).expect("local fork");
    assert_eq!(
        wire_fork_rows.get("rows").unwrap().to_string(),
        local_rows(local_fork.database(), SUBS_SQL),
        "wire fork at ts {ts_1} must equal the in-process Session::fork_at"
    );
    // Only the first subscription exists at ts_1.
    assert_eq!(
        wire_fork_rows
            .get("rows")
            .and_then(Json::as_array)
            .unwrap()
            .len(),
        1
    );

    // --- replay the traced request against a fork, over the wire -----
    let wire_replay = client
        .call(
            "trod_replay",
            Json::obj(vec![("req_id", Json::str(req_1.clone()))]),
        )
        .expect("wire replay");
    assert_eq!(
        wire_replay.get("faithful").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(
        wire_replay.get("writes_skipped").and_then(Json::as_u64),
        Some(0),
        "replay must apply every write"
    );

    let mut local_replay = local.replay(&req_1).expect("local replay");
    let local_report = local_replay.run_to_end().expect("local replay run");
    assert!(local_report.is_faithful());
    assert_eq!(local_report.writes_skipped(), 0);

    // Step-by-step equivalence: same transactions, same injections,
    // same read checks, same write counts.
    let wire_steps = wire_replay.get("steps").and_then(Json::as_array).unwrap();
    assert_eq!(wire_steps.len(), local_report.steps.len());
    for (wire_step, local_step) in wire_steps.iter().zip(&local_report.steps) {
        assert_eq!(
            wire_step.get("txn_id").and_then(Json::as_u64),
            Some(local_step.txn_id)
        );
        assert_eq!(
            wire_step.get("handler").and_then(Json::as_str),
            Some(local_step.handler.as_str())
        );
        assert_eq!(
            wire_step.get("reads_checked").and_then(Json::as_u64),
            Some(local_step.reads_checked as u64)
        );
        assert_eq!(
            wire_step.get("writes_applied").and_then(Json::as_u64),
            Some(local_step.writes_applied as u64)
        );
        assert_eq!(
            wire_step
                .get("injected")
                .and_then(Json::as_array)
                .unwrap()
                .len(),
            local_step.injected.len()
        );
        assert_eq!(
            wire_step
                .get("mismatches")
                .and_then(Json::as_array)
                .unwrap()
                .len(),
            0
        );
    }

    // The replay's development environment is inspectable over the wire
    // and matches the in-process replay's dev state.
    let replay_fork = wire_replay.get("fork_id").and_then(Json::as_str).unwrap();
    let wire_dev_rows = client
        .call(
            "fork_sql",
            Json::obj(vec![
                ("fork", Json::str(replay_fork)),
                ("sql", Json::str(SUBS_SQL)),
            ]),
        )
        .expect("replay fork sql");
    assert_eq!(
        wire_dev_rows.get("rows").unwrap().to_string(),
        local_rows(local_replay.dev_db(), SUBS_SQL)
    );

    // --- reenactment: both sides see snapshot-consistent reads -------
    let wire_reenact = client
        .call(
            "trod_reenact",
            Json::obj(vec![("req_id", Json::str(req_1.clone()))]),
        )
        .expect("wire reenact");
    let local_reenact = local
        .reenactor()
        .reenact_request(&req_1)
        .expect("local reenact");
    let wire_reports = wire_reenact
        .get("reports")
        .and_then(Json::as_array)
        .unwrap();
    assert_eq!(wire_reports.len(), local_reenact.len());
    for (wire_report, local_report) in wire_reports.iter().zip(&local_reenact) {
        assert_eq!(
            wire_report
                .get("snapshot_consistent")
                .and_then(Json::as_bool),
            Some(local_report.is_snapshot_consistent())
        );
        assert_eq!(
            wire_report.get("reads_checked").and_then(Json::as_u64),
            Some(local_report.reads_checked as u64)
        );
    }

    // --- retroactive re-execution under the named patch --------------
    let req_ids: Vec<Json> = wire_commits
        .iter()
        .map(|(id, _)| Json::str(id.clone()))
        .collect();
    let wire_retro = client
        .call(
            "trod_retroactive",
            Json::obj(vec![
                ("patch", Json::str(PATCH)),
                ("requests", Json::Array(req_ids)),
                ("keep_forks", Json::Bool(true)),
            ]),
        )
        .expect("wire retroactive");

    let local_retro = local
        .retroactive(moodle::patched_registry())
        .requests(&[&wire_commits[0].0, &wire_commits[1].0])
        .run()
        .expect("local retroactive");

    assert_eq!(
        wire_retro.get("snapshot_ts").and_then(Json::as_u64),
        Some(local_retro.snapshot_ts)
    );
    assert_eq!(
        wire_retro.get("conflicting_pairs").and_then(Json::as_u64),
        Some(local_retro.conflicting_pairs as u64)
    );
    let wire_orderings = wire_retro
        .get("orderings")
        .and_then(Json::as_array)
        .unwrap();
    assert_eq!(wire_orderings.len(), local_retro.orderings.len());
    for (wire_ordering, local_ordering) in wire_orderings.iter().zip(&local_retro.orderings) {
        let wire_outcomes = wire_ordering
            .get("outcomes")
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(wire_outcomes.len(), local_ordering.outcomes.len());
        for (wire_outcome, local_outcome) in wire_outcomes.iter().zip(&local_ordering.outcomes) {
            assert_eq!(
                wire_outcome.get("req_id").and_then(Json::as_str),
                Some(local_outcome.req_id.as_str())
            );
            assert_eq!(
                wire_outcome.get("ok").and_then(Json::as_bool),
                Some(local_outcome.ok)
            );
            assert_eq!(
                wire_outcome.get("output").and_then(Json::as_str),
                Some(local_outcome.output.as_str())
            );
        }
        // The patched re-execution's final state, inspected through the
        // ordering's wire fork, matches the in-process dev environment.
        let ordering_fork = wire_ordering.get("fork_id").and_then(Json::as_str).unwrap();
        let wire_state = client
            .call(
                "fork_sql",
                Json::obj(vec![
                    ("fork", Json::str(ordering_fork)),
                    ("sql", Json::str(SUBS_SQL)),
                ]),
            )
            .expect("ordering fork sql");
        assert_eq!(
            wire_state.get("rows").unwrap().to_string(),
            local_rows(local_ordering.dev_db(), SUBS_SQL)
        );
    }

    // --- the trace itself round-trips over the wire ------------------
    let wire_trace = client
        .call(
            "trod_trace",
            Json::obj(vec![("req_id", Json::str(req_1.clone()))]),
        )
        .expect("wire trace");
    let local_trace = local.provenance().txns_for_request(&req_1);
    let wire_txns = wire_trace.get("txns").and_then(Json::as_array).unwrap();
    assert_eq!(wire_txns.len(), local_trace.len());
    for (wire_txn, local_txn) in wire_txns.iter().zip(&local_trace) {
        let mut decoded = trod_core::wire::txn_trace_from_json(wire_txn).expect("decode trace");
        let mut expected = local_txn.clone();
        // The trace timestamp is wall-clock and differs between the two
        // instances; everything logical must match exactly.
        decoded.timestamp = 0;
        expected.timestamp = 0;
        assert_eq!(decoded, expected);
    }

    // Fork bookkeeping: the explicit fork, the replay fork, and one per
    // retroactive ordering (keep_forks), all listed and droppable.
    let listed = client
        .call("fork_list", Json::obj(Vec::<(&str, Json)>::new()))
        .expect("fork_list");
    let forks = listed.get("forks").and_then(Json::as_array).unwrap();
    assert_eq!(forks.len(), 2 + local_retro.orderings.len());
    client
        .call("fork_drop", Json::obj(vec![("fork", Json::str(fork_id))]))
        .expect("fork_drop");

    server.shutdown();
}
