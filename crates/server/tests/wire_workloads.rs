//! The application workloads (shop, Moodle, MediaWiki) driven over the
//! wire: N concurrent keep-alive connections, every request a
//! `trod_invoke`. Conflict failures under contention are expected and
//! must be typed retryable; fatal failures mean a broken mapping.

use trod_apps::{mediawiki, moodle, shop, workload};
use trod_core::Trod;
use trod_runtime::Runtime;
use trod_server::{drive_workload, ServerBuilder, ServerHandle};

fn serve(trod: Trod) -> ServerHandle {
    ServerBuilder::new(trod).serve("127.0.0.1:0").expect("bind")
}

#[test]
fn shop_workload_over_the_wire() {
    let db = shop::shop_db();
    shop::seed_inventory(&db, 10, 10_000);
    let runtime = Runtime::builder(db, shop::registry())
        .kv(shop::shop_kv())
        .build();
    let server = serve(Trod::attach(runtime).expect("attach"));

    let cfg = workload::WorkloadConfig {
        requests: 120,
        users: 10,
        items: 8,
        conflict_rate: 0.2,
        seed: 11,
    };
    let report = drive_workload(&server.addr(), workload::shop_workload(&cfg), 8).expect("drive");

    assert_eq!(report.requests, cfg.requests);
    // getOrder requests may race the checkout that creates the order —
    // those fail as application errors; checkouts only ever fail
    // retryably. A fatal failure rate above the read share means the
    // wire mapping itself is broken.
    assert!(report.ok > cfg.requests / 2, "report: {report:?}");
    assert!(
        report.fatal_failures <= cfg.requests / 10 + 1,
        "unexpected fatal failures: {report:?}"
    );

    let shutdown = server.shutdown();
    assert_eq!(shutdown.requests_served as usize, cfg.requests);
}

#[test]
fn moodle_workload_over_the_wire() {
    let db = moodle::moodle_db();
    let provenance = moodle::provenance_for(&db);
    let runtime = Runtime::builder(db, moodle::registry()).build();
    let server = serve(Trod::attach_with(runtime, provenance));

    let cfg = workload::WorkloadConfig {
        requests: 100,
        users: 12,
        items: 6,
        conflict_rate: 0.3,
        seed: 23,
    };
    let report = drive_workload(&server.addr(), workload::moodle_workload(&cfg), 8).expect("drive");

    assert_eq!(report.requests, cfg.requests);
    assert_eq!(report.fatal_failures, 0, "report: {report:?}");
    assert!(report.ok > cfg.requests / 2, "report: {report:?}");
    server.shutdown();
}

#[test]
fn mediawiki_workload_over_the_wire() {
    let runtime = Runtime::builder(mediawiki::mediawiki_db(), mediawiki::registry()).build();
    let server = serve(Trod::attach(runtime).expect("attach"));

    let cfg = workload::WorkloadConfig {
        requests: 100,
        users: 8,
        items: 5,
        conflict_rate: 0.25,
        seed: 31,
    };
    let mut requests = workload::mediawiki_workload(&cfg);
    // Warm up the page pool serially (as a deployment would), then race
    // the edit/read mix over the wire.
    let rest = requests.split_off(cfg.items.min(cfg.requests));
    let warmup = drive_workload(&server.addr(), requests, 1).expect("warmup");
    assert_eq!(warmup.fatal_failures, 0, "warmup: {warmup:?}");

    let report = drive_workload(&server.addr(), rest, 8).expect("drive");
    assert_eq!(report.requests + warmup.requests, cfg.requests);
    assert_eq!(report.fatal_failures, 0, "report: {report:?}");
    assert!(report.ok > 0, "report: {report:?}");
    server.shutdown();
}
