//! Provenance table layouts.
//!
//! The provenance database mirrors the paper's §3.4 structure:
//!
//! * `Executions` — one row per traced transaction (the paper's Table 1,
//!   there called the "Invocations"/transaction execution log).
//! * `Requests` — one row per handler invocation (start/end, arguments,
//!   output), giving the workflow structure of each request.
//! * `ExternalCalls` — external-service call intents.
//! * One `<X>Events` table per registered application table (the paper's
//!   Table 2, e.g. `ForumEvents`), holding row-level read and write
//!   provenance with the application table's own columns inlined.

use trod_db::{Column, DataType, DbResult, Schema};

/// Name of the transaction-execution log table.
pub const EXECUTIONS_TABLE: &str = "Executions";
/// Name of the handler-invocation table.
pub const REQUESTS_TABLE: &str = "Requests";
/// Name of the external-call table.
pub const EXTERNAL_CALLS_TABLE: &str = "ExternalCalls";

/// Schema of the `Executions` table (paper Table 1 plus the timestamps
/// TROD needs internally for replay).
pub fn executions_schema() -> Schema {
    Schema::builder()
        .column("TxnId", DataType::Int)
        .column("Timestamp", DataType::Timestamp)
        .column("HandlerName", DataType::Text)
        .column("ReqId", DataType::Text)
        .column("Metadata", DataType::Text)
        .column("SnapshotTs", DataType::Int)
        .column("CommitTs", DataType::Int)
        .column("Committed", DataType::Bool)
        .primary_key(&["TxnId"])
        .build()
        .expect("static schema must be valid")
}

/// Schema of the `Requests` table.
pub fn requests_schema() -> Schema {
    Schema::builder()
        .column("ReqId", DataType::Text)
        .column("HandlerName", DataType::Text)
        .nullable("Parent", DataType::Text)
        .column("Args", DataType::Text)
        .nullable("Output", DataType::Text)
        .nullable("Ok", DataType::Bool)
        .column("StartTs", DataType::Timestamp)
        .nullable("EndTs", DataType::Timestamp)
        .primary_key(&["ReqId", "HandlerName", "StartTs"])
        .build()
        .expect("static schema must be valid")
}

/// Schema of the `ExternalCalls` table.
pub fn external_calls_schema() -> Schema {
    Schema::builder()
        .column("EventId", DataType::Int)
        .column("ReqId", DataType::Text)
        .column("HandlerName", DataType::Text)
        .column("Service", DataType::Text)
        .column("Payload", DataType::Text)
        .column("Timestamp", DataType::Timestamp)
        .primary_key(&["EventId"])
        .build()
        .expect("static schema must be valid")
}

/// Builds the event-table schema for an application table: the fixed
/// provenance columns followed by the application table's own columns
/// (all made nullable, because read events that matched nothing carry
/// NULLs — see the first two rows of the paper's Table 2).
pub fn event_table_schema(app_schema: &Schema) -> DbResult<Schema> {
    let mut columns = vec![
        Column::new("EventId", DataType::Int),
        Column::new("TxnId", DataType::Int),
        Column::new("Type", DataType::Text),
        Column::new("Query", DataType::Text),
    ];
    for col in app_schema.columns() {
        // Application columns may collide with the fixed provenance
        // columns (e.g. an app table with a `Type` column); prefix those.
        let name = if columns
            .iter()
            .any(|c| c.name.eq_ignore_ascii_case(&col.name))
        {
            format!("App_{}", col.name)
        } else {
            col.name.clone()
        };
        columns.push(Column::nullable(name, col.dtype));
    }
    Schema::new(columns, &["EventId"])
}

/// Derives the default event-table name for an application table:
/// `forum_sub` → `ForumSubEvents`.
pub fn default_event_table_name(app_table: &str) -> String {
    let mut out = String::new();
    for part in app_table.split(['_', '-']) {
        let mut chars = part.chars();
        if let Some(first) = chars.next() {
            out.extend(first.to_uppercase());
            out.push_str(chars.as_str());
        }
    }
    out.push_str("Events");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_schemas_have_expected_columns() {
        let e = executions_schema();
        assert_eq!(e.primary_key().len(), 1);
        assert!(e.column_index("HandlerName").is_some());
        assert!(e.column_index("CommitTs").is_some());

        let r = requests_schema();
        assert_eq!(r.primary_key().len(), 3);
        assert!(r.column_index("Output").is_some());

        let x = external_calls_schema();
        assert!(x.column_index("Service").is_some());
    }

    #[test]
    fn event_table_schema_appends_app_columns_as_nullable() {
        let app = Schema::builder()
            .column("user_id", DataType::Text)
            .column("forum", DataType::Text)
            .primary_key(&["user_id", "forum"])
            .build()
            .unwrap();
        let ev = event_table_schema(&app).unwrap();
        assert_eq!(ev.arity(), 4 + 2);
        let user_col = ev.column(ev.column_index("user_id").unwrap()).unwrap();
        assert!(user_col.nullable);
    }

    #[test]
    fn event_table_schema_renames_colliding_columns() {
        let app = Schema::builder()
            .column("id", DataType::Int)
            .column("Type", DataType::Text)
            .primary_key(&["id"])
            .build()
            .unwrap();
        let ev = event_table_schema(&app).unwrap();
        assert!(ev.column_index("App_Type").is_some());
        // The provenance `Type` column is still the third column.
        assert_eq!(ev.column_index("Type"), Some(2));
    }

    #[test]
    fn default_event_table_names() {
        assert_eq!(default_event_table_name("forum_sub"), "ForumSubEvents");
        assert_eq!(default_event_table_name("profiles"), "ProfilesEvents");
        assert_eq!(default_event_table_name("site_link"), "SiteLinkEvents");
    }
}
