//! The provenance store: ingest of trace events into queryable tables plus
//! a detailed trace archive used by replay and retroactive programming.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use trod_db::{
    CommittedTxn, Database, DbResult, Predicate, RetentionPolicy, Row, Schema, StorageError,
    SyncMode, Ts, TxnId, Value, Wal, WalOptions, WalRecord,
};
use trod_query::{QueryEngine, QueryResultT, ResultSet};
use trod_trace::{TraceEvent, TraceSink, TxnTrace};

use crate::schema::{
    default_event_table_name, event_table_schema, executions_schema, external_calls_schema,
    requests_schema, EXECUTIONS_TABLE, EXTERNAL_CALLS_TABLE, REQUESTS_TABLE,
};

/// A completed (or still-running) handler invocation, reconstructed from
/// `HandlerStart`/`HandlerEnd` events.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    pub req_id: String,
    pub handler: String,
    pub parent: Option<String>,
    pub args: String,
    pub output: Option<String>,
    pub ok: Option<bool>,
    pub start_ts: i64,
    pub end_ts: Option<i64>,
}

/// Summary statistics of a provenance store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProvenanceStats {
    /// Traced transactions ingested.
    pub transactions: usize,
    /// Row-level data events (rows in `<X>Events` tables).
    pub data_events: usize,
    /// Handler invocations observed.
    pub handler_invocations: usize,
    /// External-service calls observed.
    pub external_calls: usize,
    /// Events referencing application tables that were never registered.
    pub unregistered_table_events: usize,
    /// Provenance entries removed or masked by privacy redaction.
    pub redacted_events: usize,
    /// Aligned transaction-log entries spilled here by the application
    /// database's retention policy before GC truncated them.
    pub spilled_commits: usize,
}

/// The TROD provenance database.
///
/// Relational tables (queryable through SQL) hold what the paper's Tables
/// 1–2 hold; a parallel in-memory archive keeps the full [`TxnTrace`]
/// records (read rows, CDC before/after images) that the replay and
/// retroactive engines consume.
pub struct ProvenanceStore {
    pub(crate) db: Database,
    engine: QueryEngine,
    /// application table → event table name.
    pub(crate) table_map: RwLock<HashMap<String, String>>,
    /// Detailed transaction archive ordered by trace timestamp.
    pub(crate) archive: RwLock<Vec<TxnTrace>>,
    /// Handler invocation archive.
    pub(crate) requests: RwLock<Vec<RequestRecord>>,
    next_event_id: AtomicI64,
    pub(crate) stats: RwLock<ProvenanceStats>,
    /// Transactions whose provenance has been partially redacted (GDPR
    /// erasure, §5); replay degrades gracefully for these.
    pub(crate) redacted_txns: RwLock<std::collections::HashSet<TxnId>>,
    /// Aligned transaction-log entries the application database spilled
    /// here (via its [`RetentionPolicy`]) before truncating them — the
    /// part of the aligned history that no longer exists in the live
    /// `TxnLog`. Commit-ordered; the debugger stitches this prefix onto
    /// the live log so replay and time travel keep working past the GC
    /// watermark.
    pub(crate) spilled: RwLock<Vec<CommittedTxn>>,
    /// Durable sink for spilled aligned history
    /// ([`ProvenanceStore::enable_durable_spills`]): entries surviving GC
    /// truncation are also appended to this WAL segment, so debugging
    /// reach survives a process crash too.
    spill_wal: RwLock<Option<Arc<Wal>>>,
    /// Spill batches that failed to reach the durable sink ([`spill`]
    /// cannot return errors — it runs on the GC path — so failures are
    /// counted instead of lost silently).
    durable_spill_errors: AtomicUsize,
}

impl Default for ProvenanceStore {
    fn default() -> Self {
        ProvenanceStore::new()
    }
}

impl ProvenanceStore {
    /// Creates an empty provenance store with the fixed tables.
    pub fn new() -> Self {
        let db = Database::new();
        db.create_table(EXECUTIONS_TABLE, executions_schema())
            .expect("fresh database cannot already contain Executions");
        db.create_table(REQUESTS_TABLE, requests_schema())
            .expect("fresh database cannot already contain Requests");
        db.create_table(EXTERNAL_CALLS_TABLE, external_calls_schema())
            .expect("fresh database cannot already contain ExternalCalls");
        db.create_index(EXECUTIONS_TABLE, "ReqId")
            .expect("Executions.ReqId index");
        // The debugger's time-window investigations (which transactions
        // ran between these timestamps?) are range scans over ingest
        // order; ordered indexes keep them sublinear as provenance grows.
        db.create_range_index(EXECUTIONS_TABLE, "Timestamp")
            .expect("Executions.Timestamp range index");
        db.create_range_index(REQUESTS_TABLE, "StartTs")
            .expect("Requests.StartTs range index");
        ProvenanceStore {
            engine: QueryEngine::new(db.clone()),
            db,
            table_map: RwLock::new(HashMap::new()),
            archive: RwLock::new(Vec::new()),
            requests: RwLock::new(Vec::new()),
            next_event_id: AtomicI64::new(1),
            stats: RwLock::new(ProvenanceStats::default()),
            redacted_txns: RwLock::new(std::collections::HashSet::new()),
            spilled: RwLock::new(Vec::new()),
            spill_wal: RwLock::new(None),
            durable_spill_errors: AtomicUsize::new(0),
        }
    }

    /// Whether a transaction's provenance has been partially redacted by a
    /// privacy-erasure request (see [`crate::redaction`]). Replay and
    /// retroactive programming consult this to report partial fidelity
    /// rather than silently using incomplete data.
    pub fn is_redacted(&self, txn_id: TxnId) -> bool {
        self.redacted_txns.read().contains(&txn_id)
    }

    /// Creates a provenance store and registers every table of the given
    /// application database under its default event-table name.
    pub fn for_application(app_db: &Database) -> DbResult<Self> {
        let store = ProvenanceStore::new();
        for table in app_db.table_names() {
            let schema = app_db.schema_of(&table)?;
            store.register_table(&table, &schema)?;
        }
        Ok(store)
    }

    /// Registers an application table under the default event-table name
    /// (`forum_sub` → `ForumSubEvents`). Returns the event-table name.
    pub fn register_table(&self, app_table: &str, schema: &Schema) -> DbResult<String> {
        let name = default_event_table_name(app_table);
        self.register_table_as(app_table, &name, schema)?;
        Ok(name)
    }

    /// Registers an application table under an explicit event-table name
    /// (e.g. `forum_sub` → `ForumEvents` to match the paper's Table 2).
    pub fn register_table_as(
        &self,
        app_table: &str,
        event_table: &str,
        schema: &Schema,
    ) -> DbResult<()> {
        let ev_schema = event_table_schema(schema)?;
        self.db.create_table(event_table, ev_schema)?;
        self.db.create_index(event_table, "TxnId")?;
        self.table_map
            .write()
            .insert(app_table.to_string(), event_table.to_string());
        Ok(())
    }

    /// The event-table name registered for an application table, if any.
    pub fn event_table_for(&self, app_table: &str) -> Option<String> {
        self.table_map.read().get(app_table).cloned()
    }

    /// The underlying provenance database (for direct SQL or inspection).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Executes a SQL query over the provenance tables (declarative
    /// debugging, paper §3.3/§3.4).
    pub fn query(&self, sql: &str) -> QueryResultT<ResultSet> {
        self.engine.execute(sql)
    }

    /// Current statistics.
    pub fn stats(&self) -> ProvenanceStats {
        *self.stats.read()
    }

    // ------------------------------------------------------------------
    // Ingest
    // ------------------------------------------------------------------

    /// Ingests a batch of trace events.
    pub fn ingest(&self, events: Vec<TraceEvent>) {
        for event in events {
            self.ingest_event(event);
        }
    }

    /// Ingests a single trace event.
    pub fn ingest_event(&self, event: TraceEvent) {
        match event {
            TraceEvent::Txn(txn) => self.ingest_txn(*txn),
            TraceEvent::HandlerStart {
                req_id,
                handler,
                parent,
                args,
                timestamp,
            } => self.ingest_handler_start(req_id, handler, parent, args, timestamp),
            TraceEvent::HandlerEnd {
                req_id,
                handler,
                output,
                ok,
                timestamp,
            } => self.ingest_handler_end(&req_id, &handler, output, ok, timestamp),
            TraceEvent::ExternalCall {
                req_id,
                handler,
                service,
                payload,
                timestamp,
            } => self.ingest_external_call(req_id, handler, service, payload, timestamp),
        }
    }

    fn ingest_txn(&self, trace: TxnTrace) {
        // Executions row.
        let mut txn = self.db.begin();
        let exec_row = Row::from(vec![
            Value::Int(trace.txn_id as i64),
            Value::Timestamp(trace.timestamp),
            Value::Text(trace.ctx.handler.clone()),
            Value::Text(trace.ctx.req_id.clone()),
            Value::Text(trace.ctx.function.clone()),
            Value::Int(trace.snapshot_ts as i64),
            Value::Int(trace.commit_ts as i64),
            Value::Bool(trace.committed),
        ]);
        // A duplicate TxnId can only occur if the same trace is ingested
        // twice; ignore the duplicate rather than fail the whole batch.
        let _ = txn.insert(EXECUTIONS_TABLE, exec_row);

        let mut data_events = 0usize;
        let mut unregistered = 0usize;
        let table_map = self.table_map.read().clone();

        // Read provenance.
        for read in &trace.reads {
            match table_map.get(&read.table) {
                Some(event_table) => {
                    if read.rows.is_empty() {
                        let row = self.event_row(&trace, event_table, "Read", &read.query, None);
                        if let Ok(row) = row {
                            let _ = txn.insert(event_table, row);
                            data_events += 1;
                        }
                    } else {
                        for (_, data) in &read.rows {
                            let row = self.event_row(
                                &trace,
                                event_table,
                                "Read",
                                &read.query,
                                Some(data),
                            );
                            if let Ok(row) = row {
                                let _ = txn.insert(event_table, row);
                                data_events += 1;
                            }
                        }
                    }
                }
                None => unregistered += 1,
            }
        }

        // Write provenance.
        for change in &trace.writes {
            match table_map.get(&change.table) {
                Some(event_table) => {
                    let image = change.op.after().or_else(|| change.op.before());
                    let query = format!("{} {}", change.op.kind(), change.key);
                    let row = self.event_row(&trace, event_table, change.op.kind(), &query, image);
                    if let Ok(row) = row {
                        let _ = txn.insert(event_table, row);
                        data_events += 1;
                    }
                }
                None => unregistered += 1,
            }
        }

        txn.commit()
            .expect("provenance ingest commit cannot conflict");

        // Archive the full trace for replay.
        self.archive.write().push(trace);
        let mut stats = self.stats.write();
        stats.transactions += 1;
        stats.data_events += data_events;
        stats.unregistered_table_events += unregistered;
    }

    fn event_row(
        &self,
        trace: &TxnTrace,
        event_table: &str,
        kind: &str,
        query: &str,
        data: Option<&Row>,
    ) -> DbResult<Row> {
        let schema = self.db.schema_of(event_table)?;
        let event_id = self.next_event_id.fetch_add(1, Ordering::Relaxed);
        let mut values = vec![
            Value::Int(event_id),
            Value::Int(trace.txn_id as i64),
            Value::Text(kind.to_string()),
            Value::Text(query.to_string()),
        ];
        let app_cols = schema.arity() - 4;
        match data {
            Some(row) => {
                for i in 0..app_cols {
                    values.push(row.get(i).cloned().unwrap_or(Value::Null));
                }
            }
            None => values.extend(std::iter::repeat_n(Value::Null, app_cols)),
        }
        Ok(Row::from(values))
    }

    fn ingest_handler_start(
        &self,
        req_id: String,
        handler: String,
        parent: Option<String>,
        args: String,
        timestamp: i64,
    ) {
        let mut txn = self.db.begin();
        let row = Row::from(vec![
            Value::Text(req_id.clone()),
            Value::Text(handler.clone()),
            parent.clone().map(Value::Text).unwrap_or(Value::Null),
            Value::Text(args.clone()),
            Value::Null,
            Value::Null,
            Value::Timestamp(timestamp),
            Value::Null,
        ]);
        let _ = txn.insert(REQUESTS_TABLE, row);
        txn.commit()
            .expect("provenance ingest commit cannot conflict");

        self.requests.write().push(RequestRecord {
            req_id,
            handler,
            parent,
            args,
            output: None,
            ok: None,
            start_ts: timestamp,
            end_ts: None,
        });
        self.stats.write().handler_invocations += 1;
    }

    fn ingest_handler_end(
        &self,
        req_id: &str,
        handler: &str,
        output: String,
        ok: bool,
        timestamp: i64,
    ) {
        // Update the relational row: the open invocation with the latest
        // StartTs for this (ReqId, HandlerName).
        let pred = Predicate::eq("ReqId", req_id)
            .and(Predicate::eq("HandlerName", handler))
            .and(Predicate::IsNull("EndTs".into()));
        let mut txn = self.db.begin();
        if let Ok(mut rows) = txn.scan(REQUESTS_TABLE, &pred) {
            rows.sort_by_key(|(_, r)| r[6].as_int().unwrap_or(0));
            if let Some((key, row)) = rows.pop() {
                let mut updated = (*row).clone();
                updated.set(4, Value::Text(output.clone()));
                updated.set(5, Value::Bool(ok));
                updated.set(7, Value::Timestamp(timestamp));
                let _ = txn.update(REQUESTS_TABLE, &key, updated);
            }
        }
        txn.commit()
            .expect("provenance ingest commit cannot conflict");

        // Update the archive record.
        let mut requests = self.requests.write();
        if let Some(rec) = requests
            .iter_mut()
            .rev()
            .find(|r| r.req_id == req_id && r.handler == handler && r.end_ts.is_none())
        {
            rec.output = Some(output);
            rec.ok = Some(ok);
            rec.end_ts = Some(timestamp);
        }
    }

    fn ingest_external_call(
        &self,
        req_id: String,
        handler: String,
        service: String,
        payload: String,
        timestamp: i64,
    ) {
        let event_id = self.next_event_id.fetch_add(1, Ordering::Relaxed);
        let mut txn = self.db.begin();
        let row = Row::from(vec![
            Value::Int(event_id),
            Value::Text(req_id),
            Value::Text(handler),
            Value::Text(service),
            Value::Text(payload),
            Value::Timestamp(timestamp),
        ]);
        let _ = txn.insert(EXTERNAL_CALLS_TABLE, row);
        txn.commit()
            .expect("provenance ingest commit cannot conflict");
        self.stats.write().external_calls += 1;
    }

    // ------------------------------------------------------------------
    // Archive accessors used by the debugger core
    // ------------------------------------------------------------------

    /// All request ids observed, in first-seen order.
    pub fn request_ids(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for rec in self.requests.read().iter() {
            if !seen.contains(&rec.req_id) {
                seen.push(rec.req_id.clone());
            }
        }
        seen
    }

    /// Handler invocation records for one request, in start order.
    pub fn request_records(&self, req_id: &str) -> Vec<RequestRecord> {
        self.requests
            .read()
            .iter()
            .filter(|r| r.req_id == req_id)
            .cloned()
            .collect()
    }

    /// All handler invocation records.
    pub fn all_request_records(&self) -> Vec<RequestRecord> {
        self.requests.read().clone()
    }

    /// All archived transaction traces, ordered by commit timestamp (with
    /// aborted/read-only transactions, which have no commit timestamp,
    /// ordered by trace timestamp among themselves at the end).
    pub fn all_txns(&self) -> Vec<TxnTrace> {
        let mut txns = self.archive.read().clone();
        txns.sort_by_key(|t| (!t.committed, t.serialization_ts(), t.timestamp));
        txns
    }

    /// The archived trace of one transaction.
    pub fn txn(&self, txn_id: TxnId) -> Option<TxnTrace> {
        self.archive
            .read()
            .iter()
            .find(|t| t.txn_id == txn_id)
            .cloned()
    }

    /// Committed transaction traces belonging to a request, in commit order.
    pub fn txns_for_request(&self, req_id: &str) -> Vec<TxnTrace> {
        let mut txns: Vec<TxnTrace> = self
            .archive
            .read()
            .iter()
            .filter(|t| t.ctx.req_id == req_id)
            .cloned()
            .collect();
        txns.sort_by_key(|t| (!t.committed, t.serialization_ts(), t.timestamp));
        txns
    }

    /// Committed transactions with commit timestamps in `(after, up_to]`.
    pub fn txns_between(&self, after: Ts, up_to: Ts) -> Vec<TxnTrace> {
        let mut txns: Vec<TxnTrace> = self
            .archive
            .read()
            .iter()
            .filter(|t| t.committed && t.commit_ts > after && t.commit_ts <= up_to)
            .cloned()
            .collect();
        txns.sort_by_key(|t| t.commit_ts);
        txns
    }

    /// Committed transactions that read or wrote the given application table.
    pub fn txns_touching_table(&self, table: &str) -> Vec<TxnTrace> {
        let mut txns: Vec<TxnTrace> = self
            .archive
            .read()
            .iter()
            .filter(|t| t.touched_tables().iter().any(|x| x == table))
            .cloned()
            .collect();
        txns.sort_by_key(|t| (!t.committed, t.serialization_ts(), t.timestamp));
        txns
    }

    /// Number of archived transaction traces.
    pub fn txn_count(&self) -> usize {
        self.archive.read().len()
    }

    // ------------------------------------------------------------------
    // Spilled aligned history (retention)
    // ------------------------------------------------------------------

    /// The aligned transaction-log entries spilled here before GC
    /// truncation, in commit order. Together with the application
    /// database's live log this is the complete aligned history (provided
    /// the store was installed as the retention policy before the first
    /// GC); the debugger stitches the two for replay below the GC floor.
    pub fn spilled_log(&self) -> Vec<CommittedTxn> {
        self.spilled.read().clone()
    }

    /// Spilled entries with commit timestamp at or below `ts`, in commit
    /// order.
    pub fn spilled_up_to(&self, ts: Ts) -> Vec<CommittedTxn> {
        self.spilled_between(0, ts)
    }

    /// Spilled entries with commit timestamp in `(after, up_to]`, in
    /// commit order — the delta a checkpoint-based reconstruction
    /// replays on top of a restored snapshot at `after`. Cloning only
    /// the window keeps deep forks O(delta), not O(history).
    pub fn spilled_between(&self, after: Ts, up_to: Ts) -> Vec<CommittedTxn> {
        let spilled = self.spilled.read();
        let lo = spilled.partition_point(|e| e.commit_ts <= after);
        let hi = spilled.partition_point(|e| e.commit_ts <= up_to);
        spilled[lo..hi].to_vec()
    }

    /// Number of spilled aligned entries held.
    pub fn spilled_count(&self) -> usize {
        self.spilled.read().len()
    }

    /// Routes retention spills through a durable WAL segment at `path`:
    /// every aligned entry GC hands to this store is also appended (and
    /// synced per `mode`) to the segment, so spilled history — the part
    /// of the aligned log that no longer exists anywhere else — survives
    /// a crash. Opening an existing segment loads its entries into the
    /// in-memory spill (they are the oldest prefix; recovery runs before
    /// any new spills arrive) and returns how many were loaded. Torn
    /// tails are truncated at the last valid checksum; mid-file
    /// corruption is a typed error.
    ///
    /// This sink exists for *non-segmented* production logs (in-memory
    /// sinks, legacy single-file WALs). When production runs on the
    /// segmented directory layout, GC compacts the covered segments into
    /// immutable cold files instead of deleting them — the spilled
    /// history is already durable in the log itself, and
    /// `Trod::enable_durable_retention` skips this duplicate copy.
    pub fn enable_durable_spills(
        &self,
        path: impl AsRef<std::path::Path>,
        mode: SyncMode,
    ) -> Result<usize, StorageError> {
        let (wal, records, _info) = Wal::open(path, WalOptions::with_sync_mode(mode))?;
        let entries: Vec<CommittedTxn> = records
            .into_iter()
            .filter_map(|r| match r {
                WalRecord::Commit(entry) => Some(entry),
                // A spill segment only ever holds commit entries; anything
                // else is a foreign file — refuse rather than guess.
                _ => None,
            })
            .collect();
        let loaded = entries.len();
        if loaded > 0 {
            self.spilled.write().extend(entries);
            self.stats.write().spilled_commits += loaded;
        }
        *self.spill_wal.write() = Some(wal);
        Ok(loaded)
    }

    /// Spill batches that failed to reach the durable sink (0 when every
    /// spill is safely on disk, or when durable spills are disabled).
    pub fn durable_spill_errors(&self) -> usize {
        self.durable_spill_errors.load(Ordering::Relaxed)
    }
}

impl RetentionPolicy for ProvenanceStore {
    /// Receives the aligned log entries [`trod_db::Database::gc_before`]
    /// is about to truncate (install with
    /// `db.set_retention_policy(Some(provenance_arc))`, or through
    /// `Trod::enable_retention`). Entries arrive in commit order and GC
    /// horizons only rise, so appending keeps the spill commit-ordered.
    fn spill(&self, entries: Vec<CommittedTxn>) {
        let n = entries.len();
        if let Some(wal) = self.spill_wal.read().as_ref() {
            // Best-effort durable sink (this hook cannot return errors):
            // one sync per GC batch, failures counted — the entries are
            // still kept in memory either way.
            let mut last = Ok(0);
            for entry in &entries {
                last = wal.append_entry(entry);
                if last.is_err() {
                    break;
                }
            }
            if last.and_then(|lsn| wal.sync_to(lsn).map(|()| lsn)).is_err() {
                self.durable_spill_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.spilled.write().extend(entries);
        self.stats.write().spilled_commits += n;
    }
}

impl std::fmt::Debug for ProvenanceStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ProvenanceStore")
            .field("transactions", &stats.transactions)
            .field("data_events", &stats.data_events)
            .field("handler_invocations", &stats.handler_invocations)
            .finish()
    }
}

impl TraceSink for ProvenanceStore {
    fn ingest(&self, events: Vec<TraceEvent>) {
        ProvenanceStore::ingest(self, events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trod_db::{row, DataType};
    use trod_kv::Session;
    use trod_trace::{Tracer, TxnContext};

    fn app_db() -> Database {
        let db = Database::new();
        db.create_table(
            "forum_sub",
            Schema::builder()
                .column("id", DataType::Int)
                .column("user_id", DataType::Text)
                .column("forum", DataType::Text)
                .primary_key(&["id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db
    }

    fn store_for(db: &Database) -> ProvenanceStore {
        let store = ProvenanceStore::new();
        store
            .register_table_as(
                "forum_sub",
                "ForumEvents",
                &db.schema_of("forum_sub").unwrap(),
            )
            .unwrap();
        store
    }

    #[test]
    fn txn_traces_populate_executions_and_event_tables() {
        let db = app_db();
        let store = store_for(&db);
        let traced = Session::builder(db).tracer(Tracer::new()).build();

        let mut txn =
            traced.begin_traced(TxnContext::new("R1", "subscribeUser", "func:isSubscribed"));
        let pred = Predicate::eq("user_id", "U1").and(Predicate::eq("forum", "F2"));
        assert!(!txn.exists("forum_sub", &pred).unwrap());
        txn.commit().unwrap();

        let mut txn = traced.begin_traced(TxnContext::new("R1", "subscribeUser", "func:DB.insert"));
        txn.insert("forum_sub", row![1i64, "U1", "F2"]).unwrap();
        txn.commit().unwrap();

        store.ingest(traced.tracer().unwrap().drain());

        let execs = store
            .query("SELECT * FROM Executions ORDER BY Timestamp")
            .unwrap();
        assert_eq!(execs.len(), 2);
        assert_eq!(
            execs.value(0, "Metadata"),
            Some(&Value::Text("func:isSubscribed".into()))
        );

        let events = store
            .query("SELECT Type, user_id, forum FROM ForumEvents ORDER BY EventId")
            .unwrap();
        // One empty read (NULL data columns) + one insert.
        assert_eq!(events.len(), 2);
        assert_eq!(events.value(0, "Type"), Some(&Value::Text("Read".into())));
        assert_eq!(events.value(0, "user_id"), Some(&Value::Null));
        assert_eq!(events.value(1, "Type"), Some(&Value::Text("Insert".into())));
        assert_eq!(events.value(1, "forum"), Some(&Value::Text("F2".into())));

        let stats = store.stats();
        assert_eq!(stats.transactions, 2);
        assert_eq!(stats.data_events, 2);
        assert_eq!(stats.unregistered_table_events, 0);
        assert_eq!(store.txn_count(), 2);
    }

    #[test]
    fn handler_events_build_request_records() {
        let store = ProvenanceStore::new();
        let tracer = Tracer::new();
        tracer.handler_start("R1", "checkout", None, "{\"cart\":1}");
        tracer.handler_start("R1", "charge", Some("checkout"), "{}");
        tracer.handler_end("R1", "charge", "charged", true);
        tracer.handler_end("R1", "checkout", "done", true);
        tracer.external_call("R1", "checkout", "email", "receipt");
        store.ingest(tracer.drain());

        let recs = store.request_records("R1");
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].handler, "checkout");
        assert_eq!(recs[0].output.as_deref(), Some("done"));
        assert_eq!(recs[1].parent.as_deref(), Some("checkout"));
        assert!(recs[1].end_ts.is_some());
        assert_eq!(store.request_ids(), vec!["R1".to_string()]);

        let reqs = store
            .query("SELECT HandlerName, Ok FROM Requests WHERE ReqId = 'R1' ORDER BY StartTs")
            .unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs.value(0, "Ok"), Some(&Value::Bool(true)));
        let calls = store.query("SELECT Service FROM ExternalCalls").unwrap();
        assert_eq!(calls.len(), 1);
        assert_eq!(store.stats().external_calls, 1);
    }

    #[test]
    fn archive_accessors_filter_and_order() {
        let db = app_db();
        let store = store_for(&db);
        let traced = Session::builder(db).tracer(Tracer::new()).build();

        for (req, id) in [("R1", 1i64), ("R2", 2i64), ("R1", 3i64)] {
            let mut txn =
                traced.begin_traced(TxnContext::new(req, "subscribeUser", "func:DB.insert"));
            txn.insert("forum_sub", row![id, "U1", "F2"]).unwrap();
            txn.commit().unwrap();
        }
        store.ingest(traced.tracer().unwrap().drain());

        let r1 = store.txns_for_request("R1");
        assert_eq!(r1.len(), 2);
        assert!(r1[0].commit_ts < r1[1].commit_ts);
        let all = store.all_txns();
        assert_eq!(all.len(), 3);
        let touching = store.txns_touching_table("forum_sub");
        assert_eq!(touching.len(), 3);
        let first_commit = all[0].commit_ts;
        let later = store.txns_between(first_commit, Ts::MAX);
        assert_eq!(later.len(), 2);
        assert!(store.txn(all[0].txn_id).is_some());
        assert!(store.txn(9999).is_none());
    }

    #[test]
    fn retention_spill_preserves_truncated_aligned_history() {
        use std::sync::Arc;

        let db = app_db();
        let store = Arc::new(store_for(&db));
        db.set_retention_policy(Some(store.clone()));

        let traced = Session::builder(db.clone()).tracer(Tracer::new()).build();
        for id in 1..=4i64 {
            let mut txn = traced.begin_traced(TxnContext::new("R1", "h", "f"));
            txn.insert("forum_sub", row![id, "U1", "F2"]).unwrap();
            txn.commit().unwrap();
        }
        let live_before = db.log_entries();

        let (_, logs) = db.gc_before(db.current_ts());
        assert_eq!(logs, 4);
        assert_eq!(db.log_len(), 0);
        // The spilled prefix is exactly what the log dropped, in order.
        assert_eq!(store.spilled_log(), live_before);
        assert_eq!(store.spilled_count(), 4);
        assert_eq!(store.stats().spilled_commits, 4);
        let mid = live_before[1].commit_ts;
        assert_eq!(store.spilled_up_to(mid).len(), 2);
        assert_eq!(store.spilled_up_to(0).len(), 0);
    }

    #[test]
    fn for_application_registers_all_tables() {
        let db = app_db();
        let store = ProvenanceStore::for_application(&db).unwrap();
        assert_eq!(
            store.event_table_for("forum_sub"),
            Some("ForumSubEvents".to_string())
        );
        assert!(store.database().has_table("ForumSubEvents"));
    }

    #[test]
    fn unregistered_tables_are_counted_not_dropped_silently() {
        let db = app_db();
        let store = ProvenanceStore::new(); // nothing registered
        let traced = Session::builder(db).tracer(Tracer::new()).build();
        let mut txn = traced.begin_traced(TxnContext::new("R1", "h", "f"));
        txn.insert("forum_sub", row![1i64, "U1", "F2"]).unwrap();
        txn.commit().unwrap();
        store.ingest(traced.tracer().unwrap().drain());
        assert_eq!(store.stats().unregistered_table_events, 1);
        // The detailed archive still has everything.
        assert_eq!(store.txn_count(), 1);
    }
}
