//! Privacy redaction and retention for the provenance database.
//!
//! The paper's §5 ("Guaranteeing Security and Privacy") observes that
//! always-on tracing inevitably logs personally identifiable information,
//! so to comply with GDPR/CCPA-style erasure requests TROD must let users
//! *completely remove any provenance data entry that potentially contains
//! their personal information* while still *supporting debugging from
//! partial data*. This module implements that contract:
//!
//! * [`ProvenanceStore::redact_rows`] erases the data columns of every
//!   provenance event (reads and writes, relational tables and the
//!   detailed archive) matching a set of column filters — e.g. "everything
//!   about user U1" — while keeping non-sensitive execution metadata
//!   (transaction ids, handler names, timestamps) so the execution history
//!   remains queryable.
//! * [`ProvenanceStore::redact_request`] erases the arguments, outputs and
//!   external-call payloads of a request (PII frequently lives in request
//!   arguments rather than table rows).
//! * [`ProvenanceStore::retain_since`] implements a retention policy,
//!   dropping all provenance older than a cutoff.
//!
//! Transactions touched by redaction are remembered
//! ([`ProvenanceStore::is_redacted`]); the replay engine reports partial
//! fidelity for them instead of silently replaying against incomplete
//! state — "debugging from partial data".

use trod_db::{ChangeOp, ChangeRecord, DbResult, Predicate, Row, Value};

use crate::schema::{EXECUTIONS_TABLE, EXTERNAL_CALLS_TABLE, REQUESTS_TABLE};
use crate::store::ProvenanceStore;

/// Placeholder written over redacted text fields.
pub const REDACTED_MARKER: &str = "[redacted]";

/// Outcome of a redaction request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RedactionReport {
    /// Rows in `<X>Events` tables whose data columns were erased.
    pub event_rows_redacted: usize,
    /// Row images removed from archived read sets.
    pub archive_reads_redacted: usize,
    /// Row images erased from archived write (CDC) records.
    pub archive_writes_redacted: usize,
    /// Row/value images erased from spilled aligned-history entries (the
    /// transaction-log entries a retention policy preserved across GC) —
    /// erasure must reach them too, or `aligned_history` and
    /// spilled-fork reconstruction would re-expose the data.
    pub spilled_writes_redacted: usize,
    /// Handler invocations whose arguments/outputs were erased.
    pub requests_redacted: usize,
    /// External-call payloads erased.
    pub external_calls_redacted: usize,
    /// Distinct transactions affected (now flagged as partially redacted).
    pub transactions_affected: usize,
}

impl RedactionReport {
    /// Total provenance entries touched.
    pub fn total(&self) -> usize {
        self.event_rows_redacted
            + self.archive_reads_redacted
            + self.archive_writes_redacted
            + self.spilled_writes_redacted
            + self.requests_redacted
            + self.external_calls_redacted
    }
}

/// Outcome of applying a retention cutoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetentionReport {
    /// Archived transaction traces dropped.
    pub transactions_dropped: usize,
    /// Handler invocation records dropped.
    pub requests_dropped: usize,
    /// Rows deleted from the relational provenance tables (Executions,
    /// Requests, ExternalCalls and every `<X>Events` table).
    pub rows_deleted: usize,
    /// Spilled aligned-history entries dropped alongside their traces —
    /// the purge must reach the spill, or `aligned_history` and
    /// spilled-fork reconstruction would re-expose the purged data.
    pub spilled_dropped: usize,
}

impl ProvenanceStore {
    /// Erases every provenance entry about `app_table` rows whose columns
    /// match all `filters` (column name → value). Data columns are
    /// replaced with NULL / [`REDACTED_MARKER`]; execution metadata
    /// (transaction ids, handler names, timestamps) is preserved so the
    /// history's *shape* stays queryable.
    pub fn redact_rows(
        &self,
        app_table: &str,
        filters: &[(&str, Value)],
    ) -> DbResult<RedactionReport> {
        let mut report = RedactionReport::default();
        let mut touched_txns: Vec<i64> = Vec::new();

        // 1. Relational event table.
        if let Some(event_table) = self.event_table_for(app_table) {
            let schema = self.db.schema_of(&event_table)?;
            // Map each filter to an event-table column index (application
            // columns may have been prefixed with `App_` on collision).
            let mut pred = Predicate::True;
            let mut resolvable = true;
            for (column, value) in filters {
                let name = if schema.column_index(column).is_some() {
                    (*column).to_string()
                } else if schema.column_index(&format!("App_{column}")).is_some() {
                    format!("App_{column}")
                } else {
                    resolvable = false;
                    break;
                };
                pred = pred.and(Predicate::eq(name, value.clone()));
            }
            if resolvable {
                let matches = self.db.scan_latest(&event_table, &pred)?;
                let mut txn = self.db.begin();
                for (key, row) in matches {
                    let mut redacted = (*row).clone();
                    redacted.set(3, Value::Text(REDACTED_MARKER.to_string()));
                    for idx in 4..row.len() {
                        redacted.set(idx, Value::Null);
                    }
                    txn.update(&event_table, &key, redacted)?;
                    if let Some(txn_id) = row.get(1).and_then(Value::as_int) {
                        touched_txns.push(txn_id);
                    }
                    report.event_rows_redacted += 1;
                }
                txn.commit()?;
            }
        }

        // 2. Detailed archive: read sets and CDC write records.
        {
            let mut archive = self.archive.write();
            for trace in archive.iter_mut() {
                let mut touched = false;
                for read in trace.reads.iter_mut().filter(|r| r.table == app_table) {
                    let before = read.rows.len();
                    read.rows
                        .retain(|(_, row)| !row_matches(row, filters, trace_arity(row)));
                    let removed = before - read.rows.len();
                    if removed > 0 {
                        read.query = REDACTED_MARKER.to_string();
                        report.archive_reads_redacted += removed;
                        touched = true;
                    }
                }
                for change in trace.writes.iter_mut().filter(|c| c.table == app_table) {
                    let image = change.op.after().or_else(|| change.op.before());
                    let matches = image
                        .map(|row| row_matches(row, filters, trace_arity(row)))
                        .unwrap_or(false);
                    if matches {
                        *change = erase_change(change);
                        report.archive_writes_redacted += 1;
                        touched = true;
                    }
                }
                if touched {
                    touched_txns.push(trace.txn_id as i64);
                }
            }
        }

        // 3. Spilled aligned history (retention). Erasure would be
        // hollow if the images survived in the spill: `aligned_history`
        // and spilled-fork reconstruction read from here. A redacted
        // spilled entry can no longer be re-applied by reconstruction
        // (`Session::apply_changes` refuses erased images), so replays
        // below the GC floor fail loudly on redacted history rather than
        // resurrecting it.
        {
            let mut spilled = self.spilled.write();
            for entry in spilled.iter_mut() {
                let mut touched = false;
                for change in entry.changes.iter_mut().filter(|c| c.table == app_table) {
                    let image = change.op.after().or_else(|| change.op.before());
                    let matches = image
                        .map(|row| row_matches(row, filters, trace_arity(row)))
                        .unwrap_or(false);
                    if matches {
                        *change = erase_change(change);
                        report.spilled_writes_redacted += 1;
                        touched = true;
                    }
                }
                if touched {
                    touched_txns.push(entry.txn_id as i64);
                }
            }
        }

        touched_txns.sort_unstable();
        touched_txns.dedup();
        report.transactions_affected = touched_txns.len();
        {
            let mut redacted = self.redacted_txns.write();
            for txn_id in touched_txns {
                redacted.insert(txn_id as trod_db::TxnId);
            }
        }
        self.stats.write().redacted_events += report.total();
        Ok(report)
    }

    /// Erases the arguments, outputs and external-call payloads recorded
    /// for one request (both the relational tables and the archive).
    pub fn redact_request(&self, req_id: &str) -> DbResult<RedactionReport> {
        let mut report = RedactionReport::default();

        // Relational Requests rows.
        let pred = Predicate::eq("ReqId", req_id);
        let mut txn = self.db.begin();
        for (key, row) in txn.scan(REQUESTS_TABLE, &pred)? {
            let mut redacted = (*row).clone();
            redacted.set(3, Value::Text(REDACTED_MARKER.to_string()));
            if !row.get(4).map(Value::is_null).unwrap_or(true) {
                redacted.set(4, Value::Text(REDACTED_MARKER.to_string()));
            }
            txn.update(REQUESTS_TABLE, &key, redacted)?;
            report.requests_redacted += 1;
        }
        for (key, row) in txn.scan(EXTERNAL_CALLS_TABLE, &pred)? {
            let mut redacted = (*row).clone();
            redacted.set(4, Value::Text(REDACTED_MARKER.to_string()));
            txn.update(EXTERNAL_CALLS_TABLE, &key, redacted)?;
            report.external_calls_redacted += 1;
        }
        txn.commit()?;

        // Archive.
        for rec in self
            .requests
            .write()
            .iter_mut()
            .filter(|r| r.req_id == req_id)
        {
            rec.args = REDACTED_MARKER.to_string();
            if rec.output.is_some() {
                rec.output = Some(REDACTED_MARKER.to_string());
            }
        }

        self.stats.write().redacted_events += report.total();
        Ok(report)
    }

    /// Drops all provenance recorded before `cutoff_ts` (trace-clock
    /// microseconds): archived traces, handler records, and the
    /// corresponding rows of every relational provenance table.
    pub fn retain_since(&self, cutoff_ts: i64) -> DbResult<RetentionReport> {
        let mut report = RetentionReport::default();

        // Which transactions are being dropped (needed to clean the event
        // tables, which carry no timestamp of their own).
        let dropped_txn_ids: Vec<Value> = {
            let archive = self.archive.read();
            archive
                .iter()
                .filter(|t| t.timestamp < cutoff_ts)
                .map(|t| Value::Int(t.txn_id as i64))
                .collect()
        };

        // Relational tables.
        let mut txn = self.db.begin();
        report.rows_deleted +=
            txn.delete_where(EXECUTIONS_TABLE, &Predicate::lt("Timestamp", cutoff_ts))?;
        report.rows_deleted +=
            txn.delete_where(REQUESTS_TABLE, &Predicate::lt("StartTs", cutoff_ts))?;
        report.rows_deleted +=
            txn.delete_where(EXTERNAL_CALLS_TABLE, &Predicate::lt("Timestamp", cutoff_ts))?;
        if !dropped_txn_ids.is_empty() {
            let event_tables: Vec<String> = self.table_map.read().values().cloned().collect();
            for event_table in event_tables {
                report.rows_deleted += txn.delete_where(
                    &event_table,
                    &Predicate::in_list("TxnId", dropped_txn_ids.clone()),
                )?;
            }
        }
        txn.commit()?;

        // Archive.
        {
            let mut archive = self.archive.write();
            let before = archive.len();
            archive.retain(|t| t.timestamp >= cutoff_ts);
            report.transactions_dropped = before - archive.len();
        }
        {
            let mut requests = self.requests.write();
            let before = requests.len();
            requests.retain(|r| r.start_ts >= cutoff_ts);
            report.requests_dropped = before - requests.len();
        }
        // Spilled aligned history: the purge must reach retention too —
        // the entries of every dropped transaction leave the spill, so
        // nothing recorded before the cutoff survives anywhere in this
        // store. (Spilled entries carry no trace timestamp of their own;
        // the dropped transaction ids are the cutoff's footprint.)
        if !dropped_txn_ids.is_empty() {
            let dropped: std::collections::HashSet<trod_db::TxnId> = dropped_txn_ids
                .iter()
                .filter_map(Value::as_int)
                .map(|id| id as trod_db::TxnId)
                .collect();
            let mut spilled = self.spilled.write();
            let before = spilled.len();
            spilled.retain(|e| !dropped.contains(&e.txn_id));
            report.spilled_dropped = before - spilled.len();
        }
        Ok(report)
    }
}

/// Archive rows are raw application rows; filters address them by the
/// application column *positions* implied by the event-table layout. The
/// archive does not store the application schema, so matching is by value:
/// a row matches if every filter value appears in it. This is intentionally
/// conservative (it may redact extra rows that merely contain the value),
/// which is the safe direction for an erasure request.
fn row_matches(row: &Row, filters: &[(&str, Value)], _arity: usize) -> bool {
    !filters.is_empty()
        && filters
            .iter()
            .all(|(_, value)| row.iter().any(|v| v.sql_eq(value)))
}

fn trace_arity(row: &Row) -> usize {
    row.len()
}

/// Produces a copy of a CDC record with all row images nulled out (key and
/// operation kind preserved).
fn erase_change(change: &ChangeRecord) -> ChangeRecord {
    let null_row = |row: &Row| Row::from(vec![Value::Null; row.len()]);
    match &change.op {
        ChangeOp::Insert { after } => {
            ChangeRecord::insert(change.table.clone(), change.key.clone(), null_row(after))
        }
        ChangeOp::Update { before, after } => ChangeRecord::update(
            change.table.clone(),
            change.key.clone(),
            null_row(before),
            null_row(after),
        ),
        ChangeOp::Delete { before } => {
            ChangeRecord::delete(change.table.clone(), change.key.clone(), null_row(before))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trod_db::{row, DataType, Database, Schema};
    use trod_kv::Session;
    use trod_trace::{Tracer, TxnContext};

    fn setup() -> (Database, ProvenanceStore, Session) {
        let db = Database::new();
        db.create_table(
            "profiles",
            Schema::builder()
                .column("user", DataType::Text)
                .column("email", DataType::Text)
                .primary_key(&["user"])
                .build()
                .unwrap(),
        )
        .unwrap();
        let store = ProvenanceStore::for_application(&db).unwrap();
        let traced = Session::builder(db.clone()).tracer(Tracer::new()).build();
        (db, store, traced)
    }

    #[test]
    fn redact_rows_erases_spilled_aligned_history_too() {
        use std::sync::Arc;

        let db = Database::new();
        db.create_table(
            "profiles",
            Schema::builder()
                .column("user", DataType::Text)
                .column("email", DataType::Text)
                .primary_key(&["user"])
                .build()
                .unwrap(),
        )
        .unwrap();
        let store = Arc::new(ProvenanceStore::for_application(&db).unwrap());
        db.set_retention_policy(Some(store.clone()));
        let traced = Session::builder(db.clone()).tracer(Tracer::new()).build();

        let mut txn = traced.begin_traced(TxnContext::new("R1", "updateProfile", "f"));
        txn.insert("profiles", row!["U1", "u1@example.org"])
            .unwrap();
        txn.insert("profiles", row!["U2", "u2@example.org"])
            .unwrap();
        txn.commit().unwrap();
        store.ingest(traced.tracer().unwrap().drain());
        db.gc_before(db.current_ts());
        assert_eq!(store.spilled_count(), 1);

        let report = store
            .redact_rows("profiles", &[("user", Value::Text("U1".into()))])
            .unwrap();
        assert_eq!(report.spilled_writes_redacted, 1);
        // The spilled entry keeps its shape (key, kind, U2's record) but
        // U1's images are gone — aligned_history and spilled-fork
        // reconstruction can no longer resurrect the erased data.
        let spilled = store.spilled_log();
        assert_eq!(spilled[0].changes.len(), 2);
        let leaked = spilled[0]
            .changes
            .iter()
            .filter_map(|c| c.op.after())
            .filter(|row| row.iter().any(|v| v.as_text() == Some("u1@example.org")))
            .count();
        assert_eq!(leaked, 0);
        assert!(spilled[0]
            .changes
            .iter()
            .filter_map(|c| c.op.after())
            .any(|row| row.iter().any(|v| v.as_text() == Some("u2@example.org"))));
        assert!(store.is_redacted(spilled[0].txn_id));
    }

    #[test]
    fn redact_rows_erases_event_table_and_archive() {
        let (_db, store, traced) = setup();
        let mut txn = traced.begin_traced(TxnContext::new("R1", "updateProfile", "f"));
        txn.insert("profiles", row!["U1", "u1@example.org"])
            .unwrap();
        txn.insert("profiles", row!["U2", "u2@example.org"])
            .unwrap();
        txn.commit().unwrap();
        let mut txn = traced.begin_traced(TxnContext::new("R2", "readProfile", "f"));
        let got = txn.scan("profiles", &Predicate::eq("user", "U1")).unwrap();
        assert_eq!(got.len(), 1);
        txn.commit().unwrap();
        store.ingest(traced.tracer().unwrap().drain());

        let report = store
            .redact_rows("profiles", &[("user", Value::Text("U1".into()))])
            .unwrap();
        assert_eq!(report.event_rows_redacted, 2, "one insert + one read event");
        assert_eq!(report.archive_reads_redacted, 1);
        assert_eq!(report.archive_writes_redacted, 1);
        assert_eq!(report.transactions_affected, 2);
        assert!(report.total() >= 4);

        // The event table no longer exposes U1's data...
        let rows = store
            .query("SELECT Type, user, email FROM ProfilesEvents ORDER BY EventId")
            .unwrap();
        let leaked = rows
            .rows()
            .iter()
            .filter(|r| r.iter().any(|v| v.as_text() == Some("u1@example.org")))
            .count();
        assert_eq!(leaked, 0);
        // ...but U2's provenance and the execution metadata survive.
        let u2 = rows
            .rows()
            .iter()
            .filter(|r| r.iter().any(|v| v.as_text() == Some("U2")))
            .count();
        assert_eq!(u2, 1);
        let execs = store.query("SELECT TxnId FROM Executions").unwrap();
        assert_eq!(execs.len(), 2);

        // Transactions are flagged so replay can report partial data.
        let flagged = store
            .all_txns()
            .iter()
            .filter(|t| store.is_redacted(t.txn_id))
            .count();
        assert_eq!(flagged, 2);
        assert_eq!(store.stats().redacted_events, report.total());
    }

    #[test]
    fn redact_rows_on_unknown_table_or_column_is_a_noop() {
        let (_db, store, traced) = setup();
        let mut txn = traced.begin_traced(TxnContext::new("R1", "h", "f"));
        txn.insert("profiles", row!["U1", "u1@example.org"])
            .unwrap();
        txn.commit().unwrap();
        store.ingest(traced.tracer().unwrap().drain());

        let report = store
            .redact_rows("missing_table", &[("user", Value::Text("U1".into()))])
            .unwrap();
        assert_eq!(report.event_rows_redacted, 0);
        let report = store
            .redact_rows("profiles", &[("no_such_column", Value::Text("U1".into()))])
            .unwrap();
        assert_eq!(report.event_rows_redacted, 0);
    }

    #[test]
    fn redact_request_erases_args_outputs_and_payloads() {
        let (_db, store, _traced) = setup();
        let tracer = Tracer::new();
        tracer.handler_start("R1", "updateProfile", None, "user=U1&ssn=123");
        tracer.external_call("R1", "updateProfile", "email", "to=u1@example.org");
        tracer.handler_end("R1", "updateProfile", "ok:U1", true);
        tracer.handler_start("R2", "other", None, "x=1");
        tracer.handler_end("R2", "other", "ok", true);
        store.ingest(tracer.drain());

        let report = store.redact_request("R1").unwrap();
        assert_eq!(report.requests_redacted, 1);
        assert_eq!(report.external_calls_redacted, 1);

        let reqs = store
            .query("SELECT ReqId, Args, Output FROM Requests ORDER BY ReqId")
            .unwrap();
        assert_eq!(
            reqs.value(0, "Args"),
            Some(&Value::Text(REDACTED_MARKER.into()))
        );
        assert_eq!(reqs.value(1, "Args"), Some(&Value::Text("x=1".into())));
        let recs = store.request_records("R1");
        assert_eq!(recs[0].args, REDACTED_MARKER);
        assert_eq!(recs[0].output.as_deref(), Some(REDACTED_MARKER));
        let calls = store.query("SELECT Payload FROM ExternalCalls").unwrap();
        assert_eq!(
            calls.value(0, "Payload"),
            Some(&Value::Text(REDACTED_MARKER.into()))
        );
    }

    #[test]
    fn retain_since_purges_spilled_aligned_history_of_dropped_txns() {
        use std::sync::Arc;

        let db = Database::new();
        db.create_table(
            "profiles",
            Schema::builder()
                .column("user", DataType::Text)
                .column("email", DataType::Text)
                .primary_key(&["user"])
                .build()
                .unwrap(),
        )
        .unwrap();
        let store = Arc::new(ProvenanceStore::for_application(&db).unwrap());
        db.set_retention_policy(Some(store.clone()));
        let traced = Session::builder(db.clone()).tracer(Tracer::new()).build();

        let mut txn = traced.begin_traced(TxnContext::new("R1", "updateProfile", "f"));
        txn.insert("profiles", row!["U1", "u1@example.org"])
            .unwrap();
        txn.commit().unwrap();
        store.ingest(traced.tracer().unwrap().drain());
        let cutoff = traced.tracer().unwrap().now();
        let mut txn = traced.begin_traced(TxnContext::new("R2", "updateProfile", "f"));
        txn.insert("profiles", row!["U2", "u2@example.org"])
            .unwrap();
        txn.commit().unwrap();
        store.ingest(traced.tracer().unwrap().drain());
        db.gc_before(db.current_ts());
        assert_eq!(store.spilled_count(), 2);

        let report = store.retain_since(cutoff).unwrap();
        assert_eq!(report.transactions_dropped, 1);
        // The dropped transaction's aligned entry left the spill too: the
        // purge cannot be undone through aligned_history or a
        // reconstructed fork.
        assert_eq!(report.spilled_dropped, 1);
        assert_eq!(store.spilled_count(), 1);
        assert!(store
            .spilled_log()
            .iter()
            .flat_map(|e| &e.changes)
            .filter_map(|c| c.op.after())
            .all(|row| row.iter().all(|v| v.as_text() != Some("u1@example.org"))));
    }

    #[test]
    fn retain_since_drops_old_provenance_everywhere() {
        let (_db, store, traced) = setup();
        // Two transactions, then note the cutoff, then one more.
        for (req, user) in [("R1", "U1"), ("R2", "U2")] {
            let mut txn = traced.begin_traced(TxnContext::new(req, "updateProfile", "f"));
            txn.insert("profiles", row![user, format!("{user}@example.org")])
                .unwrap();
            txn.commit().unwrap();
        }
        let tracer = traced.tracer().unwrap().clone();
        tracer.handler_start("R1", "updateProfile", None, "{}");
        tracer.handler_end("R1", "updateProfile", "ok", true);
        store.ingest(tracer.drain());
        let cutoff = tracer.now();

        let mut txn = traced.begin_traced(TxnContext::new("R3", "updateProfile", "f"));
        txn.insert("profiles", row!["U3", "u3@example.org"])
            .unwrap();
        txn.commit().unwrap();
        tracer.handler_start("R3", "updateProfile", None, "{}");
        tracer.handler_end("R3", "updateProfile", "ok", true);
        store.ingest(tracer.drain());
        assert_eq!(store.txn_count(), 3);

        let report = store.retain_since(cutoff).unwrap();
        assert_eq!(report.transactions_dropped, 2);
        assert_eq!(report.requests_dropped, 1);
        assert!(report.rows_deleted >= 2 + 1 + 2);

        assert_eq!(store.txn_count(), 1);
        assert_eq!(store.query("SELECT * FROM Executions").unwrap().len(), 1);
        assert_eq!(store.query("SELECT * FROM Requests").unwrap().len(), 1);
        let events = store.query("SELECT * FROM ProfilesEvents").unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(store.request_ids(), vec!["R3".to_string()]);
    }

    #[test]
    fn erase_change_preserves_kind_and_key() {
        let insert = ChangeRecord::insert("t", trod_db::Key::single("U1"), row!["U1", "x"]);
        let erased = erase_change(&insert);
        assert_eq!(erased.op.kind(), "Insert");
        assert_eq!(erased.key, insert.key);
        assert!(erased.op.after().unwrap().iter().all(Value::is_null));

        let update = ChangeRecord::update(
            "t",
            trod_db::Key::single("U1"),
            row!["U1", "x"],
            row!["U1", "y"],
        );
        assert_eq!(erase_change(&update).op.kind(), "Update");
        let delete = ChangeRecord::delete("t", trod_db::Key::single("U1"), row!["U1", "x"]);
        assert_eq!(erase_change(&delete).op.kind(), "Delete");
    }
}
