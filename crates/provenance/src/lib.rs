//! # trod-provenance
//!
//! The TROD **provenance database** (paper Figure 2, §3.4): an analytical
//! store holding always-on tracing output in a structured, queryable form.
//!
//! * The [`ProvenanceStore`] owns its own [`trod_db::Database`] with the
//!   fixed tables `Executions` (the paper's Table 1), `Requests` and
//!   `ExternalCalls`, plus one `<X>Events` table per registered
//!   application table (the paper's Table 2, e.g. `ForumEvents`).
//! * It implements [`trod_trace::TraceSink`], so a
//!   [`trod_trace::BackgroundFlusher`] can move events from the in-memory
//!   trace buffer into it off the request path.
//! * Developers (and the TROD debugger core) query it with SQL through
//!   [`ProvenanceStore::query`]; the replay and retroactive engines
//!   additionally use the detailed in-memory archive accessors
//!   ([`ProvenanceStore::txns_for_request`] etc.), which keep full CDC
//!   before/after images.

pub mod redaction;
pub mod schema;
pub mod store;

pub use redaction::{RedactionReport, RetentionReport, REDACTED_MARKER};
pub use schema::{
    default_event_table_name, event_table_schema, executions_schema, external_calls_schema,
    requests_schema, EXECUTIONS_TABLE, EXTERNAL_CALLS_TABLE, REQUESTS_TABLE,
};
pub use store::{ProvenanceStats, ProvenanceStore, RequestRecord};
