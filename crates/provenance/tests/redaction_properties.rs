//! Property-based tests for privacy redaction (paper §5).
//!
//! The contract under test: after redacting every provenance entry about
//! one user, (a) none of that user's data values remain reachable through
//! the relational provenance tables or the detailed archive, (b) every
//! other user's provenance is untouched, and (c) execution metadata
//! (transaction ids, handler names) survives so the history's shape stays
//! debuggable.

use proptest::prelude::*;

use trod_db::{row, DataType, Database, Predicate, Schema, Value};
use trod_kv::Session;
use trod_provenance::ProvenanceStore;
use trod_trace::{Tracer, TxnContext};

/// One generated subscription insert: (user index, forum index).
fn gen_inserts() -> impl Strategy<Value = Vec<(u8, u8)>> {
    prop::collection::vec((0u8..6, 0u8..4), 1..40)
}

fn setup() -> (Database, ProvenanceStore, Session) {
    let db = Database::new();
    db.create_table(
        "forum_sub",
        Schema::builder()
            .column("id", DataType::Int)
            .column("user_id", DataType::Text)
            .column("forum", DataType::Text)
            .primary_key(&["id"])
            .build()
            .unwrap(),
    )
    .unwrap();
    let store = ProvenanceStore::new();
    store
        .register_table_as(
            "forum_sub",
            "ForumEvents",
            &db.schema_of("forum_sub").unwrap(),
        )
        .unwrap();
    let traced = Session::builder(db.clone()).tracer(Tracer::new()).build();
    (db, store, traced)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn redaction_erases_exactly_the_target_users_provenance(
        inserts in gen_inserts(),
        target in 0u8..6,
    ) {
        let (_db, store, traced) = setup();
        let target_user = format!("U{target}");

        // Trace one transaction per insert, reading before writing so both
        // read and write provenance exist.
        for (i, (user, forum)) in inserts.iter().enumerate() {
            let req = format!("R{i}");
            let mut txn = traced.begin_traced(TxnContext::new(&req, "subscribeUser", "func:DB.insert"));
            let pred = Predicate::eq("user_id", format!("U{user}"));
            let _ = txn.scan("forum_sub", &pred).unwrap();
            txn.insert("forum_sub", row![i as i64, format!("U{user}"), format!("F{forum}")])
                .unwrap();
            txn.commit().unwrap();
        }
        store.ingest(traced.tracer().unwrap().drain());

        let target_inserts = inserts.iter().filter(|(u, _)| *u == target).count();
        let other_inserts = inserts.len() - target_inserts;

        let report = store
            .redact_rows("forum_sub", &[("user_id", Value::Text(target_user.clone()))])
            .unwrap();

        // (a) The target's values are gone from the relational event table…
        let events = store
            .query("SELECT TxnId, Type, user_id, forum FROM ForumEvents ORDER BY EventId")
            .unwrap();
        let leaked = events
            .rows()
            .iter()
            .filter(|r| r.iter().any(|v| v.as_text() == Some(target_user.as_str())))
            .count();
        prop_assert_eq!(leaked, 0, "no event row may still carry the target user");
        // …and from the detailed archive.
        let archived_leak = store
            .all_txns()
            .iter()
            .flat_map(|t| t.writes.iter())
            .filter_map(|c| c.op.after().or_else(|| c.op.before()))
            .filter(|row| row.iter().any(|v| v.as_text() == Some(target_user.as_str())))
            .count();
        prop_assert_eq!(archived_leak, 0, "no archived CDC image may still carry the target user");

        // (b) Every other user's write provenance survives untouched.
        let surviving_inserts = events
            .rows()
            .iter()
            .filter(|r| {
                r[1].as_text() == Some("Insert")
                    && r[2].as_text().map(|u| u != target_user).unwrap_or(false)
            })
            .count();
        prop_assert_eq!(surviving_inserts, other_inserts);

        // (c) Execution metadata survives for every traced transaction, and
        // exactly the transactions that touched the target are flagged.
        let executions = store.query("SELECT TxnId FROM Executions").unwrap();
        prop_assert_eq!(executions.len(), inserts.len());
        let flagged = store
            .all_txns()
            .iter()
            .filter(|t| store.is_redacted(t.txn_id))
            .count();
        prop_assert_eq!(flagged, report.transactions_affected);
        if target_inserts > 0 {
            prop_assert!(report.event_rows_redacted >= target_inserts);
            prop_assert!(flagged >= target_inserts);
        } else {
            prop_assert_eq!(report.total(), 0);
        }
    }

    #[test]
    fn retention_is_a_prefix_drop(
        inserts in gen_inserts(),
        keep_frac in 0.0f64..1.0,
    ) {
        let (_db, store, traced) = setup();
        for (i, (user, forum)) in inserts.iter().enumerate() {
            let mut txn = traced.begin_traced(TxnContext::new(
                format!("R{i}"),
                "subscribeUser",
                "func:DB.insert",
            ));
            txn.insert("forum_sub", row![i as i64, format!("U{user}"), format!("F{forum}")])
                .unwrap();
            txn.commit().unwrap();
        }
        store.ingest(traced.tracer().unwrap().drain());

        let all = store.all_txns();
        let keep_from = ((all.len() as f64) * (1.0 - keep_frac)) as usize;
        let cutoff = all
            .get(keep_from)
            .map(|t| t.timestamp)
            .unwrap_or(i64::MAX);

        let expected_kept = all.iter().filter(|t| t.timestamp >= cutoff).count();
        let report = store.retain_since(cutoff).unwrap();

        prop_assert_eq!(store.txn_count(), expected_kept);
        prop_assert_eq!(report.transactions_dropped, all.len() - expected_kept);
        // The relational Executions table agrees with the archive.
        let executions = store.query("SELECT TxnId FROM Executions").unwrap();
        prop_assert_eq!(executions.len(), expected_kept);
        // Every surviving transaction is at or after the cutoff.
        prop_assert!(store.all_txns().iter().all(|t| t.timestamp >= cutoff));
    }
}
