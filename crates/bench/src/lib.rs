//! Benchmark support crate; see benches/ and src/bin/report.rs.
