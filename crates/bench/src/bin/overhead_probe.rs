use std::time::Instant;
use trod_apps::shop;
use trod_db::StorageProfile;
use trod_runtime::Runtime;

fn main() {
    for tracing in [false, true] {
        let db = shop::shop_db_with_profile(StorageProfile::InMemory);
        shop::seed_inventory(&db, 64, i64::MAX / 2);
        let runtime = Runtime::new(db, shop::registry());
        runtime.tracer().set_enabled(tracing);
        // warmup
        for i in 0..200 {
            let r = runtime.handle_request(
                "checkout",
                shop::checkout_args(&format!("w{i}"), "u", &format!("item-{}", i % 64), 1),
            );
            assert!(r.is_ok());
        }
        let start = Instant::now();
        let n = 2000;
        for i in 0..n {
            let r = runtime.handle_request(
                "checkout",
                shop::checkout_args(&format!("o{i}"), "u", &format!("item-{}", i % 64), 1),
            );
            assert!(r.is_ok());
        }
        let total = start.elapsed();
        println!(
            "tracing={tracing}: {:?} per request, buffer={} events",
            total / n,
            runtime.tracer().stats().buffered
        );
    }
}
