//! Regenerates the paper's tables and figures from a fresh trace.
//!
//! ```text
//! cargo run -p trod-bench --bin report            # everything
//! cargo run -p trod-bench --bin report -- table1  # just Table 1
//! cargo run -p trod-bench --bin report -- bench-json IN.jsonl OUT.json
//! ```
//!
//! Artifacts:
//! * `table1`  — the Executions / transaction-execution log (paper Table 1)
//! * `table2`  — the ForumEvents data-operation log (paper Table 2)
//! * `query1`  — the §3.3 declarative-debugging query and its answer
//! * `figure3` — the replay of R1 (Figure 3 top) and the retroactive
//!   re-execution of R1–R3 with the patched handler (bottom)
//! * `bench-json` — aggregates the JSON-lines emitted by a criterion run
//!   (`TROD_BENCH_JSON`) into one committed perf-trajectory artifact
//!   (`BENCH_PR<N>.json`); driven by `scripts/bench.sh`

use trod_apps::moodle;
use trod_core::{Invariant, Trod};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("bench-json") {
        let [input, output] = &args[1..] else {
            eprintln!("usage: report bench-json <results.jsonl> <out.json>");
            std::process::exit(2);
        };
        emit_bench_json(input, output);
        return;
    }
    let wants = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    // Reproduce the paper's running example and capture its provenance.
    let scenario = moodle::toctou_scenario();
    let fetch_error = scenario.run();
    let trod = scenario.into_trod();

    println!("TROD report — regenerated from a fresh trace of the MDL-59854 scenario");
    println!(
        "production symptom: fetchSubscribers (R3) -> {}\n",
        fetch_error.unwrap_or_else(|| "no error (unexpected)".to_string())
    );

    if wants("table1") {
        print_table1(&trod);
    }
    if wants("table2") {
        print_table2(&trod);
    }
    if wants("query1") {
        print_query1(&trod);
    }
    if wants("figure3") {
        print_figure3(&trod);
    }
}

fn print_table1(trod: &Trod) {
    println!("== Table 1: transaction execution log (Executions) ==");
    let result = trod
        .query(
            "SELECT TxnId, Timestamp, HandlerName, ReqId, Metadata \
             FROM Executions ORDER BY Timestamp ASC",
        )
        .expect("provenance query");
    println!("{result}");
}

fn print_table2(trod: &Trod) {
    println!("== Table 2: data operations log (ForumEvents) ==");
    let result = trod
        .query(
            "SELECT TxnId, Type, Query, user_id AS UserId, forum AS Forum \
             FROM ForumEvents ORDER BY EventId ASC",
        )
        .expect("provenance query");
    println!("{result}");
}

fn print_query1(trod: &Trod) {
    let sql = "SELECT Timestamp, ReqId, HandlerName \
               FROM Executions as E, ForumEvents as F ON E.TxnId = F.TxnId \
               WHERE F.user_id = 'U1' AND F.forum = 'F2' AND F.Type = 'Insert' \
               ORDER BY Timestamp ASC";
    println!("== Section 3.3 declarative debugging query ==");
    println!("{sql}\n");
    println!("{}", trod.query(sql).expect("provenance query"));
}

fn print_figure3(trod: &Trod) {
    println!("== Figure 3 (top): original transaction history, replayed ==");
    let mut session = trod.replay("R1").expect("R1 was traced");
    while let Some(step) = session.step().expect("replay step") {
        let injected: Vec<String> = step.injected.iter().map(|(_, r)| r.clone()).collect();
        println!(
            "  R1 {:<22} injected before it: {:<12} faithful: {}",
            step.function,
            if injected.is_empty() {
                "-".to_string()
            } else {
                injected.join(",")
            },
            step.is_faithful()
        );
    }
    println!();

    println!("== Figure 3 (bottom): retroactive execution of the patched code ==");
    let report = trod
        .retroactive(moodle::patched_registry())
        .requests(&["R1", "R2", "R3"])
        .invariant(Invariant::no_duplicates(
            moodle::FORUM_SUB_TABLE,
            &["user_id", "forum"],
        ))
        .run()
        .expect("retroactive run");
    for ordering in &report.orderings {
        let line: Vec<String> = ordering
            .outcomes
            .iter()
            .map(|o| {
                format!(
                    "{}={}",
                    o.req_id,
                    if o.ok {
                        o.output.clone()
                    } else {
                        format!("error({})", o.output)
                    }
                )
            })
            .collect();
        println!(
            "  order {:?}: {} | invariant violations: {}",
            ordering.order,
            line.join("  "),
            ordering.violations.len()
        );
    }
    println!(
        "\n  verdict: patched code clean under every ordering = {}",
        report.all_orderings_clean()
    );
}

/// Wraps the JSON-lines benchmark results in a single stable artifact.
/// Each input line is already a JSON object (one per benchmark, emitted by
/// the vendored criterion's `TROD_BENCH_JSON` hook); this adds metadata
/// and sorts by id so diffs between PR baselines stay readable.
fn emit_bench_json(input: &str, output: &str) {
    let raw = std::fs::read_to_string(input)
        .unwrap_or_else(|e| panic!("cannot read bench results {input}: {e}"));
    let mut lines: Vec<&str> = raw
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .collect();
    // Sort by the "id" field, which every line starts with.
    lines.sort_unstable();
    lines.dedup();

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"trod-bench/v1\",\n");
    out.push_str(&format!(
        "  \"rustc\": \"{}\",\n",
        option_env!("TROD_RUSTC_VERSION").unwrap_or("unknown")
    ));
    out.push_str(
        "  \"note\": \"mean_ns is per iteration; see crates/bench/benches/ for workloads\",\n",
    );
    out.push_str("  \"results\": [\n");
    for (i, line) in lines.iter().enumerate() {
        out.push_str("    ");
        out.push_str(line);
        if i + 1 < lines.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    std::fs::write(output, out)
        .unwrap_or_else(|e| panic!("cannot write bench artifact {output}: {e}"));
    println!("wrote {output} ({} results)", lines.len());
}
