//! Experiment E1 (paper §3.7): always-on tracing overhead.
//!
//! The paper reports <100 µs of tracing work per request, which is a
//! relative overhead of <15 % against an in-memory store (VoltDB) and
//! negligible against an on-disk store (Postgres). This benchmark measures
//! the per-request latency of the shop checkout workflow with tracing
//! enabled vs disabled, against both storage latency profiles, plus the
//! raw cost of the trace buffer itself.

use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use trod_apps::shop;
use trod_db::StorageProfile;
use trod_runtime::Runtime;
use trod_trace::Tracer;

fn runtime_with(profile: StorageProfile, tracing: bool) -> Runtime {
    let db = shop::shop_db_with_profile(profile);
    shop::seed_inventory(&db, 64, i64::MAX / 2);
    let runtime = Runtime::new(db, shop::registry());
    runtime.tracer().set_enabled(tracing);
    runtime
}

fn bench_request_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracing_overhead/checkout_request");
    let profiles = [
        ("in_memory", StorageProfile::InMemory),
        ("on_disk", StorageProfile::on_disk_default()),
    ];
    for (profile_name, profile) in profiles {
        for (mode, tracing) in [("untraced", false), ("traced", true)] {
            let runtime = runtime_with(profile, tracing);
            let counter = AtomicU64::new(0);
            group.bench_function(BenchmarkId::new(profile_name, mode), |b| {
                b.iter(|| {
                    let n = counter.fetch_add(1, Ordering::Relaxed);
                    let order = format!("order-{profile_name}-{mode}-{n}");
                    let result = runtime.handle_request(
                        "checkout",
                        shop::checkout_args(&order, "bench-user", &format!("item-{}", n % 64), 1),
                    );
                    assert!(result.is_ok(), "{:?}", result.output);
                    result.duration_micros
                });
            });
            // Keep the trace buffer from growing without bound between
            // criterion samples.
            runtime.tracer().drain();
        }
    }
    group.finish();
}

fn bench_buffer_only(c: &mut Criterion) {
    // The paper's "<100 µs per request" claim is about the tracing work
    // itself; measure the cost of recording one handler-start/handler-end
    // pair plus one transaction-sized event batch.
    let tracer = Tracer::new();
    let mut group = c.benchmark_group("tracing_overhead/buffer_append");
    group.bench_function("handler_span", |b| {
        b.iter(|| {
            tracer.handler_start("R1", "checkout", None, "order=1|item=3");
            tracer.handler_end("R1", "checkout", "ok", true);
        });
    });
    group.finish();
    tracer.drain();
}

criterion_group!(benches, bench_request_latency, bench_buffer_only);
criterion_main!(benches);
