//! Read-scaling benchmark: lock-free serializable readers (SSI) vs the
//! 2PL read-locking baseline on a 90/10 read/write workload over hot
//! shared tables.
//!
//! Each `hot_reads` benchmark runs T threads; every transaction performs
//! nine point reads against two *shared* hot tables (the 90%) and one
//! update against the thread's *private* table (the 10%), all at
//! serializable isolation. The storage profile charges every commit a
//! simulated 500 µs fsync, slept off-CPU (reads are free — the workload
//! measures commit-path contention, not buffer-pool latency):
//!
//! * under `read_lock` (`set_read_lock_commit(true)`) every commit locks
//!   the hot tables it read, so the fsync sleeps serialize on the shared
//!   read locks and throughput stays flat as threads are added;
//! * under `ssi` (the default) reads take no commit locks — they are
//!   validated inside the publication window instead — so commits on
//!   disjoint private tables overlap their fsyncs and throughput scales
//!   with the thread count even on one core.
//!
//! Acceptance bars (PR 7): SSI at 8 threads ≥ 5× SSI at 1 thread, and
//! ≥ 3× the read-locking baseline at 8 threads. The hot tables are never
//! written during a round, so SSI validation never aborts — the
//! benchmark isolates the locking cost, not the abort rate.

use std::sync::Barrier;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use trod_db::{row, DataType, Database, Key, Schema, StorageProfile};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const COMMITS_PER_THREAD: usize = 16;
const HOT_TABLES: usize = 2;
const HOT_ROWS: i64 = 64;
const READS_PER_TXN: usize = 9;

fn schema() -> Schema {
    Schema::builder()
        .column("id", DataType::Int)
        .column("val", DataType::Int)
        .primary_key(&["id"])
        .build()
        .unwrap()
}

fn hot_name(h: usize) -> String {
    format!("hot_{h}")
}

fn private_name(t: usize) -> String {
    format!("private_{t}")
}

/// A database with `HOT_TABLES` shared hot tables and one private table
/// per thread. Reads cost nothing; commits sleep a simulated 500 µs
/// fsync off-CPU, which is what lets disjoint commits overlap on a
/// single core — the regime the paper's Postgres-backed deployments
/// live in.
fn bench_db(threads: usize) -> Database {
    let db = Database::with_profile(StorageProfile::OnDisk {
        read_micros: 0,
        commit_micros: 500,
    });
    for h in 0..HOT_TABLES {
        let name = hot_name(h);
        db.create_table(&name, schema()).unwrap();
        let mut txn = db.begin();
        for i in 0..HOT_ROWS {
            txn.insert(&name, row![i, i]).unwrap();
        }
        txn.commit().unwrap();
    }
    for t in 0..threads {
        let name = private_name(t);
        db.create_table(&name, schema()).unwrap();
        let mut txn = db.begin();
        txn.insert(&name, row![0i64, 0i64]).unwrap();
        txn.commit().unwrap();
    }
    db
}

/// One round: `threads` threads, each committing `COMMITS_PER_THREAD`
/// serializable transactions of nine hot-table point reads and one
/// private-table update.
fn run_round(db: &Database, threads: usize) {
    let barrier = Barrier::new(threads);
    let barrier = &barrier;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let db = db.clone();
            scope.spawn(move || {
                let private = private_name(t);
                barrier.wait();
                for i in 0..COMMITS_PER_THREAD {
                    loop {
                        let mut txn = db.begin();
                        for r in 0..READS_PER_TXN {
                            let table = hot_name(r % HOT_TABLES);
                            let id = ((t * 31 + i * 7 + r) as i64) % HOT_ROWS;
                            let hit = txn.get(&table, &Key::single(id)).unwrap();
                            assert!(hit.is_some());
                        }
                        txn.update(&private, &Key::single(0i64), row![0i64, i as i64])
                            .unwrap();
                        match txn.commit() {
                            Ok(_) => break,
                            Err(e) if e.is_retryable() => continue,
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                }
            });
        }
    });
    // Trim the version history the round accumulated so every measured
    // round sees the same table shape.
    db.gc_before(db.current_ts());
}

fn bench_hot_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_scaling/hot_reads");
    group.sample_size(10);
    for &threads in &THREAD_COUNTS {
        let db = bench_db(threads);
        for (mode, read_lock) in [("ssi", false), ("read_lock", true)] {
            db.set_read_lock_commit(read_lock);
            group.throughput(Throughput::Elements((threads * COMMITS_PER_THREAD) as u64));
            group.bench_function(BenchmarkId::new(mode, format!("threads_{threads}")), |b| {
                b.iter(|| run_round(&db, threads))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_hot_reads);
criterion_main!(benches);
