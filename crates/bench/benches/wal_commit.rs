//! Durable commit benchmark: group commit vs the serial-fsync baseline,
//! across sync modes and thread counts, plus recovery time vs log size.
//!
//! The PR 6 tentpole claims one specific win: with the WAL attached, the
//! coordinator appends each aligned log entry inside the publication
//! window but defers the fsync past the commit locks, so every commit
//! that lands in the same flush window shares ONE `fsync` — throughput
//! under concurrent committers scales with threads instead of
//! serializing behind the disk. The measurable contract (ISSUE 6): at 8
//! threads, `group/sync` sustains at least 4× the commit throughput of
//! `serial/sync` (the same WAL with group commit disabled, i.e. one
//! fsync per commit inside the window).
//!
//! Shapes, each at 1/2/4/8 threads against one shared WAL file:
//!
//! * `group/sync`   — group commit, `SyncMode::Sync` (fsync per group)
//! * `group/flush`  — group commit, write-through without fsync
//! * `group/cached` — buffered appends, spilled in 64 KiB chunks
//! * `serial/sync`  — group commit OFF: the baseline durability story,
//!   one fsync per commit, holding its position in the window
//!
//! The WAL lives under the workspace `target/` directory — NOT in
//! `/tmp`, which is commonly tmpfs and would turn `fsync` into a no-op
//! and the comparison into noise.
//!
//! `recovery/` benches `Database::open_durable` against pre-built logs
//! of increasing length: recovery cost must stay linear in log bytes.
//!
//! PR 9 additions: `group/sync/roll` measures the same 8-thread group
//! commit with a segment bound small enough to roll several times per
//! round (rotation overhead must hide inside the group-commit window),
//! and `recovery_segments/` recovers the SAME history split across
//! 1/4/16 segment files (per-commit recovery cost must stay within 2×
//! of single-segment).
//!
//! PR 10 addition: `recovery_checkpoint/` recovers the same 4096-commit
//! update-heavy history with and without an environment checkpoint at
//! its head — the checkpoint boot must come in ≥ 5× faster than full
//! replay.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use trod_db::{row, DataType, Database, Schema, SyncMode, WalOptions};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const COMMITS_PER_THREAD: usize = 64;

fn items_schema() -> Schema {
    Schema::builder()
        .column("id", DataType::Int)
        .column("val", DataType::Int)
        .primary_key(&["id"])
        .build()
        .unwrap()
}

/// A fresh WAL path under the workspace target dir (real filesystem).
fn wal_path(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/bench_wal");
    std::fs::create_dir_all(&dir).expect("create bench WAL dir");
    dir.join(format!(
        "{tag}_{}_{}.wal",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn wal_opts(mode: SyncMode, group: bool, segment_bytes: u64) -> WalOptions {
    WalOptions {
        sync_mode: mode,
        group_commit: group,
        segment_bytes,
        // Automatic checkpoints off: these benches measure the commit
        // and replay paths themselves; `recovery_checkpoint` below
        // forces its checkpoint explicitly.
        checkpoint_bytes: 0,
    }
}

fn durable_db(path: &std::path::Path, opts: WalOptions) -> Database {
    let db = Database::create_durable(path, opts).expect("create durable db");
    for t in 0..THREAD_COUNTS[THREAD_COUNTS.len() - 1] {
        db.create_table(format!("items_{t}"), items_schema())
            .unwrap();
    }
    db
}

/// Total log bytes of the directory layout (all segment + cold files).
fn log_bytes(path: &std::path::Path) -> u64 {
    std::fs::read_dir(path)
        .expect("log dir")
        .map(|e| e.unwrap().metadata().unwrap().len())
        .sum()
}

/// One round: `threads` threads, each committing `COMMITS_PER_THREAD`
/// single-row transactions against its own table — disjoint footprints,
/// so the only contention is the shared WAL.
fn run_round(db: &Database, threads: usize, round: usize) {
    let barrier = Barrier::new(threads);
    let barrier = &barrier;
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                let table = format!("items_{t}");
                barrier.wait();
                for i in 0..COMMITS_PER_THREAD {
                    let id = (round * COMMITS_PER_THREAD + i) as i64;
                    let mut txn = db.begin();
                    txn.insert(&table, row![id, i as i64]).unwrap();
                    txn.commit().unwrap();
                }
            });
        }
    });
}

fn bench_group_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_commit/throughput");
    // Real fsyncs: keep samples small, give each config a fixed budget.
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    for (mode_name, opts) in [
        ("group/sync", wal_opts(SyncMode::Sync, true, 0)),
        ("group/flush", wal_opts(SyncMode::Flush, true, 0)),
        ("group/cached", wal_opts(SyncMode::Cached, true, 0)),
        ("serial/sync", wal_opts(SyncMode::Sync, false, 0)),
        // Segment-roll overhead: a bound small enough that every round
        // rolls the active segment several times.
        ("group/sync/roll", wal_opts(SyncMode::Sync, true, 16 << 10)),
    ] {
        for &threads in &THREAD_COUNTS {
            let path = wal_path("throughput");
            let db = durable_db(&path, opts);
            let mut round = 0usize;
            group.throughput(Throughput::Elements((threads * COMMITS_PER_THREAD) as u64));
            group.bench_function(
                BenchmarkId::new(mode_name, format!("threads_{threads}")),
                |b| {
                    b.iter(|| {
                        round += 1;
                        run_round(&db, threads, round);
                    })
                },
            );
            drop(db);
            let _ = std::fs::remove_dir_all(&path);
        }
    }
    group.finish();
}

/// Builds a log of `commits` single-row transactions at the given
/// segment bound and returns its path.
fn build_log(tag: &str, commits: usize, segment_bytes: u64) -> std::path::PathBuf {
    let path = wal_path(tag);
    // Flush mode: write-through without fsync — fast to build, and the
    // rotation path (which seals on sync/flush boundaries) still runs.
    let db = durable_db(&path, wal_opts(SyncMode::Flush, true, segment_bytes));
    for i in 0..commits {
        let mut txn = db.begin();
        txn.insert("items_0", row![i as i64, i as i64]).unwrap();
        txn.commit().unwrap();
    }
    db.wal().unwrap().flush().unwrap();
    path
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_commit/recovery");
    group.sample_size(10);
    for commits in [256usize, 1024, 4096] {
        let path = build_log("recovery", commits, 0);
        group.throughput(Throughput::Bytes(log_bytes(&path)));
        group.bench_function(
            BenchmarkId::new("open_durable", format!("commits_{commits}")),
            |b| {
                b.iter(|| {
                    let (db, report) =
                        Database::open_durable(&path, WalOptions::default()).unwrap();
                    assert_eq!(report.commits, commits);
                    db
                })
            },
        );
        let _ = std::fs::remove_dir_all(&path);
    }
    group.finish();
}

/// Recovery of the SAME history split across 1, 4 and 16 segments: the
/// manifest walk and per-file validation must not blow up recovery cost
/// (acceptance bound: within 2× of single-segment per commit).
fn bench_recovery_segments(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_commit/recovery_segments");
    group.sample_size(10);
    const COMMITS: usize = 1024;

    // Size the bounds off the real single-segment byte count.
    let single = build_log("recseg_probe", COMMITS, 0);
    let total = log_bytes(&single);
    let _ = std::fs::remove_dir_all(&single);

    for target in [1u64, 4, 16] {
        let segment_bytes = if target == 1 { 0 } else { total / target };
        let path = build_log("recseg", COMMITS, segment_bytes);
        group.throughput(Throughput::Elements(COMMITS as u64));
        group.bench_function(
            BenchmarkId::new("open_durable", format!("segments_{target}")),
            |b| {
                b.iter(|| {
                    let (db, report) =
                        Database::open_durable(&path, WalOptions::default()).unwrap();
                    assert_eq!(report.commits, COMMITS);
                    db
                })
            },
        );
        let _ = std::fs::remove_dir_all(&path);
    }
    group.finish();
}

/// Builds a log of `commits` single-row transactions cycling over
/// `keys` primary keys (inserts, then updates) — live state stays at
/// `keys` rows while history grows, the shape that makes checkpoints
/// O(state) against replay's O(history).
fn build_update_log(
    tag: &str,
    commits: usize,
    keys: usize,
    segment_bytes: u64,
) -> std::path::PathBuf {
    let path = wal_path(tag);
    let db = durable_db(&path, wal_opts(SyncMode::Flush, true, segment_bytes));
    let mut handles = Vec::with_capacity(keys);
    for i in 0..commits {
        let mut txn = db.begin();
        if i < keys {
            handles.push(txn.insert("items_0", row![i as i64, i as i64]).unwrap());
        } else {
            let key = &handles[i % keys];
            txn.update("items_0", key, row![(i % keys) as i64, i as i64])
                .unwrap();
        }
        txn.commit().unwrap();
    }
    db.wal().unwrap().flush().unwrap();
    path
}

/// Recovery of the SAME 4096-commit history with and without an
/// environment checkpoint at its head (PR 10): a checkpoint boot
/// restores the snapshot and replays only the WAL tail after it —
/// O(state at the checkpoint) + O(delta since) instead of O(history).
/// The workload cycles 4096 commits over 512 keys, the update-heavy
/// shape long-lived environments converge to. The bar: `checkpoint`
/// ≥ 5× faster than `full_replay`.
fn bench_recovery_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_commit/recovery_checkpoint");
    group.sample_size(10);
    const COMMITS: usize = 4096;
    const KEYS: usize = 512;
    const SEGMENT_BYTES: u64 = 8 << 10;

    for (mode, with_checkpoint) in [("full_replay", false), ("checkpoint", true)] {
        let path = build_update_log("recovery_ckpt", COMMITS, KEYS, SEGMENT_BYTES);
        if with_checkpoint {
            // Force one checkpoint at the head of the history, exactly
            // what the automatic cadence would have done at its last
            // boundary.
            let (db, _) = Database::open_durable(&path, WalOptions::default()).unwrap();
            db.checkpoint()
                .expect("checkpoint write")
                .expect("checkpoint taken");
        }
        group.throughput(Throughput::Elements(COMMITS as u64));
        group.bench_function(BenchmarkId::new(mode, format!("commits_{COMMITS}")), |b| {
            b.iter(|| {
                let (db, report) = Database::open_durable(&path, WalOptions::default()).unwrap();
                if with_checkpoint {
                    assert!(report.checkpoint_ts.is_some(), "boot used the checkpoint");
                } else {
                    assert_eq!(report.commits, COMMITS);
                }
                db
            })
        });
        let _ = std::fs::remove_dir_all(&path);
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_group_commit,
    bench_recovery,
    bench_recovery_segments,
    bench_recovery_checkpoint
);
criterion_main!(benches);
