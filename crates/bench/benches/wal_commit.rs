//! Durable commit benchmark: group commit vs the serial-fsync baseline,
//! across sync modes and thread counts, plus recovery time vs log size.
//!
//! The PR 6 tentpole claims one specific win: with the WAL attached, the
//! coordinator appends each aligned log entry inside the publication
//! window but defers the fsync past the commit locks, so every commit
//! that lands in the same flush window shares ONE `fsync` — throughput
//! under concurrent committers scales with threads instead of
//! serializing behind the disk. The measurable contract (ISSUE 6): at 8
//! threads, `group/sync` sustains at least 4× the commit throughput of
//! `serial/sync` (the same WAL with group commit disabled, i.e. one
//! fsync per commit inside the window).
//!
//! Shapes, each at 1/2/4/8 threads against one shared WAL file:
//!
//! * `group/sync`   — group commit, `SyncMode::Sync` (fsync per group)
//! * `group/flush`  — group commit, write-through without fsync
//! * `group/cached` — buffered appends, spilled in 64 KiB chunks
//! * `serial/sync`  — group commit OFF: the baseline durability story,
//!   one fsync per commit, holding its position in the window
//!
//! The WAL lives under the workspace `target/` directory — NOT in
//! `/tmp`, which is commonly tmpfs and would turn `fsync` into a no-op
//! and the comparison into noise.
//!
//! `recovery/` benches `Database::open_durable` against pre-built logs
//! of increasing length: recovery cost must stay linear in log bytes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use trod_db::{row, DataType, Database, Schema, SyncMode, WalOptions};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const COMMITS_PER_THREAD: usize = 64;

fn items_schema() -> Schema {
    Schema::builder()
        .column("id", DataType::Int)
        .column("val", DataType::Int)
        .primary_key(&["id"])
        .build()
        .unwrap()
}

/// A fresh WAL path under the workspace target dir (real filesystem).
fn wal_path(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/bench_wal");
    std::fs::create_dir_all(&dir).expect("create bench WAL dir");
    dir.join(format!(
        "{tag}_{}_{}.wal",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn durable_db(path: &std::path::Path, mode: SyncMode, group: bool) -> Database {
    let db = Database::create_durable(
        path,
        WalOptions {
            sync_mode: mode,
            group_commit: group,
        },
    )
    .expect("create durable db");
    for t in 0..THREAD_COUNTS[THREAD_COUNTS.len() - 1] {
        db.create_table(format!("items_{t}"), items_schema())
            .unwrap();
    }
    db
}

/// One round: `threads` threads, each committing `COMMITS_PER_THREAD`
/// single-row transactions against its own table — disjoint footprints,
/// so the only contention is the shared WAL.
fn run_round(db: &Database, threads: usize, round: usize) {
    let barrier = Barrier::new(threads);
    let barrier = &barrier;
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                let table = format!("items_{t}");
                barrier.wait();
                for i in 0..COMMITS_PER_THREAD {
                    let id = (round * COMMITS_PER_THREAD + i) as i64;
                    let mut txn = db.begin();
                    txn.insert(&table, row![id, i as i64]).unwrap();
                    txn.commit().unwrap();
                }
            });
        }
    });
}

fn bench_group_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_commit/throughput");
    // Real fsyncs: keep samples small, give each config a fixed budget.
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    for (mode_name, mode, group_on) in [
        ("group/sync", SyncMode::Sync, true),
        ("group/flush", SyncMode::Flush, true),
        ("group/cached", SyncMode::Cached, true),
        ("serial/sync", SyncMode::Sync, false),
    ] {
        for &threads in &THREAD_COUNTS {
            let path = wal_path("throughput");
            let db = durable_db(&path, mode, group_on);
            let mut round = 0usize;
            group.throughput(Throughput::Elements((threads * COMMITS_PER_THREAD) as u64));
            group.bench_function(
                BenchmarkId::new(mode_name, format!("threads_{threads}")),
                |b| {
                    b.iter(|| {
                        round += 1;
                        run_round(&db, threads, round);
                    })
                },
            );
            drop(db);
            let _ = std::fs::remove_file(&path);
        }
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_commit/recovery");
    group.sample_size(10);
    for commits in [256usize, 1024, 4096] {
        let path = wal_path("recovery");
        {
            // Build the log once, quickly (no fsync needed for a file we
            // only read back).
            let db = durable_db(&path, SyncMode::Cached, true);
            for i in 0..commits {
                let mut txn = db.begin();
                txn.insert("items_0", row![i as i64, i as i64]).unwrap();
                txn.commit().unwrap();
            }
            db.wal().unwrap().flush().unwrap();
        }
        let bytes = std::fs::metadata(&path).unwrap().len();
        group.throughput(Throughput::Bytes(bytes));
        group.bench_function(
            BenchmarkId::new("open_durable", format!("commits_{commits}")),
            |b| {
                b.iter(|| {
                    let (db, report) =
                        Database::open_durable(&path, WalOptions::default()).unwrap();
                    assert_eq!(report.commits, commits);
                    db
                })
            },
        );
        let _ = std::fs::remove_file(&path);
    }
    group.finish();
}

criterion_group!(benches, bench_group_commit, bench_recovery);
criterion_main!(benches);
