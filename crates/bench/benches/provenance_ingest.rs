//! Experiment E5: provenance ingest throughput and privacy-operation cost.
//!
//! The paper's Tables 1–2 are populated by the always-on tracing pipeline:
//! trace events are flushed off the request path into the provenance
//! database. This benchmark measures (a) how fast the provenance store
//! ingests transaction traces (rows of Table 1 + Table 2 per second), and
//! (b) the cost of the §5 privacy operations — redacting one user's
//! provenance and applying a retention cutoff — as the store grows.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};

use trod_db::{ChangeRecord, Key, Row, Value};
use trod_provenance::ProvenanceStore;
use trod_trace::{ReadTrace, TraceEvent, TxnContext, TxnTrace};

fn forum_schema() -> trod_db::Schema {
    trod_db::Schema::builder()
        .column("sub_id", trod_db::DataType::Text)
        .column("user_id", trod_db::DataType::Text)
        .column("forum", trod_db::DataType::Text)
        .primary_key(&["sub_id"])
        .build()
        .expect("static schema")
}

fn fresh_store() -> ProvenanceStore {
    let store = ProvenanceStore::new();
    store
        .register_table_as("forum_sub", "ForumEvents", &forum_schema())
        .expect("fresh store");
    store
}

/// Builds `n` synthetic transaction traces (one read + one insert each).
fn synthetic_traces(n: usize) -> Vec<TraceEvent> {
    (0..n)
        .map(|i| {
            let user = format!("U{}", i % 500);
            let forum = format!("F{}", i % 50);
            TraceEvent::Txn(Box::new(TxnTrace {
                txn_id: i as u64 + 1,
                ctx: TxnContext::new(format!("R{i}"), "subscribeUser", "func:DB.insert"),
                timestamp: i as i64 + 1,
                snapshot_ts: i as u64,
                commit_ts: i as u64 + 1,
                committed: true,
                reads: vec![ReadTrace {
                    table: "forum_sub".into(),
                    query: format!("Check if ({user}, {forum}) exists"),
                    read_ts: i as u64,
                    rows: vec![],
                }],
                writes: vec![ChangeRecord::insert(
                    "forum_sub",
                    Key::single(format!("S{i}")),
                    Row::from(vec![
                        Value::Text(format!("S{i}")),
                        Value::Text(user),
                        Value::Text(forum),
                    ]),
                )],
            }))
        })
        .collect()
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("provenance_ingest/transactions");
    for &batch in &[100usize, 1_000, 10_000] {
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_function(BenchmarkId::from_parameter(batch), |b| {
            b.iter_batched(
                || (fresh_store(), synthetic_traces(batch)),
                |(store, events)| {
                    store.ingest(events);
                    assert_eq!(store.txn_count(), batch);
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_redaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("provenance_ingest/redact_one_user");
    group.sample_size(20);
    for &events in &[1_000usize, 10_000] {
        group.bench_function(BenchmarkId::from_parameter(events), |b| {
            b.iter_batched(
                || {
                    let store = fresh_store();
                    store.ingest(synthetic_traces(events));
                    store
                },
                |store| {
                    // U0 owns 1/500th of all events.
                    let report = store
                        .redact_rows("forum_sub", &[("user_id", Value::Text("U0".into()))])
                        .expect("redaction");
                    assert!(report.event_rows_redacted > 0);
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_retention(c: &mut Criterion) {
    let mut group = c.benchmark_group("provenance_ingest/retention_cutoff");
    group.sample_size(20);
    for &events in &[1_000usize, 10_000] {
        group.bench_function(BenchmarkId::from_parameter(events), |b| {
            b.iter_batched(
                || {
                    let store = fresh_store();
                    store.ingest(synthetic_traces(events));
                    store
                },
                |store| {
                    // Drop the oldest half of the history.
                    let report = store.retain_since(events as i64 / 2).expect("retention");
                    assert!(report.transactions_dropped > 0);
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_redaction, bench_retention);
criterion_main!(benches);
