//! Scan-path benchmark: planned (index-served) scans vs the full-scan
//! baseline, across selectivity × table size × latest-vs-time-travel.
//!
//! The claim under test (and the acceptance bar of the PR that introduced
//! the scan planner): a selective scan served by an ordered range index
//! or a hash multi-probe is *sublinear* in table size — its cost tracks
//! the number of matching rows, not the number of live rows — whereas the
//! full chain walk is O(live rows) regardless of selectivity. Each
//! benchmark runs the same predicate through `Database::scan_latest` /
//! `scan_as_of` (which plan an access path) and through
//! `TableStore::scan_at_full` (the planner-bypassing oracle), so the two
//! series are directly comparable per (size, selectivity) cell.
//!
//! The `events` table: `id` (pk), `ts` (range-indexed, equal to `id`),
//! `grp` (hash-indexed, 100 groups), `val` (payload).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use trod_db::{row, DataType, Database, Predicate, Schema, Ts, Value};

const TABLE_SIZES: [usize; 3] = [1_000, 10_000, 100_000];
/// Selectivities in tenths of a percent: 0.1%, 1%, 10%.
const SELECTIVITY_TENTHS: [usize; 3] = [1, 10, 100];

fn events_schema() -> Schema {
    Schema::builder()
        .column("id", DataType::Int)
        .column("ts", DataType::Int)
        .column("grp", DataType::Int)
        .column("val", DataType::Int)
        .primary_key(&["id"])
        .build()
        .unwrap()
}

/// Builds a database whose `events` table holds `size` rows, and returns
/// it with the publication timestamp of the *first half* of the load —
/// the time-travel point: reads there must resolve through version
/// history and index stamps, not just live rows.
fn populated_db(size: usize) -> (Database, Ts) {
    let db = Database::new();
    db.create_table("events", events_schema()).unwrap();
    db.create_range_index("events", "ts").unwrap();
    db.create_index("events", "grp").unwrap();
    let mut half_ts = 0;
    for chunk in (0..size)
        .collect::<Vec<_>>()
        .chunks(10_000.min(size.div_ceil(2)))
    {
        let mut txn = db.begin();
        for &i in chunk {
            txn.insert("events", row![i as i64, i as i64, (i % 100) as i64, 0i64])
                .unwrap();
        }
        txn.commit().unwrap();
        if half_ts == 0 && chunk.last().copied().unwrap_or(0) >= size / 2 - 1 {
            half_ts = db.current_ts();
        }
    }
    (db, half_ts)
}

/// `ts >= size - hits`: the top `hits` rows by timestamp.
fn range_pred(size: usize, tenths: usize) -> (Predicate, usize) {
    let hits = (size * tenths / 1000).max(1);
    (Predicate::ge("ts", (size - hits) as i64), hits)
}

fn bench_range_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_path/range_scan");
    for &size in &TABLE_SIZES {
        let (db, _) = populated_db(size);
        let table = db.table("events").unwrap();
        for &tenths in &SELECTIVITY_TENTHS {
            let (pred, hits) = range_pred(size, tenths);
            group.throughput(Throughput::Elements(hits as u64));
            group.bench_function(
                BenchmarkId::new(format!("planned/rows_{size}"), format!("sel_{tenths}e-3")),
                |b| {
                    b.iter(|| {
                        let rows = db.scan_latest("events", &pred).unwrap();
                        assert_eq!(rows.len(), hits);
                        rows
                    });
                },
            );
            group.bench_function(
                BenchmarkId::new(format!("full_scan/rows_{size}"), format!("sel_{tenths}e-3")),
                |b| {
                    b.iter(|| {
                        let rows = table.scan_at_full(&pred, db.current_ts()).unwrap();
                        assert_eq!(rows.len(), hits);
                        rows
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_time_travel_scan(c: &mut Criterion) {
    // A 1%-of-table window read AS OF the half-loaded timestamp: the
    // planner's candidates come from MVCC index stamps and are re-checked
    // against historical versions.
    let mut group = c.benchmark_group("scan_path/time_travel");
    for &size in &TABLE_SIZES {
        let (db, half_ts) = populated_db(size);
        let table = db.table("events").unwrap();
        let hits = (size / 100).max(1);
        // The newest rows visible at the half-way snapshot.
        let lo = size / 2 - hits;
        let pred = Predicate::ge("ts", lo as i64).and(Predicate::lt("ts", (size / 2) as i64));
        group.throughput(Throughput::Elements(hits as u64));
        group.bench_function(BenchmarkId::new("planned", size), |b| {
            b.iter(|| {
                let rows = db.scan_as_of("events", &pred, half_ts).unwrap();
                assert_eq!(rows.len(), hits);
                rows
            });
        });
        group.bench_function(BenchmarkId::new("full_scan", size), |b| {
            b.iter(|| {
                let rows = table.scan_at_full(&pred, half_ts).unwrap();
                assert_eq!(rows.len(), hits);
                rows
            });
        });
    }
    group.finish();
}

fn bench_in_list_scan(c: &mut Criterion) {
    // `grp IN (7, 42)` = 2% of the table via two hash probes.
    let mut group = c.benchmark_group("scan_path/in_list");
    for &size in &TABLE_SIZES {
        let (db, _) = populated_db(size);
        let table = db.table("events").unwrap();
        let pred = Predicate::in_list("grp", vec![Value::Int(7), Value::Int(42)]);
        let hits = 2 * (size / 100);
        group.throughput(Throughput::Elements(hits as u64));
        group.bench_function(BenchmarkId::new("planned", size), |b| {
            b.iter(|| {
                let rows = db.scan_latest("events", &pred).unwrap();
                assert_eq!(rows.len(), hits);
                rows
            });
        });
        group.bench_function(BenchmarkId::new("full_scan", size), |b| {
            b.iter(|| {
                let rows = table.scan_at_full(&pred, db.current_ts()).unwrap();
                assert_eq!(rows.len(), hits);
                rows
            });
        });
    }
    group.finish();
}

fn bench_declarative_pushdown(c: &mut Criterion) {
    // The same selective window through the SQL layer: WHERE lowering +
    // predicate pushdown must make the declarative path track the planned
    // scan, not the old scan-everything-then-filter shape.
    let mut group = c.benchmark_group("scan_path/declarative");
    let size = 100_000;
    let (db, _) = populated_db(size);
    let engine = trod_query::QueryEngine::new(db);
    let (pred, hits) = range_pred(size, 10);
    let sql = format!("SELECT id, val FROM events WHERE {pred}");
    group.throughput(Throughput::Elements(hits as u64));
    group.bench_function(BenchmarkId::new("where_pushdown", size), |b| {
        b.iter(|| {
            let result = engine.execute(&sql).unwrap();
            assert_eq!(result.len(), hits);
            result
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_range_scan,
    bench_time_travel_scan,
    bench_in_list_scan,
    bench_declarative_pushdown
);
criterion_main!(benches);
