//! Cross-store commit sharding benchmark: multi-threaded disjoint
//! commit throughput through the unified (participant-based) commit
//! coordinator, vs the single-global-lock baseline the pre-PR-3
//! cross-store manager used to hard-code.
//!
//! Two traffic shapes, each at 1/2/4/8 threads:
//!
//! * `kv_disjoint` — KV-only transactions, each thread writing its own
//!   namespace. Before PR 3 every such commit serialized on the
//!   cross-store manager's global mutex; now each commit takes only its
//!   `kv:<namespace>` shard lock.
//! * `mixed_disjoint` — transactions spanning one private table and one
//!   private namespace per thread: the paper's §5 polyglot shape. The
//!   footprint is `{table, kv:<ns>}`, locked in sorted order; disjoint
//!   footprints validate, install and publish concurrently.
//!
//! Profiles mirror `commit_sharding`: `in_memory` measures raw CPU cost,
//! `on_disk` charges each commit the latency model's simulated fsync
//! (slept off-CPU, after publication, with the footprint locks held) —
//! the regime where sharding pays: under the global lock the sleeps
//! serialize, under sharded locks they overlap. The PR 3 acceptance bar
//! is ≥3× scaling from 1→4 threads for disjoint traffic on `on_disk`.
//! `set_serial_commit(true)` restores the global-lock behaviour (it
//! covers participant commits too) as the measurable baseline.

use std::sync::Barrier;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use trod_db::{row, DataType, Database, Schema, StorageProfile};
use trod_kv::{KvStore, Session};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const COMMITS_PER_THREAD: usize = 32;

fn items_schema() -> Schema {
    Schema::builder()
        .column("id", DataType::Int)
        .column("val", DataType::Int)
        .primary_key(&["id"])
        .build()
        .unwrap()
}

fn session_with(threads: usize, profile: StorageProfile, serial: bool) -> Session {
    let db = Database::with_profile(profile);
    let kv = KvStore::new();
    for t in 0..threads {
        db.create_table(format!("items_{t}"), items_schema())
            .unwrap();
        kv.create_namespace(&format!("ns_{t}")).unwrap();
    }
    db.set_serial_commit(serial);
    Session::with_kv(db, kv)
}

/// One round: `threads` threads, each committing `COMMITS_PER_THREAD`
/// transactions against its own namespace (and, when `mixed`, its own
/// table too).
fn run_round(session: &Session, threads: usize, round: usize, mixed: bool) {
    let barrier = Barrier::new(threads);
    let barrier = &barrier;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let session = session.clone();
            scope.spawn(move || {
                let table = format!("items_{t}");
                let ns = format!("ns_{t}");
                barrier.wait();
                for i in 0..COMMITS_PER_THREAD {
                    let mut txn = session.begin();
                    if mixed {
                        let id = (round * COMMITS_PER_THREAD + i) as i64;
                        txn.insert(&table, row![id, i as i64]).unwrap();
                    }
                    txn.kv_put(&ns, &format!("k{}", i % 64), &i.to_string())
                        .unwrap();
                    txn.commit().unwrap();
                }
            });
        }
    });
}

fn bench_cross_commit(c: &mut Criterion) {
    for (shape, mixed) in [("kv_disjoint", false), ("mixed_disjoint", true)] {
        let mut group = c.benchmark_group(format!("cross_commit/{shape}"));
        for (profile_name, profile) in [
            ("in_memory", StorageProfile::InMemory),
            ("on_disk", StorageProfile::on_disk_default()),
        ] {
            for &threads in &THREAD_COUNTS {
                for (mode, serial) in [("sharded", false), ("global_lock", true)] {
                    let session = session_with(threads, profile, serial);
                    let mut round = 0usize;
                    group.throughput(Throughput::Elements((threads * COMMITS_PER_THREAD) as u64));
                    group.bench_function(
                        BenchmarkId::new(
                            format!("{profile_name}/{mode}"),
                            format!("threads_{threads}"),
                        ),
                        |b| {
                            b.iter(|| {
                                round += 1;
                                run_round(&session, threads, round, mixed);
                            })
                        },
                    );
                    // Trim accumulated version history between configs.
                    session
                        .database()
                        .gc_before(session.database().current_ts());
                    session.kv().gc_before(session.kv().current_ts());
                }
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_cross_commit);
criterion_main!(benches);
