//! Experiment E6 (paper §5, "Handling Multiple Data Stores"): the cost of
//! cross-data-store transactions and of tracing them.
//!
//! The ablation compares, for the same logical work (insert one order row
//! and update one session entry):
//!
//! * a relational-only transaction (baseline),
//! * a cross-store transaction spanning the relational and key-value
//!   stores (the aligned-commit protocol: validate, relational commit,
//!   key-value install, aligned-log append),
//! * the same cross-store transaction with TROD provenance tracing on.
//!
//! The expected shape mirrors §3.7: the cross-store protocol adds a modest
//! constant cost over the relational baseline, and always-on tracing adds
//! a small fraction on top of that.

use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, Criterion};

use trod_db::{row, DataType, Database, Schema};
use trod_kv::{KvStore, Session};
use trod_trace::{Tracer, TxnContext};

fn orders_db() -> Database {
    let db = Database::new();
    db.create_table(
        "orders",
        Schema::builder()
            .column("id", DataType::Int)
            .column("customer", DataType::Text)
            .column("item", DataType::Text)
            .primary_key(&["id"])
            .build()
            .expect("static schema"),
    )
    .expect("fresh database");
    db
}

fn sessions_kv() -> KvStore {
    let kv = KvStore::new();
    kv.create_namespace("sessions").expect("fresh namespace");
    kv
}

fn bench_cross_store_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("multistore/commit");

    // Baseline: relational-only transaction.
    {
        let db = orders_db();
        let counter = AtomicU64::new(0);
        group.bench_function("relational_only", |b| {
            b.iter(|| {
                let n = counter.fetch_add(1, Ordering::Relaxed) as i64;
                let mut txn = db.begin();
                txn.insert("orders", row![n, "bench", "widget"])
                    .expect("insert");
                txn.commit().expect("commit")
            });
        });
    }

    // Cross-store, untraced.
    {
        let cross = Session::with_kv(orders_db(), sessions_kv());
        let counter = AtomicU64::new(0);
        group.bench_function("cross_store", |b| {
            b.iter(|| {
                let n = counter.fetch_add(1, Ordering::Relaxed) as i64;
                let mut txn = cross.begin();
                txn.insert("orders", row![n, "bench", "widget"])
                    .expect("insert");
                txn.kv_put("sessions", &format!("cart:{}", n % 512), "checked-out")
                    .expect("put");
                txn.commit().expect("commit")
            });
        });
    }

    // Cross-store with TROD tracing.
    {
        let tracer = Tracer::new();
        let cross = Session::with_tracer(orders_db(), sessions_kv(), tracer.clone());
        let counter = AtomicU64::new(0);
        group.bench_function("cross_store_traced", |b| {
            b.iter(|| {
                let n = counter.fetch_add(1, Ordering::Relaxed) as i64;
                let mut txn =
                    cross.begin_traced(TxnContext::new(format!("R{n}"), "checkout", "func:bench"));
                txn.insert("orders", row![n, "bench", "widget"])
                    .expect("insert");
                txn.kv_put("sessions", &format!("cart:{}", n % 512), "checked-out")
                    .expect("put");
                txn.commit().expect("commit")
            });
            // Do not let the trace buffer grow unboundedly between samples.
            tracer.drain();
        });
    }

    group.finish();
}

fn bench_kv_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("multistore/kv_read");
    let cross = Session::with_kv(orders_db(), sessions_kv());
    // Pre-populate 10k session keys with several versions each.
    for round in 0..4 {
        let mut txn = cross.begin();
        for i in 0..10_000 {
            txn.kv_put("sessions", &format!("cart:{i}"), &format!("v{round}"))
                .expect("put");
        }
        txn.commit().expect("commit");
    }

    let counter = AtomicU64::new(0);
    group.bench_function("latest", |b| {
        b.iter(|| {
            let n = counter.fetch_add(1, Ordering::Relaxed) % 10_000;
            cross
                .kv()
                .get_latest("sessions", &format!("cart:{n}"))
                .expect("read")
        });
    });
    let snapshot = cross.kv().current_ts() / 2;
    group.bench_function("as_of_midpoint", |b| {
        b.iter(|| {
            let n = counter.fetch_add(1, Ordering::Relaxed) % 10_000;
            cross
                .kv()
                .get_as_of("sessions", &format!("cart:{n}"), snapshot)
                .expect("read")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_cross_store_commit, bench_kv_reads);
criterion_main!(benches);
