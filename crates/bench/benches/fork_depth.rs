//! Deep time-travel fork cost below the GC floor (PR 10).
//!
//! A fork below the truncation floor cannot materialise live MVCC state;
//! it reconstructs the environment from retained history. Without
//! environment checkpoints that is a full stitched replay of every
//! spilled aligned entry up to the fork timestamp — cost proportional to
//! the *absolute position* of the fork, so even a fork just below the
//! floor of a long history replays almost everything. With checkpoints,
//! `Trod::fork_at` restores the nearest durable checkpoint at or below
//! the timestamp and replays only the spilled delta after it — cost
//! bounded by the checkpoint cadence, however deep the fork.
//!
//! The workload: `HISTORY` single-row commits cycling over `KEYS`
//! primary keys (inserts, then updates — live state stays `KEYS` rows
//! while history grows), GC'd in `CHUNK`-commit steps so the checkpoint
//! retention ladder forms below the floor. Forks at depth 256 / 1024 /
//! 4096 below the floor run against two images of the SAME history, one
//! built with automatic checkpoints and one without.
//!
//! The PR 10 bar: `with_checkpoints` at depth 4096 is ≥ 5× faster than
//! `full_replay` at the same depth.

use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use trod_core::Trod;
use trod_db::{row, DataType, Database, Schema, SyncMode, WalOptions};
use trod_runtime::{HandlerRegistry, Runtime};

const HISTORY: i64 = 8192;
const KEYS: i64 = 512;
const CHUNK: i64 = 256;
const DEPTHS: [u64; 3] = [256, 1024, 4096];

fn events_schema() -> Schema {
    Schema::builder()
        .column("id", DataType::Int)
        .column("v", DataType::Int)
        .primary_key(&["id"])
        .build()
        .unwrap()
}

/// A fresh WAL directory under the workspace target dir.
fn wal_path(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/bench_wal");
    std::fs::create_dir_all(&dir).expect("create bench WAL dir");
    dir.join(format!(
        "{tag}_{}_{}.wal",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Builds a debugger over a durable environment with `HISTORY` commits
/// spilled below the GC floor, checkpointed at `checkpoint_bytes`
/// cadence (0 = the full-replay baseline). Returns the debugger and the
/// final truncation floor.
fn build_trod(tag: &str, checkpoint_bytes: u64) -> (Trod, std::path::PathBuf, u64) {
    let path = wal_path(tag);
    let opts = WalOptions {
        sync_mode: SyncMode::Cached,
        group_commit: true,
        segment_bytes: 8 << 10,
        checkpoint_bytes,
    };
    let db = Database::create_durable(&path, opts).expect("create durable db");
    db.create_table("events", events_schema()).unwrap();
    let runtime = Runtime::builder(db.clone(), HandlerRegistry::new()).build();
    let trod = Trod::attach(runtime).expect("fresh deployment");
    // Retention BEFORE the first GC: the spill must cover the history
    // from the first commit for below-floor forks to be answerable.
    trod.enable_retention();

    let mut keys = Vec::with_capacity(KEYS as usize);
    for i in 0..HISTORY {
        let mut txn = db.begin();
        if i < KEYS {
            keys.push(txn.insert("events", row![i, i]).unwrap());
        } else {
            let key = &keys[(i % KEYS) as usize];
            txn.update("events", key, row![i % KEYS, i]).unwrap();
        }
        txn.commit().unwrap();
        // GC in steps: each step raises the floor past the checkpoints
        // taken during the previous chunk, promoting them into the
        // below-floor ladder deep forks restore from.
        if (i + 1) % CHUNK == 0 {
            db.gc_before(db.current_ts());
        }
    }
    let floor = db.log_truncated_below();
    assert!(
        floor as i64 >= HISTORY - CHUNK,
        "history is below the floor"
    );
    if checkpoint_bytes > 0 {
        let stats = db.wal().unwrap().stats();
        assert!(
            stats.checkpoints > 2,
            "the below-floor ladder formed (got {} checkpoints)",
            stats.checkpoints
        );
    }
    (trod, path, floor)
}

fn bench_fork_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("fork_depth/below_floor");
    group.sample_size(10);
    for (mode, checkpoint_bytes) in [("full_replay", 0u64), ("with_checkpoints", 8 << 10)] {
        let (trod, path, floor) = build_trod("fork_depth", checkpoint_bytes);
        for depth in DEPTHS {
            let ts = floor - depth;
            group.bench_function(BenchmarkId::new(mode, format!("depth_{depth}")), |b| {
                b.iter(|| {
                    let session = trod.fork_at(ts).expect("below-floor fork");
                    // The fork is a real environment: its table holds the
                    // full key space as of `ts` (every key was inserted
                    // within the first KEYS commits). The dev clock, not
                    // `ts`, indexes its state: reconstruction allocates
                    // its own timestamps.
                    let dev = session.database();
                    let rows = dev
                        .table("events")
                        .unwrap()
                        .materialize_at(dev.current_ts())
                        .len() as i64;
                    assert_eq!(rows, KEYS);
                    session
                })
            });
        }
        drop(trod);
        let _ = std::fs::remove_dir_all(&path);
    }
    group.finish();
}

criterion_group!(benches, bench_fork_depth);
criterion_main!(benches);
