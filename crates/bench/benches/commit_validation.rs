//! Commit-path benchmark: serializable predicate validation cost.
//!
//! The claim under test (and the acceptance bar of the PR that introduced
//! the per-table change log): serializable commit validation is O(Δ) in
//! the writes committed since the transaction began — *flat* in table
//! size — whereas the original full-scan path is O(total versions). Each
//! benchmark runs one serializable transaction that performs a predicate
//! scan plus a small write set against tables of 1k / 10k / 100k rows,
//! with validation forced down either path.
//!
//! Also measured: the raw read path (zero-copy `Arc<Row>` scans) and
//! per-row predicate evaluation (compiled vs name-resolving), the other
//! two hot paths this PR touched.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use trod_db::{row, DataType, Database, Key, Predicate, Row, Schema};

const TABLE_SIZES: [usize; 3] = [1_000, 10_000, 100_000];
const WRITE_SET_SIZES: [usize; 2] = [1, 32];

fn items_schema() -> Schema {
    Schema::builder()
        .column("id", DataType::Int)
        .column("grp", DataType::Int)
        .column("val", DataType::Int)
        .primary_key(&["id"])
        .build()
        .unwrap()
}

/// Builds a database whose `items` table holds `size` rows.
fn populated_db(size: usize) -> Database {
    let db = Database::new();
    db.create_table("items", items_schema()).unwrap();
    // Index the scanned column so the in-transaction read is O(1) and the
    // measured cost is the commit path (validation + install), not the
    // scan itself.
    db.create_index("items", "grp").unwrap();
    // Load in chunks so the buffered write set stays reasonable.
    for chunk in (0..size).collect::<Vec<_>>().chunks(10_000) {
        let mut txn = db.begin();
        for &i in chunk {
            txn.insert("items", row![i as i64, (i % 100) as i64, 0i64])
                .unwrap();
        }
        txn.commit().unwrap();
    }
    db
}

/// One serializable transaction: a selective predicate scan (reads
/// nothing, but must be validated against phantoms) plus `write_set`
/// counter updates. This is the paper's "check then act" shape.
fn scan_then_write(db: &Database, write_set: usize, round: u64) {
    let mut txn = db.begin();
    // Predicate over a group that does not exist: the result set is empty,
    // so the transaction always commits — every iteration measures
    // validation cost, not conflict handling.
    let pred = Predicate::eq("grp", 1_000_000i64);
    let hits = txn.scan("items", &pred).unwrap();
    assert!(hits.is_empty());
    for w in 0..write_set {
        let key = Key::single(w as i64);
        txn.update(
            "items",
            &key,
            row![w as i64, (w % 100) as i64, round as i64],
        )
        .unwrap();
    }
    txn.commit().unwrap();
}

fn bench_commit_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit_validation/serializable_commit");
    for &size in &TABLE_SIZES {
        for &write_set in &WRITE_SET_SIZES {
            let db = populated_db(size);
            for (mode, full_scan) in [("changelog", false), ("full_scan", true)] {
                db.set_full_scan_validation(full_scan);
                let mut round = 0u64;
                group.bench_function(
                    BenchmarkId::new(format!("{mode}/rows_{size}"), format!("writes_{write_set}")),
                    |b| {
                        b.iter(|| {
                            round += 1;
                            scan_then_write(&db, write_set, round);
                        });
                    },
                );
                // Updates accumulate version history; trim it so the
                // full-scan mode of the next iteration measures the same
                // table shape rather than an ever-growing one.
                db.gc_before(db.current_ts());
            }
        }
    }
    group.finish();
}

fn bench_read_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit_validation/read_path");
    for &size in &TABLE_SIZES {
        let db = populated_db(size);
        group.throughput(Throughput::Elements(size as u64));
        group.bench_function(BenchmarkId::new("scan_latest_all", size), |b| {
            b.iter(|| {
                let rows = db.scan_latest("items", &Predicate::True).unwrap();
                assert_eq!(rows.len(), size);
                rows
            });
        });
    }
    let db = populated_db(10_000);
    group.throughput(Throughput::Elements(1));
    group.bench_function(BenchmarkId::new("get_latest_point", 10_000), |b| {
        let key = Key::single(4_567i64);
        b.iter(|| db.get_latest("items", &key).unwrap());
    });
    group.finish();
}

fn bench_predicate_eval(c: &mut Criterion) {
    let schema = items_schema();
    let rows: Vec<Row> = (0..1_000)
        .map(|i| row![i as i64, (i % 100) as i64, i as i64])
        .collect();
    let pred = Predicate::eq("grp", 7i64).and(Predicate::ge("val", 100i64));

    let mut group = c.benchmark_group("commit_validation/predicate_eval_1k_rows");
    group.throughput(Throughput::Elements(rows.len() as u64));
    group.bench_function("interpreted_name_lookup", |b| {
        b.iter(|| {
            rows.iter()
                .filter(|r| pred.matches(&schema, r).unwrap())
                .count()
        });
    });
    group.bench_function("compiled_ordinals", |b| {
        let compiled = pred.compile(&schema).unwrap();
        b.iter(|| rows.iter().filter(|r| compiled.matches(r)).count());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_commit_validation,
    bench_read_path,
    bench_predicate_eval
);
criterion_main!(benches);
