//! Experiment E4 (paper §3.6): cost of retroactive programming.
//!
//! Retroactive programming re-executes original requests under every
//! relevant interleaving. The number of orderings grows with the number of
//! *conflicting* requests, so the benchmark sweeps the count of conflicting
//! subscribe requests (all touching the same forum) and measures the cost
//! of a full conflict-aware exploration with the patched handler, plus the
//! cost of the ordering enumeration itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use trod_apps::moodle;
use trod_core::{ConflictGraph, Invariant, Trod};
use trod_db::IsolationLevel;
use trod_runtime::Runtime;

/// Builds a traced deployment with `conflicting` subscribe requests that
/// all target the same (user, forum) pair, and wraps it in a Trod handle.
fn traced_trod(conflicting: usize) -> (Trod, Vec<String>) {
    let db = moodle::moodle_db();
    let provenance = moodle::provenance_for(&db);
    let runtime = Runtime::builder(db, moodle::registry())
        .default_isolation(IsolationLevel::ReadCommitted)
        .request_prefix("GEN-")
        .build();
    let mut req_ids = Vec::new();
    for i in 0..conflicting {
        let req = format!("C{i}");
        runtime.handle_request_with_id(
            &req,
            "subscribeUser",
            moodle::subscribe_args(&format!("sub-{i}"), "U1", "F2"),
        );
        req_ids.push(req);
    }
    provenance.ingest(runtime.tracer().drain());
    (Trod::attach_with(runtime, provenance), req_ids)
}

fn bench_retroactive_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("retroactive/full_exploration");
    group.sample_size(10);
    for conflicting in [2usize, 3, 4] {
        let (trod, req_ids) = traced_trod(conflicting);
        let refs: Vec<&str> = req_ids.iter().map(String::as_str).collect();
        group.bench_function(BenchmarkId::from_parameter(conflicting), |b| {
            b.iter(|| {
                let report = trod
                    .retroactive(moodle::patched_registry())
                    .requests(&refs)
                    .max_orderings(24)
                    .invariant(Invariant::no_duplicates(
                        moodle::FORUM_SUB_TABLE,
                        &["user_id", "forum"],
                    ))
                    .run()
                    .expect("retroactive run succeeds");
                assert!(report.all_orderings_clean());
                report.orderings.len()
            });
        });
    }
    group.finish();
}

fn bench_ordering_enumeration(c: &mut Criterion) {
    // The enumeration itself, isolated from request re-execution.
    let mut group = c.benchmark_group("retroactive/ordering_enumeration");
    for conflicting in [4usize, 6, 8] {
        let (trod, req_ids) = traced_trod(conflicting);
        let txns: Vec<_> = req_ids
            .iter()
            .flat_map(|r| trod.provenance().txns_for_request(r))
            .collect();
        group.bench_function(BenchmarkId::from_parameter(conflicting), |b| {
            b.iter(|| {
                let graph = ConflictGraph::build(&req_ids, &txns);
                graph.enumerate_orderings(64).len()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_retroactive_exploration,
    bench_ordering_enumeration
);
criterion_main!(benches);
