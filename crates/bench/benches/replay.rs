//! Experiment E3 (paper §3.5): cost of faithful replay.
//!
//! The paper argues replay is cheap because TROD restores only the data
//! items the replayed transactions depend on rather than the whole
//! production database. This benchmark measures (a) replay latency as the
//! number of *dependencies* (concurrent transactions injected between the
//! replayed request's transactions) grows, and (b) replay latency as the
//! total database size grows while the dependency count stays fixed — the
//! expected shape is strong sensitivity to (a) and much weaker sensitivity
//! to (b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use trod_apps::moodle;
use trod_core::ReplaySession;
use trod_db::{Database, IsolationLevel};
use trod_provenance::ProvenanceStore;
use trod_runtime::{Args, Runtime};

/// Builds a traced Moodle deployment where request `TARGET` has
/// `dependencies` concurrent transactions committed between its two
/// transactions, on top of `base_rows` pre-existing subscriptions.
fn traced_deployment(base_rows: usize, dependencies: usize) -> (ProvenanceStore, Database, String) {
    let db = moodle::moodle_db();
    // Pre-populate unrelated subscriptions (database size axis).
    let mut seed = db.begin();
    for i in 0..base_rows {
        seed.insert(
            moodle::FORUM_SUB_TABLE,
            trod_db::row![
                format!("seed-{i}"),
                format!("U{}", i % 97),
                format!("F{}", i % 31)
            ],
        )
        .expect("seeding cannot conflict");
    }
    seed.commit().expect("seeding cannot conflict");

    let provenance = moodle::provenance_for(&db);
    // Script: TARGET runs its check first, then every OTHER-i request runs
    // to completion, then TARGET performs its insert — so exactly
    // `dependencies` concurrent transactions must be injected between
    // TARGET's two transactions during replay.
    let mut script = vec![
        trod_runtime::point_label("TARGET", "pre-check"),
        trod_runtime::point_label("TARGET", "post-check"),
    ];
    for i in 0..dependencies {
        let req = format!("OTHER-{i}");
        for point in ["pre-check", "post-check", "pre-insert", "post-insert"] {
            script.push(trod_runtime::point_label(&req, point));
        }
    }
    script.push(trod_runtime::point_label("TARGET", "pre-insert"));
    script.push(trod_runtime::point_label("TARGET", "post-insert"));
    let scheduler = std::sync::Arc::new(trod_runtime::Scheduler::scripted(script));
    let runtime = Runtime::builder(db, moodle::registry())
        .default_isolation(IsolationLevel::ReadCommitted)
        .scheduler(scheduler)
        .request_prefix("GEN-")
        .build();

    std::thread::scope(|scope| {
        let r = &runtime;
        scope.spawn(move || {
            r.handle_request_with_id(
                "TARGET",
                "subscribeUser",
                moodle::subscribe_args("sub-target", "U1", "F2"),
            )
        });
        scope.spawn(move || {
            for i in 0..dependencies {
                r.handle_request_with_id(
                    &format!("OTHER-{i}"),
                    "subscribeUser",
                    moodle::subscribe_args(&format!("sub-{i}"), &format!("U{}", i + 10), "F2"),
                );
            }
        });
    });
    // A fetch afterwards, for completeness.
    runtime.handle_request_with_id("FETCH", "fetchSubscribers", Args::new().with("forum", "F2"));

    provenance.ingest(runtime.tracer().drain());
    let production_db = runtime.database().clone();
    (provenance, production_db, "TARGET".to_string())
}

fn bench_replay_vs_dependencies(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay/vs_dependencies");
    group.sample_size(20);
    for deps in [1usize, 8, 32] {
        let (provenance, db, target) = traced_deployment(100, deps);
        group.bench_function(BenchmarkId::from_parameter(deps), |b| {
            b.iter(|| {
                let mut session = ReplaySession::for_request(&provenance, &db, &target)
                    .expect("target request is traced");
                let report = session.run_to_end().expect("replay succeeds");
                assert!(report.is_faithful());
                report.injected_count()
            });
        });
    }
    group.finish();
}

fn bench_replay_vs_database_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay/vs_database_size");
    group.sample_size(20);
    for rows in [100usize, 1_000, 10_000] {
        let (provenance, db, target) = traced_deployment(rows, 1);
        group.bench_function(BenchmarkId::from_parameter(rows), |b| {
            b.iter(|| {
                let mut session = ReplaySession::for_request(&provenance, &db, &target)
                    .expect("target request is traced");
                session.run_to_end().expect("replay succeeds").steps.len()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_replay_vs_dependencies,
    bench_replay_vs_database_size
);
criterion_main!(benches);
