//! Commit-path sharding benchmark: multi-threaded disjoint-table commit
//! throughput, sharded per-table commit locks vs the old global lock.
//!
//! Each `disjoint_commit` benchmark runs T threads, each committing
//! serializable scan-then-write transactions against its own private
//! table, under two protocols (the sharded default and
//! `set_serial_commit(true)`, which restores the single global commit
//! lock) and two storage profiles:
//!
//! * `in_memory` — commits cost ~2 µs of CPU; on a multi-core box the
//!   sharded path scales with cores, on a single-core box both modes are
//!   CPU-bound and flat (the lock is not the bottleneck either way);
//! * `on_disk` — every commit pays the latency model's simulated fsync
//!   (500 µs, slept off-CPU). Under the global lock those waits
//!   serialize; under sharded locks disjoint tables overlap them, so
//!   throughput scales with the thread count even on one core. This is
//!   the regime the paper's Postgres-backed deployments live in and the
//!   acceptance bar for PR 2 (≥ 2× the global-lock baseline at 4+
//!   threads).
//!
//! The `delete_path` group measures the write-path cost of eager
//! secondary-index maintenance on delete (PR 2 satellite): an
//! insert+delete commit pair against a table with and without an index.

use std::sync::Barrier;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use trod_db::{row, DataType, Database, Key, Predicate, Schema, StorageProfile};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const COMMITS_PER_THREAD: usize = 32;
const ROWS_PER_TABLE: usize = 1_000;

fn items_schema() -> Schema {
    Schema::builder()
        .column("id", DataType::Int)
        .column("grp", DataType::Int)
        .column("val", DataType::Int)
        .primary_key(&["id"])
        .build()
        .unwrap()
}

fn table_name(t: usize) -> String {
    format!("items_{t}")
}

/// A database with `tables` private tables of `ROWS_PER_TABLE` rows each,
/// `grp` indexed so the benchmarked scan is O(1) and the measured cost is
/// the commit path.
fn db_with_tables(tables: usize, profile: StorageProfile) -> Database {
    let db = Database::with_profile(profile);
    for t in 0..tables {
        let name = table_name(t);
        db.create_table(&name, items_schema()).unwrap();
        db.create_index(&name, "grp").unwrap();
        let mut txn = db.begin();
        for i in 0..ROWS_PER_TABLE {
            txn.insert(&name, row![i as i64, (i % 100) as i64, 0i64])
                .unwrap();
        }
        txn.commit().unwrap();
    }
    db
}

/// One round: `threads` threads, each running `COMMITS_PER_THREAD`
/// serializable transactions (an indexed predicate scan that must be
/// phantom-validated, plus one row update) against its own table.
fn run_round(db: &Database, threads: usize) {
    let barrier = Barrier::new(threads);
    let barrier = &barrier;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let db = db.clone();
            scope.spawn(move || {
                let table = table_name(t);
                let pred = Predicate::eq("grp", 1_000_000i64);
                barrier.wait();
                for i in 0..COMMITS_PER_THREAD {
                    let mut txn = db.begin();
                    let hits = txn.scan(&table, &pred).unwrap();
                    assert!(hits.is_empty());
                    let id = ((i * 17) % ROWS_PER_TABLE) as i64;
                    let key = Key::single(id);
                    txn.update(&table, &key, row![id, id % 100, i as i64])
                        .unwrap();
                    txn.commit().unwrap();
                }
            });
        }
    });
    // Trim the version history the round accumulated so every measured
    // round sees the same table shape.
    db.gc_before(db.current_ts());
}

fn bench_disjoint_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit_sharding/disjoint_commit");
    for (profile_name, profile) in [
        ("in_memory", StorageProfile::InMemory),
        ("on_disk", StorageProfile::on_disk_default()),
    ] {
        for &threads in &THREAD_COUNTS {
            let db = db_with_tables(threads, profile);
            for (mode, serial) in [("sharded", false), ("global_lock", true)] {
                db.set_serial_commit(serial);
                group.throughput(Throughput::Elements((threads * COMMITS_PER_THREAD) as u64));
                group.bench_function(
                    BenchmarkId::new(
                        format!("{profile_name}/{mode}"),
                        format!("threads_{threads}"),
                    ),
                    |b| b.iter(|| run_round(&db, threads)),
                );
            }
        }
    }
    group.finish();
}

fn bench_delete_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit_sharding/delete_path");
    for (name, indexed) in [("no_index", false), ("indexed", true)] {
        let db = Database::new();
        db.create_table("items", items_schema()).unwrap();
        if indexed {
            db.create_index("items", "grp").unwrap();
        }
        let mut txn = db.begin();
        for i in 0..ROWS_PER_TABLE {
            txn.insert("items", row![i as i64, (i % 100) as i64, 0i64])
                .unwrap();
        }
        txn.commit().unwrap();

        let mut round = 0i64;
        group.throughput(Throughput::Elements(2)); // one insert + one delete commit
        group.bench_function(BenchmarkId::new("insert_delete_pair", name), |b| {
            b.iter(|| {
                round += 1;
                let id = 1_000_000 + round;
                let mut ins = db.begin();
                ins.insert("items", row![id, id % 100, round]).unwrap();
                ins.commit().unwrap();
                let mut del = db.begin();
                del.delete("items", &Key::single(id)).unwrap();
                del.commit().unwrap();
            });
        });
        // Keep chains and tombstones from accumulating across samples.
        db.gc_before(db.current_ts());
    }
    group.finish();
}

criterion_group!(benches, bench_disjoint_commit, bench_delete_path);
criterion_main!(benches);
