//! Wire throughput of the HTTP/JSON-RPC front-end: point reads over N
//! concurrent keep-alive connections against a thread-per-connection
//! server (PR 8's tentpole).
//!
//! Every request is a `trod_get` of one seeded inventory row — the
//! cheapest useful call, so the measurement isolates the server stack
//! (accept → HTTP parse → dispatch → MVCC point read → serialize →
//! write) rather than handler execution. The pool of connections and
//! their worker threads persist across criterion iterations; a measured
//! round pays only for request/response cycles.
//!
//! Acceptance bar (PR 8): at ≥ 128 connections the server sustains
//! ≥ 10k requests/second. Reported as `elements_per_sec` under
//! `server_throughput/point_reads/conns_<N>`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use trod_apps::shop;
use trod_core::json::Json;
use trod_core::Trod;
use trod_runtime::Runtime;
use trod_server::{ServerBuilder, ServerHandle, WirePool};

const CONNECTION_COUNTS: [usize; 4] = [16, 64, 128, 512];
const ITEMS: usize = 256;
/// Requests per round, split across the pool — kept roughly constant so
/// every parameter point measures a similar amount of work.
const ROUND_REQUESTS: u64 = 4096;

fn serve() -> ServerHandle {
    let db = shop::shop_db();
    shop::seed_inventory(&db, ITEMS, 1_000_000);
    let runtime = Runtime::builder(db, shop::registry())
        .kv(shop::shop_kv())
        .build();
    let trod = Trod::attach(runtime).expect("attach");
    ServerBuilder::new(trod)
        // The bench measures the read path; no traced traffic arrives,
        // so the periodic provenance sync is pure noise.
        .sync_interval(None)
        .serve("127.0.0.1:0")
        .expect("bind")
}

fn bench_point_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_throughput");
    group.sample_size(10);
    for &conns in &CONNECTION_COUNTS {
        let server = serve();
        let gen: trod_server::RequestGen = Arc::new(move |worker, i| {
            let item = (worker as u64 * 131 + i * 7) % ITEMS as u64;
            (
                "trod_get".to_string(),
                Json::obj(vec![
                    ("table", Json::str("inventory")),
                    ("key", Json::Array(vec![Json::str(format!("item-{item}"))])),
                ]),
            )
        });
        let pool = WirePool::connect(&server.addr(), conns, gen).expect("pool");
        let per_conn = (ROUND_REQUESTS / conns as u64).max(1);

        group.throughput(Throughput::Elements(per_conn * conns as u64));
        group.bench_function(
            BenchmarkId::new("point_reads", format!("conns_{conns}")),
            |b| b.iter(|| pool.run_round(per_conn)),
        );

        assert_eq!(pool.error_count(), 0, "point reads must not fail");
        pool.close().expect("pool close");
        server.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_point_reads);
criterion_main!(benches);
