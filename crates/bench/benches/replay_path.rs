//! Polyglot replay and aligned-history retention benchmarks (PR 5).
//!
//! Three questions, all about the fork/replay spine:
//!
//! * `request_replay` — what does polyglot-complete replay cost compared
//!   to the old relational-only path? Both modes replay the same shop
//!   checkout workload; `polyglot` additionally forks the key-value
//!   store, verifies every traced kv read against it and re-applies every
//!   kv record through the participant commit path
//!   (`writes_skipped == 0`), while `relational_only` skip-counts them.
//! * `spilled_replay` — what does replaying a request whose history was
//!   garbage-collected cost? The environment cannot be forked from live
//!   state; it is reconstructed by replaying spilled + live aligned
//!   entries into an empty fork.
//! * `retention_spill` — what does the spill hook itself add to
//!   `gc_before`? `drop` truncates the log outright; `spill` hands every
//!   truncated entry to a provenance-store retention policy first.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use trod_apps::shop;
use trod_core::Trod;
use trod_db::{row, DataType, Database, Schema};
use trod_provenance::ProvenanceStore;
use trod_runtime::{Args, Runtime};

const REQUESTS: usize = 48;
const TARGET: &str = "REQ-24";

/// A traced shop deployment that served `REQUESTS` addToCart + checkout
/// request pairs — polyglot (cart sessions in the kv store) when
/// `with_kv`.
fn shop_trod(with_kv: bool) -> Trod {
    let db = shop::shop_db();
    shop::seed_inventory(&db, 8, 1_000_000);
    let mut builder = Runtime::builder(db, shop::registry());
    if with_kv {
        builder = builder.kv(shop::shop_kv());
    }
    let trod = Trod::attach(builder.build()).expect("fresh deployment");
    for i in 0..REQUESTS {
        let customer = format!("c{i}");
        trod.runtime().handle_request_with_id(
            &format!("CART-{i}"),
            "addToCart",
            Args::new()
                .with("customer", customer.as_str())
                .with("item", "item-1"),
        );
        trod.runtime().handle_request_with_id(
            &format!("REQ-{i}"),
            "checkout",
            shop::checkout_args(&format!("O{i}"), &customer, "item-1", 1),
        );
    }
    trod.sync();
    trod
}

fn bench_request_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_path/request_replay");
    group.sample_size(20);
    for (mode, with_kv) in [("relational_only", false), ("polyglot", true)] {
        let trod = shop_trod(with_kv);
        group.bench_function(BenchmarkId::from_parameter(mode), |b| {
            b.iter(|| {
                let mut session = trod.replay(TARGET).expect("target request is traced");
                let report = session.run_to_end().expect("replay succeeds");
                assert!(report.is_faithful());
                if with_kv {
                    assert_eq!(report.writes_skipped(), 0, "polyglot replay skips nothing");
                }
                report.steps.len()
            });
        });
    }
    group.finish();
}

fn bench_spilled_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_path/spilled_replay");
    group.sample_size(20);
    // Live baseline: same deployment, fork served from live state.
    let live = shop_trod(true);
    group.bench_function(BenchmarkId::from_parameter("live_fork"), |b| {
        b.iter(|| {
            let mut session = live.replay(TARGET).expect("target request is traced");
            session.run_to_end().expect("replay succeeds").steps.len()
        });
    });
    // Spilled: everything below the watermark truncated; the environment
    // is reconstructed from the retention spill on every replay.
    let spilled = shop_trod(true);
    spilled.enable_retention();
    let db = spilled.production_db();
    db.gc_before(db.current_ts());
    assert!(spilled.provenance().spilled_count() > 0);
    group.bench_function(BenchmarkId::from_parameter("spilled_reconstruction"), |b| {
        b.iter(|| {
            let mut session = spilled.replay(TARGET).expect("spilled history covers it");
            let report = session.run_to_end().expect("replay succeeds");
            assert!(report.is_faithful());
            report.steps.len()
        });
    });
    group.finish();
}

fn bench_retention_spill(c: &mut Criterion) {
    const COMMITS: i64 = 256;
    let schema = Schema::builder()
        .column("id", DataType::Int)
        .column("v", DataType::Int)
        .primary_key(&["id"])
        .build()
        .expect("static schema");
    let populated = || {
        let db = Database::new();
        db.create_table("t", schema.clone()).expect("fresh db");
        for i in 0..COMMITS {
            let mut txn = db.begin();
            txn.insert("t", row![i, i]).expect("unique keys");
            txn.commit().expect("no contention");
        }
        db
    };

    let mut group = c.benchmark_group("replay_path/retention_spill");
    group.sample_size(20);
    for (mode, spill) in [("drop", false), ("spill", true)] {
        group.bench_function(BenchmarkId::from_parameter(mode), |b| {
            b.iter_batched(
                || {
                    let db = populated();
                    if spill {
                        db.set_retention_policy(Some(Arc::new(ProvenanceStore::new())));
                    }
                    db
                },
                |db| db.gc_before(db.current_ts()),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_request_replay,
    bench_spilled_replay,
    bench_retention_spill
);
criterion_main!(benches);
