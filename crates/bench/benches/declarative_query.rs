//! Experiment E2 (paper §3.7): declarative debugging query latency as the
//! provenance database grows.
//!
//! The paper runs its debugging queries "over billions of events" in under
//! five seconds on a warehouse-scale store. This laptop-scale reproduction
//! sweeps the provenance size from 1 000 to 100 000 data events and runs
//! the paper's §3.3 query (join of Executions and ForumEvents filtered to
//! one user/forum) at each size; the expected shape is latency roughly
//! linear in the number of events and far below the 5-second budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use trod_db::{ChangeRecord, Key, Row, Value};
use trod_provenance::ProvenanceStore;
use trod_trace::{ReadTrace, TraceEvent, TxnContext, TxnTrace};

/// Builds a provenance store holding `events` synthetic ForumEvents rows
/// (half reads, half inserts) across `events / 2` transactions.
fn provenance_with_events(events: usize) -> ProvenanceStore {
    let schema = trod_db::Schema::builder()
        .column("sub_id", trod_db::DataType::Text)
        .column("user_id", trod_db::DataType::Text)
        .column("forum", trod_db::DataType::Text)
        .primary_key(&["sub_id"])
        .build()
        .expect("static schema");
    let store = ProvenanceStore::new();
    store
        .register_table_as("forum_sub", "ForumEvents", &schema)
        .expect("fresh store");

    let txns = events / 2;
    for i in 0..txns {
        let user = format!("U{}", i % 500);
        let forum = format!("F{}", i % 50);
        let row = Row::from(vec![
            Value::Text(format!("S{i}")),
            Value::Text(user.clone()),
            Value::Text(forum.clone()),
        ]);
        let trace = TxnTrace {
            txn_id: i as u64 + 1,
            ctx: TxnContext::new(format!("R{i}"), "subscribeUser", "func:DB.insert"),
            timestamp: i as i64 + 1,
            snapshot_ts: i as u64,
            commit_ts: i as u64 + 1,
            committed: true,
            reads: vec![ReadTrace {
                table: "forum_sub".into(),
                query: format!("Check if ({user}, {forum}) exists"),
                read_ts: i as u64,
                rows: vec![],
            }],
            writes: vec![ChangeRecord::insert(
                "forum_sub",
                Key::single(format!("S{i}")),
                row,
            )],
        };
        store.ingest_event(TraceEvent::Txn(Box::new(trace)));
    }
    store
}

fn bench_declarative_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("declarative_query/paper_q1");
    group.sample_size(20);
    for events in [1_000usize, 10_000, 100_000] {
        let store = provenance_with_events(events);
        let sql = "SELECT Timestamp, ReqId, HandlerName \
                   FROM Executions as E, ForumEvents as F ON E.TxnId = F.TxnId \
                   WHERE F.user_id = 'U1' AND F.forum = 'F1' AND F.Type = 'Insert' \
                   ORDER BY Timestamp ASC";
        group.throughput(Throughput::Elements(events as u64));
        group.bench_function(BenchmarkId::from_parameter(events), |b| {
            b.iter(|| {
                let result = store.query(sql).expect("query runs");
                assert!(!result.is_empty());
                result.len()
            });
        });
    }
    group.finish();
}

fn bench_aggregation_query(c: &mut Criterion) {
    // A second common debugging query: per-handler activity ranking.
    let store = provenance_with_events(50_000);
    let mut group = c.benchmark_group("declarative_query/handler_activity");
    group.sample_size(20);
    group.bench_function("group_by_50k_events", |b| {
        b.iter(|| {
            store
                .query(
                    "SELECT HandlerName, COUNT(*) AS n FROM Executions \
                     GROUP BY HandlerName ORDER BY n DESC",
                )
                .expect("query runs")
                .len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_declarative_query, bench_aggregation_query);
criterion_main!(benches);
