//! Application-level invariants used to judge retroactive re-executions.
//!
//! Retroactive programming answers "does the patch actually fix the bug,
//! under every relevant interleaving?" To answer it mechanically, callers
//! attach invariants — predicates over the final database state — to a
//! retroactive run. This module ships the invariants the paper's case
//! studies need (no duplicate rows over a column set, exact row counts)
//! plus a composable [`Invariant`] type for custom checks.

use std::collections::HashMap;
use std::sync::Arc;

use trod_db::{Database, Predicate, Value};

/// The boxed check function an [`Invariant`] runs against a database.
pub type InvariantCheck = Arc<dyn Fn(&Database) -> Vec<String> + Send + Sync>;

/// A named predicate over a database state. Returns a list of
/// human-readable violation descriptions (empty = invariant holds).
#[derive(Clone)]
pub struct Invariant {
    name: String,
    check: InvariantCheck,
}

impl Invariant {
    /// Creates an invariant from a closure.
    pub fn new<F>(name: impl Into<String>, check: F) -> Self
    where
        F: Fn(&Database) -> Vec<String> + Send + Sync + 'static,
    {
        Invariant {
            name: name.into(),
            check: Arc::new(check),
        }
    }

    /// The invariant's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Evaluates the invariant.
    pub fn check(&self, db: &Database) -> Vec<String> {
        (self.check)(db)
            .into_iter()
            .map(|v| format!("[{}] {v}", self.name))
            .collect()
    }

    /// No two live rows of `table` may share the same values in `columns`
    /// (logical uniqueness — the invariant MDL-59854 and MW-44325 break).
    pub fn no_duplicates(table: &str, columns: &[&str]) -> Self {
        let table = table.to_string();
        let columns: Vec<String> = columns.iter().map(|c| c.to_string()).collect();
        Invariant::new(format!("no-duplicates({table})"), move |db| {
            let schema = match db.schema_of(&table) {
                Ok(s) => s,
                Err(e) => return vec![format!("cannot check `{table}`: {e}")],
            };
            let indices: Vec<usize> = match columns
                .iter()
                .map(|c| schema.column_index(c))
                .collect::<Option<Vec<_>>>()
            {
                Some(idx) => idx,
                None => return vec![format!("unknown column in {columns:?} for `{table}`")],
            };
            let rows = match db.scan_latest(&table, &Predicate::True) {
                Ok(rows) => rows,
                Err(e) => return vec![format!("cannot scan `{table}`: {e}")],
            };
            let mut groups: HashMap<Vec<Value>, usize> = HashMap::new();
            for (_, row) in &rows {
                let key: Vec<Value> = indices.iter().map(|&i| row[i].clone()).collect();
                *groups.entry(key).or_insert(0) += 1;
            }
            groups
                .into_iter()
                .filter(|(_, count)| *count > 1)
                .map(|(key, count)| {
                    let rendered: Vec<String> = key.iter().map(|v| v.to_string()).collect();
                    format!(
                        "{count} rows in `{table}` share ({}) = ({})",
                        columns.join(", "),
                        rendered.join(", ")
                    )
                })
                .collect()
        })
    }

    /// The number of live rows of `table` matching `pred` must equal
    /// `expected`.
    pub fn row_count(table: &str, pred: Predicate, expected: usize) -> Self {
        let table = table.to_string();
        Invariant::new(format!("row-count({table})"), move |db| {
            match db.scan_latest(&table, &pred) {
                Ok(rows) if rows.len() == expected => Vec::new(),
                Ok(rows) => vec![format!(
                    "expected {expected} rows matching [{pred}] in `{table}`, found {}",
                    rows.len()
                )],
                Err(e) => vec![format!("cannot scan `{table}`: {e}")],
            }
        })
    }

    /// Every live row of `table` must satisfy `pred`.
    pub fn all_rows_match(table: &str, pred: Predicate) -> Self {
        let table = table.to_string();
        Invariant::new(format!("all-rows-match({table})"), move |db| {
            let schema = match db.schema_of(&table) {
                Ok(s) => s,
                Err(e) => return vec![format!("cannot check `{table}`: {e}")],
            };
            let rows = match db.scan_latest(&table, &Predicate::True) {
                Ok(rows) => rows,
                Err(e) => return vec![format!("cannot scan `{table}`: {e}")],
            };
            rows.iter()
                .filter_map(|(key, row)| match pred.matches(&schema, row) {
                    Ok(true) => None,
                    Ok(false) => Some(format!("row {key} = {row} violates [{pred}]")),
                    Err(e) => Some(format!("cannot evaluate [{pred}] on {key}: {e}")),
                })
                .collect()
        })
    }
}

impl std::fmt::Debug for Invariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Invariant")
            .field("name", &self.name)
            .finish()
    }
}

/// Evaluates a set of invariants, concatenating their violations.
pub fn check_all(db: &Database, invariants: &[Invariant]) -> Vec<String> {
    invariants.iter().flat_map(|i| i.check(db)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trod_db::{row, DataType, Schema};

    fn subs_db() -> Database {
        let db = Database::new();
        db.create_table(
            "forum_sub",
            Schema::builder()
                .column("id", DataType::Int)
                .column("user_id", DataType::Text)
                .column("forum", DataType::Text)
                .primary_key(&["id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn no_duplicates_detects_logical_duplicates() {
        let db = subs_db();
        let inv = Invariant::no_duplicates("forum_sub", &["user_id", "forum"]);
        assert!(inv.check(&db).is_empty());

        let mut txn = db.begin();
        txn.insert("forum_sub", row![1i64, "U1", "F2"]).unwrap();
        txn.insert("forum_sub", row![2i64, "U1", "F2"]).unwrap();
        txn.insert("forum_sub", row![3i64, "U2", "F2"]).unwrap();
        txn.commit().unwrap();

        let violations = inv.check(&db);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("U1"));
        assert!(violations[0].contains("no-duplicates"));
    }

    #[test]
    fn row_count_and_all_rows_match() {
        let db = subs_db();
        let mut txn = db.begin();
        txn.insert("forum_sub", row![1i64, "U1", "F1"]).unwrap();
        txn.commit().unwrap();

        assert!(Invariant::row_count("forum_sub", Predicate::True, 1)
            .check(&db)
            .is_empty());
        assert_eq!(
            Invariant::row_count("forum_sub", Predicate::True, 3)
                .check(&db)
                .len(),
            1
        );
        assert!(
            Invariant::all_rows_match("forum_sub", Predicate::eq("forum", "F1"))
                .check(&db)
                .is_empty()
        );
        assert_eq!(
            Invariant::all_rows_match("forum_sub", Predicate::eq("forum", "F9"))
                .check(&db)
                .len(),
            1
        );
    }

    #[test]
    fn check_all_concatenates_and_bad_configs_report_not_panic() {
        let db = subs_db();
        let invariants = vec![
            Invariant::no_duplicates("missing_table", &["a"]),
            Invariant::no_duplicates("forum_sub", &["not_a_column"]),
            Invariant::row_count("forum_sub", Predicate::True, 0),
        ];
        let violations = check_all(&db, &invariants);
        assert_eq!(violations.len(), 2);
    }
}
