//! Faithful bug replay (paper §3.5) over the whole polyglot environment.
//!
//! Replaying a past request means re-experiencing its execution in a
//! development environment: TROD forks the *session environment* — the
//! relational database and, when the application is polyglot, the
//! key-value store, both at the same point of the aligned history — from
//! the state the request's first transaction saw, then walks the
//! request's transactions in their original order. Before each
//! transaction it *injects* the state changes made by concurrently
//! committed transactions that the original execution observed (the
//! paper's "breakpoint before the beginning of each transaction"),
//! verifies that the development environment now shows exactly the rows
//! *and key-value entries* the original transaction read (fidelity), and
//! then applies the transaction's own recorded changes — `kv:<namespace>`
//! records re-applied through the same participant commit path live
//! commits take, so the development environment's aligned log mirrors
//! production's.
//!
//! **Forking below the GC watermark.** A fork materialises live state, so
//! it is only sound at or above the database's truncation floor
//! ([`trod_db::Database::log_truncated_below`]). When the request
//! predates the floor and the aligned history was spilled to the
//! provenance store by a retention policy
//! ([`trod_db::RetentionPolicy`]; see `Trod::enable_retention`), the
//! replay transparently reconstructs the environment instead: an empty
//! fork of both stores, brought to the snapshot timestamp by replaying
//! the stitched spilled + live aligned entries. Debugging reach is then
//! bounded by retention, not by GC pressure.
//!
//! The session exposes a [`ReplaySession::step`] API so a developer (or a
//! test acting as one) can stop between transactions, inspect the
//! development environment, and see precisely which concurrent requests
//! modified the data in between — which is how the Moodle duplication
//! becomes obvious (Figure 3, top).

use std::fmt;
use std::sync::Arc;

use trod_db::{Database, DbError, KvError, TrodError, Ts, TxnId};
use trod_kv::{KvStore, Session};
use trod_provenance::ProvenanceStore;
use trod_trace::TxnTrace;

/// Errors raised while preparing or running a replay.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The request id does not appear in the provenance database.
    UnknownRequest(String),
    /// The request has no traced transactions to replay.
    NoTransactions(String),
    /// The request's snapshot predates the GC truncation floor and no
    /// spilled aligned history covers it (no retention policy was
    /// installed, or it was installed after the history was truncated).
    HistoryTruncated { snapshot_ts: Ts, floor: Ts },
    /// An underlying relational storage error.
    Storage(DbError),
    /// An underlying key-value storage error.
    KeyValue(KvError),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::UnknownRequest(r) => write!(f, "no traced request with id `{r}`"),
            ReplayError::NoTransactions(r) => {
                write!(f, "request `{r}` has no traced transactions")
            }
            ReplayError::HistoryTruncated { snapshot_ts, floor } => write!(
                f,
                "cannot fork at ts {snapshot_ts}: history below ts {floor} was \
                 garbage-collected and no spilled aligned history covers it \
                 (enable a retention policy before truncating)"
            ),
            ReplayError::Storage(e) => write!(f, "storage error during replay: {e}"),
            ReplayError::KeyValue(e) => write!(f, "key-value error during replay: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<DbError> for ReplayError {
    fn from(e: DbError) -> Self {
        ReplayError::Storage(e)
    }
}

impl From<TrodError> for ReplayError {
    fn from(e: TrodError) -> Self {
        match e {
            TrodError::Relational(e) => ReplayError::Storage(e),
            TrodError::KeyValue(e) => ReplayError::KeyValue(e),
            TrodError::Storage(e) => ReplayError::Storage(DbError::Storage(e)),
        }
    }
}

/// A single replayed transaction with its injected dependencies.
#[derive(Debug, Clone)]
pub struct ReplayStep {
    /// The original transaction trace being replayed.
    pub txn: TxnTrace,
    /// Concurrently committed transactions (from *other* requests) whose
    /// changes must be injected before this transaction so the replayed
    /// execution sees the same state the original saw.
    pub injected: Vec<TxnTrace>,
    /// True if this step's transaction, or one of its injected
    /// dependencies, had provenance removed by a privacy-erasure request
    /// (paper §5): the replay proceeds on partial data and fidelity
    /// mismatches are expected rather than alarming.
    pub partial_data: bool,
}

/// The report produced by replaying one step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepReport {
    pub txn_id: TxnId,
    pub handler: String,
    pub function: String,
    /// (txn id, request id) pairs injected before this step — the answer
    /// to "who changed the database between my transactions?".
    pub injected: Vec<(TxnId, String)>,
    /// Reads the original transaction performed — relational rows and
    /// key-value entries alike — that were verified against the
    /// development environment.
    pub reads_checked: usize,
    /// Human-readable descriptions of any fidelity mismatches.
    pub mismatches: Vec<String>,
    /// Number of CDC records applied for the transaction itself.
    pub writes_applied: usize,
    /// CDC records (of this transaction or its injected dependencies)
    /// that could not be applied: row images erased by privacy redaction,
    /// or `kv:` records when the development environment has no key-value
    /// store (a relational-only replay of a polyglot trace). Zero for
    /// polyglot requests replayed in a full session environment.
    pub writes_skipped: usize,
    /// True if the step ran on provenance that was partially redacted
    /// (privacy erasure, §5); see [`ReplayStep::partial_data`].
    pub partial_data: bool,
}

impl StepReport {
    /// True if every checked read matched the original execution.
    pub fn is_faithful(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// The report for a whole replayed request.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    pub req_id: String,
    pub steps: Vec<StepReport>,
}

impl ReplayReport {
    /// True if every step was faithful.
    pub fn is_faithful(&self) -> bool {
        self.steps.iter().all(StepReport::is_faithful)
    }

    /// Total injected concurrent transactions across all steps.
    pub fn injected_count(&self) -> usize {
        self.steps.iter().map(|s| s.injected.len()).sum()
    }

    /// Total records skipped across all steps (zero for a faithful
    /// polyglot replay in a full environment).
    pub fn writes_skipped(&self) -> usize {
        self.steps.iter().map(|s| s.writes_skipped).sum()
    }

    /// True if any step ran on partially redacted provenance, in which
    /// case a non-faithful replay may be the expected consequence of a
    /// privacy-erasure request rather than a bug in the application.
    pub fn has_partial_data(&self) -> bool {
        self.steps.iter().any(|s| s.partial_data)
    }
}

/// An in-progress replay of one request.
pub struct ReplaySession {
    req_id: String,
    /// The forked development environment: relational database plus — for
    /// polyglot sessions — the key-value store, forked at one timestamp.
    dev: Session,
    steps: Vec<ReplayStep>,
    position: usize,
    reports: Vec<StepReport>,
}

impl ReplaySession {
    /// Prepares a replay of `req_id` against a relational-only
    /// development database forked from `production_db`. Key-value
    /// records in the trace are skipped and counted; use
    /// [`ReplaySession::for_session`] for polyglot-complete replay.
    pub fn for_request(
        provenance: &ProvenanceStore,
        production_db: &Database,
        req_id: &str,
    ) -> Result<Self, ReplayError> {
        ReplaySession::for_session(provenance, &Session::new(production_db.clone()), req_id)
    }

    /// Prepares a replay of `req_id`: forks the development environment —
    /// both stores of `production`, at the snapshot the request's first
    /// transaction saw — and computes, for each of the request's
    /// transactions, the concurrent transactions whose changes must be
    /// injected before it. When the snapshot predates the GC truncation
    /// floor, the environment is reconstructed from spilled + live
    /// aligned history instead (see the module docs).
    pub fn for_session(
        provenance: &ProvenanceStore,
        production: &Session,
        req_id: &str,
    ) -> Result<Self, ReplayError> {
        let known_requests = provenance.request_ids();
        let own_txns = provenance.txns_for_request(req_id);
        if own_txns.is_empty() {
            return if known_requests.iter().any(|r| r == req_id) {
                Err(ReplayError::NoTransactions(req_id.to_string()))
            } else {
                Err(ReplayError::UnknownRequest(req_id.to_string()))
            };
        }
        let committed: Vec<TxnTrace> = own_txns.into_iter().filter(|t| t.committed).collect();
        if committed.is_empty() {
            return Err(ReplayError::NoTransactions(req_id.to_string()));
        }

        let base_ts = committed.iter().map(|t| t.snapshot_ts).min().unwrap_or(0);
        // The development environment starts from the snapshot the
        // request began against. TROD only needs the data items the
        // replay touches; forking at a timestamp gives the same
        // observable behaviour with the simple in-memory engine.
        let dev = fork_environment(provenance, production, base_ts)?;

        let mut steps = Vec::with_capacity(committed.len());
        let mut watermark: Ts = base_ts;
        for txn in committed {
            // Under snapshot isolation and serializable every read was
            // served at the snapshot; under read committed a read can
            // observe commits up to its own recorded `read_ts`, so the
            // step's injection horizon is the latest point the
            // transaction actually observed (reenactment-style replay of
            // weak-isolation histories).
            let horizon = txn
                .reads
                .iter()
                .map(|r| r.read_ts)
                .fold(txn.snapshot_ts, Ts::max);
            let injected: Vec<TxnTrace> = provenance
                .txns_between(watermark, horizon)
                .into_iter()
                .filter(|other| other.ctx.req_id != req_id)
                .collect();
            watermark = watermark.max(horizon);
            let partial_data = provenance.is_redacted(txn.txn_id)
                || injected.iter().any(|t| provenance.is_redacted(t.txn_id));
            steps.push(ReplayStep {
                txn,
                injected,
                partial_data,
            });
        }

        Ok(ReplaySession {
            req_id: req_id.to_string(),
            dev,
            steps,
            position: 0,
            reports: Vec::new(),
        })
    }

    /// The request being replayed.
    pub fn req_id(&self) -> &str {
        &self.req_id
    }

    /// The development environment's relational database. Between steps a
    /// developer can inspect it freely (the programmatic stand-in for
    /// attaching GDB or a SQL shell during replay).
    pub fn dev_db(&self) -> &Database {
        self.dev.database()
    }

    /// The development environment's key-value store, when the replayed
    /// session is polyglot.
    pub fn dev_kv(&self) -> Option<&KvStore> {
        self.dev.kv_store()
    }

    /// The whole forked development environment.
    pub fn dev_session(&self) -> &Session {
        &self.dev
    }

    /// The planned steps (before execution).
    pub fn steps(&self) -> &[ReplayStep] {
        &self.steps
    }

    /// Number of steps already executed.
    pub fn position(&self) -> usize {
        self.position
    }

    /// True if every step has been executed.
    pub fn is_finished(&self) -> bool {
        self.position >= self.steps.len()
    }

    /// Executes the next step: injects concurrent changes, verifies the
    /// original read set (both stores) against the development
    /// environment, applies the transaction's own writes. Returns `None`
    /// when the replay is done.
    pub fn step(&mut self) -> Result<Option<StepReport>, ReplayError> {
        if self.is_finished() {
            return Ok(None);
        }
        let step = self.steps[self.position].clone();
        self.position += 1;

        // Interleave injection with the fidelity checks: before each read
        // is verified, apply the concurrent transactions that committed at
        // or below that read's recorded timestamp — no earlier (the read
        // could not have seen them removed/changed) and no later (the
        // read could not have seen them yet). Under snapshot isolation
        // and serializable every read_ts equals the snapshot and this
        // degenerates to "inject everything, then check", the original
        // behaviour; under read committed it reproduces exactly the
        // states the transaction's reads actually observed.
        let mut writes_skipped = 0usize;
        let mut injected = Vec::with_capacity(step.injected.len());
        let mut pending = step.injected.iter().peekable();
        let mut reads_checked = 0;
        let mut mismatches = Vec::new();
        for read in &step.txn.reads {
            while let Some(other) = pending.peek() {
                if other.commit_ts > read.read_ts {
                    break;
                }
                let other = pending.next().expect("peeked");
                writes_skipped +=
                    apply_tolerating_redaction(&self.dev, &other.writes, step.partial_data)?;
                injected.push((other.txn_id, other.ctx.req_id.clone()));
            }
            // Fidelity check: everything the original transaction read
            // must be present, with identical contents, in the
            // development environment. Key-value reads are verified
            // against the forked store; in a relational-only environment
            // they remain uncheckable and are left to `writes_skipped`
            // accounting.
            if let Some(namespace) = read.table.strip_prefix(trod_db::KV_TABLE_PREFIX) {
                let Some(kv) = self.dev.kv_store() else {
                    continue;
                };
                for (key, original_row) in &read.rows {
                    reads_checked += 1;
                    let Some(key_text) = trod_kv::kv_image_key(key) else {
                        mismatches.push(format!(
                            "{}: traced kv read has a non-text key {key}",
                            read.table
                        ));
                        continue;
                    };
                    let original_value = trod_kv::kv_image_value(original_row);
                    match kv.get_latest(namespace, key_text) {
                        Ok(Some(dev_value)) if Some(dev_value.as_str()) == original_value => {}
                        Ok(Some(dev_value)) => mismatches.push(format!(
                            "{}[{key_text}]: original read {} but development store has {dev_value}",
                            read.table,
                            original_value.unwrap_or("<non-text>"),
                        )),
                        Ok(None) => mismatches.push(format!(
                            "{}[{key_text}]: original read {} but key is missing in development store",
                            read.table,
                            original_value.unwrap_or("<non-text>"),
                        )),
                        Err(e) => mismatches.push(format!(
                            "{}[{key_text}]: cannot verify against development store: {e}",
                            read.table
                        )),
                    }
                }
                continue;
            }
            for (key, original_row) in &read.rows {
                reads_checked += 1;
                match self.dev_db().get_latest(&read.table, key)? {
                    Some(dev_row) if &dev_row == original_row => {}
                    Some(dev_row) => mismatches.push(format!(
                        "{}{}: original read {} but development database has {}",
                        read.table, key, original_row, dev_row
                    )),
                    None => mismatches.push(format!(
                        "{}{}: original read {} but row is missing in development database",
                        read.table, key, original_row
                    )),
                }
            }
        }
        // Inject whatever the transaction's reads never reached (e.g.
        // write-only transactions) so the development environment still
        // ends the step at the state the transaction committed against.
        for other in pending {
            writes_skipped +=
                apply_tolerating_redaction(&self.dev, &other.writes, step.partial_data)?;
            injected.push((other.txn_id, other.ctx.req_id.clone()));
        }

        let own_skipped =
            apply_tolerating_redaction(&self.dev, &step.txn.writes, step.partial_data)?;
        writes_skipped += own_skipped;

        let report = StepReport {
            txn_id: step.txn.txn_id,
            handler: step.txn.ctx.handler.clone(),
            function: step.txn.ctx.function.clone(),
            injected,
            reads_checked,
            mismatches,
            writes_applied: step.txn.writes.len() - own_skipped,
            writes_skipped,
            partial_data: step.partial_data,
        };
        self.reports.push(report.clone());
        Ok(Some(report))
    }

    /// Runs all remaining steps and returns the full report.
    pub fn run_to_end(&mut self) -> Result<ReplayReport, ReplayError> {
        while self.step()?.is_some() {}
        Ok(ReplayReport {
            req_id: self.req_id.clone(),
            steps: self.reports.clone(),
        })
    }

    /// Reports for the steps executed so far.
    pub fn reports(&self) -> &[StepReport] {
        &self.reports
    }
}

/// Forks the development environment at `ts`.
///
/// At or above the GC truncation floor this is a direct
/// [`Session::fork_at`]: both stores materialise the state visible at
/// `ts`. Below the floor the live stores can no longer answer, so the
/// environment is *reconstructed* from retained history. With a durable
/// environment checkpoint at `C <= ts`
/// ([`trod_db::SegmentedWal::load_checkpoint_at_or_before`]), the
/// reconstruction is nearest-snapshot + delta: materialise the
/// checkpoint ([`Session::from_checkpoint`]) and replay only the spilled
/// aligned entries in `(C, ts]` — cost bounded by the checkpoint
/// cadence, however deep the fork. Without one, it is the full replay:
/// an empty fork ([`Session::fork_empty`]) brought to `ts` by replaying
/// every spilled entry up to `ts`, through [`Session::apply_changes`],
/// the same injection primitive replay uses. (Entries still in the live
/// log all sit *above* the floor — truncation drains every entry at or
/// below it — so below the floor the spill plus the checkpoint is the
/// whole story.) Retroactive programming forks through here too, so
/// every debugger feature shares one retention-aware fork path.
pub(crate) fn fork_environment(
    provenance: &ProvenanceStore,
    production: &Session,
    ts: Ts,
) -> Result<Session, ReplayError> {
    let db = production.database();
    let mut floor = db.log_truncated_below();
    if ts >= floor {
        let fork = production.fork_at(ts)?;
        // Re-check the floor AFTER materialising: `gc_before` raises the
        // floor before it drops any version, so if the floor still
        // covers `ts` now, no GC took versions at `ts` out from under
        // the walk — the fork is sound. If a concurrent GC overtook us
        // the fork may be torn; discard it and reconstruct from the
        // spill instead (the floor only ever rises, so retrying the
        // direct fork could never succeed).
        floor = db.log_truncated_below();
        if ts >= floor {
            return Ok(fork);
        }
    }
    // Nearest durable checkpoint at or before `ts`, if the environment
    // is durable at all. A checkpoint that fails validation is skipped
    // (counted in the WAL stats) in favour of an older one inside
    // `load_checkpoint_at_or_before`; none at all just means full
    // replay.
    let checkpoint = match db.wal() {
        Some(wal) => wal
            .load_checkpoint_at_or_before(ts)
            .map_err(|e| ReplayError::Storage(DbError::Storage(e)))?,
        None => None,
    };
    let ckpt_ts = checkpoint.as_ref().map(|c| c.ts).unwrap_or(0);
    // The snapshot predates truncation: only the checkpoint plus spilled
    // history can cover it (the live log holds nothing at or below the
    // floor). Reconstruction is sound only when the spill (a) covers
    // everything after the checkpoint — the retention policy was
    // installed while the truncation floor was still at or below the
    // checkpoint timestamp (without a checkpoint: coverage floor 0,
    // complete from the first commit) — and (b) actually IS this
    // debugger's provenance store: a foreign policy's coverage says
    // nothing about our spill. Otherwise rebuilding would silently
    // produce a wrong fork; refuse instead. (An empty spill under a
    // sufficient coverage floor is fine: nothing had committed in the
    // window.)
    let spill_covers_delta_and_is_ours = db.retention_policy().is_some_and(|(policy, cov)| {
        cov <= ckpt_ts
            && std::ptr::addr_eq(Arc::as_ptr(&policy), provenance as *const ProvenanceStore)
    });
    if !spill_covers_delta_and_is_ours {
        return Err(ReplayError::HistoryTruncated {
            snapshot_ts: ts,
            floor,
        });
    }
    let dev = match &checkpoint {
        Some(ck) => {
            // Mirror the production environment's shape: a relational-only
            // production session gets a relational-only dev environment
            // (kv records are skipped and counted, as in the full-replay
            // path), a polyglot one gets the checkpoint's kv half too.
            let dev = if production.kv_store().is_some() {
                Session::from_checkpoint(ck)?
            } else {
                let dev_db = Database::new();
                dev_db.restore_checkpoint(ck)?;
                Session::new(dev_db)
            };
            // Commits in `(C, ts]` may touch objects created after the
            // checkpoint was taken; graft production's catalog (tables,
            // indexes, namespaces) onto the restored base, like
            // `fork_empty` copies it onto an empty one.
            augment_catalog_from(production, &dev)?;
            dev
        }
        None => production.fork_empty()?,
    };
    let kv_capable = dev.kv_store().is_some();
    // Only the delta after the checkpoint (everything at or below
    // `ckpt_ts` is already materialised by the restored snapshot);
    // without a checkpoint this is the whole spilled history up to `ts`.
    for entry in provenance.spilled_between(ckpt_ts, ts) {
        // Relational-only environments (the legacy `for_request` path)
        // cannot reconstruct kv records, exactly as a direct fork would
        // not materialise them — drop them from the base state rather
        // than failing the whole replay (the per-step skip accounting
        // covers the traced records).
        let changes: std::borrow::Cow<'_, [trod_db::ChangeRecord]> = if kv_capable {
            std::borrow::Cow::Borrowed(&entry.changes)
        } else {
            std::borrow::Cow::Owned(
                entry
                    .changes
                    .iter()
                    .filter(|c| !trod_db::is_kv_table(&c.table))
                    .cloned()
                    .collect(),
            )
        };
        if dev.apply_changes(&changes).is_err() {
            // A record in the entry cannot be re-applied — its images
            // were erased by privacy redaction after spilling. Rebuild
            // from whatever survives, record by record: below-floor
            // replays of *unrelated* requests keep working, and replays
            // that did depend on the erased rows surface the gap as
            // fidelity mismatches — the paper's §5 "debugging from
            // partial data" behaviour, same as the step-level tolerance.
            for change in changes.iter() {
                let _ = dev.apply_changes(std::slice::from_ref(change));
            }
        }
    }
    Ok(dev)
}

/// Grafts production's current catalog — tables, indexes, kv namespaces —
/// onto a dev environment restored from a checkpoint, so delta entries
/// that touch objects created after the checkpoint was taken find them.
/// State is *not* copied: the rows and values those objects held at the
/// fork timestamp arrive through the delta replay itself, exactly as in
/// the full-replay path (where `fork_empty` copies the same catalog onto
/// an empty environment).
fn augment_catalog_from(production: &Session, dev: &Session) -> Result<(), ReplayError> {
    let src = production.database();
    let dst = dev.database();
    for name in src.table_names() {
        if !dst.has_table(&name) {
            dst.create_table(name.clone(), src.schema_of(&name)?)?;
        }
        let from = src.table(&name)?;
        let to = dst.table(&name)?;
        for column in from.indexed_columns() {
            if !to.indexed_columns().contains(&column) {
                to.create_index(&column)?;
            }
        }
        for column in from.range_indexed_columns() {
            if !to.range_indexed_columns().contains(&column) {
                to.create_range_index(&column)?;
            }
        }
    }
    if let (Some(src_kv), Some(dst_kv)) = (production.kv_store(), dev.kv_store()) {
        for namespace in src_kv.namespaces() {
            if !dst_kv.has_namespace(&namespace) {
                dst_kv
                    .create_namespace(&namespace)
                    .map_err(ReplayError::KeyValue)?;
            }
        }
    }
    Ok(())
}

/// Applies CDC records to the development environment, through the
/// participant commit path for `kv:` records when the environment has a
/// key-value store. Records that cannot be applied are skipped and
/// counted instead of failing the replay:
///
/// * `kv:` records in a relational-only environment (legacy
///   [`ReplaySession::for_request`] replays);
/// * on steps that run on redacted provenance (`tolerate = true`), records
///   whose row or value images were erased — the "debugging from partial
///   data" behaviour of the paper's §5.
///
/// Returns the number of skipped records.
fn apply_tolerating_redaction(
    dev: &Session,
    writes: &[trod_db::ChangeRecord],
    tolerate: bool,
) -> Result<usize, ReplayError> {
    let kv_unapplyable = if dev.kv_store().is_some() {
        0
    } else {
        writes
            .iter()
            .filter(|c| trod_db::is_kv_table(&c.table))
            .count()
    };
    if !tolerate && kv_unapplyable == 0 {
        // The common (unredacted, fully-equipped environment) case: apply
        // the whole transaction as one aligned injection.
        dev.apply_changes(writes)?;
        return Ok(0);
    }
    let mut skipped = kv_unapplyable;
    if !tolerate {
        let applyable: Vec<_> = writes
            .iter()
            .filter(|c| !trod_db::is_kv_table(&c.table))
            .cloned()
            .collect();
        dev.apply_changes(&applyable)?;
        return Ok(skipped);
    }
    for change in writes {
        if kv_unapplyable > 0 && trod_db::is_kv_table(&change.table) {
            continue;
        }
        if dev.apply_changes(std::slice::from_ref(change)).is_err() {
            skipped += 1;
        }
    }
    Ok(skipped)
}

impl fmt::Debug for ReplaySession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplaySession")
            .field("req_id", &self.req_id)
            .field("polyglot", &self.dev.kv_store().is_some())
            .field("steps", &self.steps.len())
            .field("position", &self.position)
            .finish()
    }
}
