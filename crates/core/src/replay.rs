//! Faithful bug replay (paper §3.5).
//!
//! Replaying a past request means re-experiencing its execution in a
//! development database: TROD forks the development database from the
//! state the request's first transaction saw, then walks the request's
//! transactions in their original order. Before each transaction it
//! *injects* the state changes made by concurrently committed
//! transactions that the original execution observed (the paper's
//! "breakpoint before the beginning of each transaction"), verifies that
//! the development database now shows exactly the rows the original
//! transaction read (fidelity), and then applies the transaction's own
//! recorded changes.
//!
//! The session exposes a [`ReplaySession::step`] API so a developer (or a
//! test acting as one) can stop between transactions, inspect the
//! development database, and see precisely which concurrent requests
//! modified the data in between — which is how the Moodle duplication
//! becomes obvious (Figure 3, top).

use std::fmt;

use trod_db::{Database, DbError, Ts, TxnId};
use trod_provenance::ProvenanceStore;
use trod_trace::TxnTrace;

/// Errors raised while preparing or running a replay.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The request id does not appear in the provenance database.
    UnknownRequest(String),
    /// The request has no traced transactions to replay.
    NoTransactions(String),
    /// An underlying storage error.
    Storage(DbError),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::UnknownRequest(r) => write!(f, "no traced request with id `{r}`"),
            ReplayError::NoTransactions(r) => {
                write!(f, "request `{r}` has no traced transactions")
            }
            ReplayError::Storage(e) => write!(f, "storage error during replay: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<DbError> for ReplayError {
    fn from(e: DbError) -> Self {
        ReplayError::Storage(e)
    }
}

/// A single replayed transaction with its injected dependencies.
#[derive(Debug, Clone)]
pub struct ReplayStep {
    /// The original transaction trace being replayed.
    pub txn: TxnTrace,
    /// Concurrently committed transactions (from *other* requests) whose
    /// changes must be injected before this transaction so the replayed
    /// execution sees the same state the original saw.
    pub injected: Vec<TxnTrace>,
    /// True if this step's transaction, or one of its injected
    /// dependencies, had provenance removed by a privacy-erasure request
    /// (paper §5): the replay proceeds on partial data and fidelity
    /// mismatches are expected rather than alarming.
    pub partial_data: bool,
}

/// The report produced by replaying one step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepReport {
    pub txn_id: TxnId,
    pub handler: String,
    pub function: String,
    /// (txn id, request id) pairs injected before this step — the answer
    /// to "who changed the database between my transactions?".
    pub injected: Vec<(TxnId, String)>,
    /// Rows the original transaction read that were verified against the
    /// development database.
    pub reads_checked: usize,
    /// Human-readable descriptions of any fidelity mismatches.
    pub mismatches: Vec<String>,
    /// Number of CDC records applied for the transaction itself.
    pub writes_applied: usize,
    /// CDC records (of this transaction or its injected dependencies) that
    /// could not be applied because their row images were redacted; only
    /// ever non-zero on partial-data steps.
    pub writes_skipped: usize,
    /// True if the step ran on provenance that was partially redacted
    /// (privacy erasure, §5); see [`ReplayStep::partial_data`].
    pub partial_data: bool,
}

impl StepReport {
    /// True if every checked read matched the original execution.
    pub fn is_faithful(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// The report for a whole replayed request.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    pub req_id: String,
    pub steps: Vec<StepReport>,
}

impl ReplayReport {
    /// True if every step was faithful.
    pub fn is_faithful(&self) -> bool {
        self.steps.iter().all(StepReport::is_faithful)
    }

    /// Total injected concurrent transactions across all steps.
    pub fn injected_count(&self) -> usize {
        self.steps.iter().map(|s| s.injected.len()).sum()
    }

    /// True if any step ran on partially redacted provenance, in which
    /// case a non-faithful replay may be the expected consequence of a
    /// privacy-erasure request rather than a bug in the application.
    pub fn has_partial_data(&self) -> bool {
        self.steps.iter().any(|s| s.partial_data)
    }
}

/// An in-progress replay of one request.
pub struct ReplaySession {
    req_id: String,
    dev_db: Database,
    steps: Vec<ReplayStep>,
    position: usize,
    reports: Vec<StepReport>,
}

impl ReplaySession {
    /// Prepares a replay of `req_id`: forks a development database from
    /// the production state the request's first transaction saw and
    /// computes, for each of the request's transactions, the concurrent
    /// transactions whose changes must be injected before it.
    pub fn for_request(
        provenance: &ProvenanceStore,
        production_db: &Database,
        req_id: &str,
    ) -> Result<Self, ReplayError> {
        let known_requests = provenance.request_ids();
        let own_txns = provenance.txns_for_request(req_id);
        if own_txns.is_empty() {
            return if known_requests.iter().any(|r| r == req_id) {
                Err(ReplayError::NoTransactions(req_id.to_string()))
            } else {
                Err(ReplayError::UnknownRequest(req_id.to_string()))
            };
        }
        let committed: Vec<TxnTrace> = own_txns.into_iter().filter(|t| t.committed).collect();
        if committed.is_empty() {
            return Err(ReplayError::NoTransactions(req_id.to_string()));
        }

        let base_ts = committed.iter().map(|t| t.snapshot_ts).min().unwrap_or(0);
        // The development database starts from the snapshot the request
        // began against. TROD only needs the data items the replay
        // touches; forking at a timestamp gives the same observable
        // behaviour with the simple in-memory engine.
        let dev_db = production_db.fork_at(base_ts)?;

        let mut steps = Vec::with_capacity(committed.len());
        let mut watermark: Ts = base_ts;
        for txn in committed {
            // Under snapshot isolation and serializable every read was
            // served at the snapshot; under read committed a read can
            // observe commits up to its own recorded `read_ts`, so the
            // step's injection horizon is the latest point the
            // transaction actually observed (reenactment-style replay of
            // weak-isolation histories).
            let horizon = txn
                .reads
                .iter()
                .map(|r| r.read_ts)
                .fold(txn.snapshot_ts, Ts::max);
            let injected: Vec<TxnTrace> = provenance
                .txns_between(watermark, horizon)
                .into_iter()
                .filter(|other| other.ctx.req_id != req_id)
                .collect();
            watermark = watermark.max(horizon);
            let partial_data = provenance.is_redacted(txn.txn_id)
                || injected.iter().any(|t| provenance.is_redacted(t.txn_id));
            steps.push(ReplayStep {
                txn,
                injected,
                partial_data,
            });
        }

        Ok(ReplaySession {
            req_id: req_id.to_string(),
            dev_db,
            steps,
            position: 0,
            reports: Vec::new(),
        })
    }

    /// The request being replayed.
    pub fn req_id(&self) -> &str {
        &self.req_id
    }

    /// The development database. Between steps a developer can inspect it
    /// freely (the programmatic stand-in for attaching GDB or a SQL shell
    /// during replay).
    pub fn dev_db(&self) -> &Database {
        &self.dev_db
    }

    /// The planned steps (before execution).
    pub fn steps(&self) -> &[ReplayStep] {
        &self.steps
    }

    /// Number of steps already executed.
    pub fn position(&self) -> usize {
        self.position
    }

    /// True if every step has been executed.
    pub fn is_finished(&self) -> bool {
        self.position >= self.steps.len()
    }

    /// Executes the next step: injects concurrent changes, verifies the
    /// original read set against the development database, applies the
    /// transaction's own writes. Returns `None` when the replay is done.
    pub fn step(&mut self) -> Result<Option<StepReport>, ReplayError> {
        if self.is_finished() {
            return Ok(None);
        }
        let step = self.steps[self.position].clone();
        self.position += 1;

        // Interleave injection with the fidelity checks: before each read
        // is verified, apply the concurrent transactions that committed at
        // or below that read's recorded timestamp — no earlier (the read
        // could not have seen them removed/changed) and no later (the
        // read could not have seen them yet). Under snapshot isolation
        // and serializable every read_ts equals the snapshot and this
        // degenerates to "inject everything, then check", the original
        // behaviour; under read committed it reproduces exactly the
        // states the transaction's reads actually observed.
        let mut writes_skipped = 0usize;
        let mut injected = Vec::with_capacity(step.injected.len());
        let mut pending = step.injected.iter().peekable();
        let mut reads_checked = 0;
        let mut mismatches = Vec::new();
        for read in &step.txn.reads {
            while let Some(other) = pending.peek() {
                if other.commit_ts > read.read_ts {
                    break;
                }
                let other = pending.next().expect("peeked");
                writes_skipped +=
                    apply_tolerating_redaction(&self.dev_db, &other.writes, step.partial_data)?;
                injected.push((other.txn_id, other.ctx.req_id.clone()));
            }
            // Fidelity check: every row the original transaction read must
            // be present, with identical contents, in the development
            // database. Key-value reads are not checkable against the
            // relational fork (see `is_kv_virtual_table`).
            if is_kv_virtual_table(&read.table) {
                continue;
            }
            for (key, original_row) in &read.rows {
                reads_checked += 1;
                match self.dev_db.get_latest(&read.table, key)? {
                    Some(dev_row) if &dev_row == original_row => {}
                    Some(dev_row) => mismatches.push(format!(
                        "{}{}: original read {} but development database has {}",
                        read.table, key, original_row, dev_row
                    )),
                    None => mismatches.push(format!(
                        "{}{}: original read {} but row is missing in development database",
                        read.table, key, original_row
                    )),
                }
            }
        }
        // Inject whatever the transaction's reads never reached (e.g.
        // write-only transactions) so the development database still ends
        // the step at the state the transaction committed against.
        for other in pending {
            writes_skipped +=
                apply_tolerating_redaction(&self.dev_db, &other.writes, step.partial_data)?;
            injected.push((other.txn_id, other.ctx.req_id.clone()));
        }

        let own_skipped =
            apply_tolerating_redaction(&self.dev_db, &step.txn.writes, step.partial_data)?;
        writes_skipped += own_skipped;

        let report = StepReport {
            txn_id: step.txn.txn_id,
            handler: step.txn.ctx.handler.clone(),
            function: step.txn.ctx.function.clone(),
            injected,
            reads_checked,
            mismatches,
            writes_applied: step.txn.writes.len() - own_skipped,
            writes_skipped,
            partial_data: step.partial_data,
        };
        self.reports.push(report.clone());
        Ok(Some(report))
    }

    /// Runs all remaining steps and returns the full report.
    pub fn run_to_end(&mut self) -> Result<ReplayReport, ReplayError> {
        while self.step()?.is_some() {}
        Ok(ReplayReport {
            req_id: self.req_id.clone(),
            steps: self.reports.clone(),
        })
    }

    /// Reports for the steps executed so far.
    pub fn reports(&self) -> &[StepReport] {
        &self.reports
    }
}

/// True for reads/writes against the virtual `kv:<namespace>` tables of
/// the unified transaction surface. The development database is a
/// relational fork; key-value state is not reconstructed by replay (the
/// relational side of a polyglot request replays normally, and the kv
/// records remain visible in the step's trace) — see the ROADMAP.
fn is_kv_virtual_table(table: &str) -> bool {
    table.starts_with("kv:")
}

/// Applies CDC records to the development database. Records against
/// `kv:<namespace>` virtual tables are skipped and counted (see
/// [`is_kv_virtual_table`]). On steps that run on redacted provenance
/// (`tolerate = true`), records whose row images were erased cannot be
/// re-applied; they are skipped and counted instead of failing the whole
/// replay — this is the "debugging from partial data" behaviour of the
/// paper's §5. Returns the number of skipped records.
fn apply_tolerating_redaction(
    dev_db: &Database,
    writes: &[trod_db::ChangeRecord],
    tolerate: bool,
) -> Result<usize, ReplayError> {
    let kv_records = writes
        .iter()
        .filter(|c| is_kv_virtual_table(&c.table))
        .count();
    if !tolerate && kv_records == 0 {
        // The common (purely relational, unredacted) case: apply the
        // whole batch without copying a record.
        dev_db.apply_changes(writes)?;
        return Ok(0);
    }
    let mut skipped = kv_records;
    if !tolerate {
        let relational: Vec<_> = writes
            .iter()
            .filter(|c| !is_kv_virtual_table(&c.table))
            .cloned()
            .collect();
        dev_db.apply_changes(&relational)?;
        return Ok(skipped);
    }
    for change in writes {
        if is_kv_virtual_table(&change.table) {
            continue;
        }
        if dev_db.apply_changes(std::slice::from_ref(change)).is_err() {
            skipped += 1;
        }
    }
    Ok(skipped)
}

impl fmt::Debug for ReplaySession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplaySession")
            .field("req_id", &self.req_id)
            .field("steps", &self.steps.len())
            .field("position", &self.position)
            .finish()
    }
}
