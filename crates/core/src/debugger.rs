//! The top-level TROD debugger façade.
//!
//! A [`Trod`] instance binds a production [`Runtime`] (application
//! handlers + traced database) to a [`ProvenanceStore`], mirroring the
//! paper's Figure 2: the interposition layer traces the production
//! environment, the provenance database stores the traces, and the
//! debugging operations — declarative queries, bug replay, retroactive
//! programming — run against that captured history in a development
//! environment.
//!
//! # Fork/replay architecture
//!
//! Every debugging feature that re-executes or verifies history works on
//! a **forked session environment**, never on production state:
//!
//! * **What forks.** [`trod_kv::Session::fork_at`] forks the *whole*
//!   environment — the relational database
//!   ([`trod_db::Database::fork_at`]) and, for polyglot applications, the
//!   key-value store (`KvStore::fork_at`) — at one timestamp of the
//!   aligned history, so cross-store invariants hold in the fork exactly
//!   as they held in production at that moment.
//! * **At which timestamp.** Replay ([`Trod::replay`]) forks at the
//!   snapshot the request's first transaction read from; retroactive
//!   programming ([`Trod::retroactive`]) at the earliest snapshot of the
//!   selected requests (or an explicit override). Reenactment needs no
//!   fork at all: it time-travels the production stores read-only.
//! * **How truncated history is stitched.** [`Database::gc_before`]
//!   truncates the aligned log together with the row versions; with
//!   [`Trod::enable_retention`] the truncated entries are *spilled* into
//!   this debugger's provenance store first. [`Trod::aligned_history`]
//!   stitches spilled + live entries back into one continuous view, and
//!   the fork path does the same transparently: a fork below the GC
//!   floor is reconstructed by replaying the stitched history into an
//!   empty environment — so debugging reach is bounded by retention, not
//!   by GC pressure.

use std::sync::Arc;

use trod_db::{Database, DbResult};
use trod_kv::{AlignedCommit, Session};
use trod_provenance::ProvenanceStore;
use trod_query::{QueryResultT, ResultSet};
use trod_runtime::{HandlerRegistry, Runtime};

use crate::declarative::Declarative;
use crate::perf::Perf;
use crate::quality::Quality;
use crate::reenactment::Reenactor;
use crate::replay::{ReplayError, ReplaySession};
use crate::retroactive::RetroactiveBuilder;
use crate::security::Security;

/// The transaction-oriented debugger.
pub struct Trod {
    runtime: Arc<Runtime>,
    provenance: Arc<ProvenanceStore>,
}

impl Trod {
    /// Attaches TROD to a runtime, creating a provenance store that has an
    /// event table registered (under its default name) for every table of
    /// the application database.
    pub fn attach(runtime: Runtime) -> DbResult<Self> {
        let provenance = ProvenanceStore::for_application(runtime.database())?;
        Ok(Trod {
            runtime: Arc::new(runtime),
            provenance: Arc::new(provenance),
        })
    }

    /// Attaches TROD to a runtime using an explicitly configured
    /// provenance store (e.g. one whose event tables carry the paper's
    /// names such as `ForumEvents`).
    pub fn attach_with(runtime: Runtime, provenance: ProvenanceStore) -> Self {
        Trod {
            runtime: Arc::new(runtime),
            provenance: Arc::new(provenance),
        }
    }

    /// The production runtime.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// A shared handle to the production runtime.
    pub fn runtime_arc(&self) -> Arc<Runtime> {
        self.runtime.clone()
    }

    /// The production session: the unified transaction surface
    /// (application database, optional key-value store, tracer) every
    /// debugging layer reads through. This is the single API choke point
    /// where the aligned history is captured — relational-only, KV-only
    /// and mixed commits alike.
    pub fn session(&self) -> &Session {
        self.runtime.session()
    }

    /// The production application database.
    pub fn production_db(&self) -> &Database {
        self.runtime.database()
    }

    /// The provenance store.
    pub fn provenance(&self) -> &ProvenanceStore {
        &self.provenance
    }

    /// A shared handle to the provenance store (implements
    /// [`trod_trace::TraceSink`], so it can be handed to a
    /// [`trod_trace::BackgroundFlusher`] for continuous ingestion).
    pub fn provenance_arc(&self) -> Arc<ProvenanceStore> {
        self.provenance.clone()
    }

    /// Drains the tracer's in-memory buffer into the provenance store.
    /// Production deployments run a background flusher instead; tests and
    /// examples call this explicitly at convenient points.
    pub fn sync(&self) -> usize {
        let events = self.runtime.tracer().drain();
        let n = events.len();
        self.provenance.ingest(events);
        n
    }

    /// Runs a declarative debugging query (SQL over the provenance tables).
    pub fn query(&self, sql: &str) -> QueryResultT<ResultSet> {
        self.provenance.query(sql)
    }

    /// Declarative-debugging helpers (pre-canned queries from §3.3).
    pub fn declarative(&self) -> Declarative<'_> {
        Declarative::new(&self.provenance)
    }

    /// Security and forensics helpers (§4.2).
    pub fn security(&self) -> Security<'_> {
        Security::new(&self.provenance)
    }

    /// Performance-debugging helpers (§5): per-handler latency
    /// distributions, slow-request search, per-request workflow breakdowns
    /// — all computed from the already-captured provenance.
    pub fn perf(&self) -> Perf<'_> {
        Perf::new(&self.provenance)
    }

    /// Data-quality debugging helpers (§5): declarative quality rules over
    /// the application database, with every violation blamed on the traced
    /// requests that wrote the offending rows.
    pub fn quality(&self) -> Quality<'_> {
        Quality::new(&self.provenance, self.runtime.database())
    }

    /// Weak-isolation reenactment and anomaly auditing (§3.1): time-travel
    /// reconstruction of traced read sets — relational rows and key-value
    /// entries alike — plus lost-update / write-skew candidate detection
    /// for histories captured under snapshot isolation or read committed.
    pub fn reenactor(&self) -> Reenactor<'_> {
        Reenactor::new(&self.provenance, self.runtime.session())
    }

    /// Starts a faithful replay of a past request (§3.5) in a development
    /// environment — the relational database *and*, for polyglot
    /// applications, the key-value store — forked from production state
    /// at the request's snapshot, or reconstructed from spilled aligned
    /// history when the snapshot predates the GC floor (see the module
    /// docs and [`Trod::enable_retention`]).
    pub fn replay(&self, req_id: &str) -> Result<ReplaySession, ReplayError> {
        ReplaySession::for_session(&self.provenance, self.runtime.session(), req_id)
    }

    /// Forks the whole environment (db + kv) at `ts`, retention-aware:
    /// above the GC floor this is `Session::fork_at`; below it the state
    /// is reconstructed from spilled + live aligned history, exactly as
    /// replay does. This is the entry point the server's remote fork
    /// sessions go through.
    pub fn fork_at(&self, ts: trod_db::Ts) -> Result<Session, ReplayError> {
        crate::replay::fork_environment(&self.provenance, self.runtime.session(), ts)
    }

    /// Starts configuring a retroactive-programming run (§3.6) that
    /// re-executes original requests against `patched_registry`, each
    /// ordering in a fresh fork of the whole session environment.
    pub fn retroactive(&self, patched_registry: HandlerRegistry) -> RetroactiveBuilder {
        RetroactiveBuilder::new(
            self.provenance.clone(),
            self.runtime.session().clone(),
            patched_registry,
        )
    }

    /// Installs this debugger's provenance store as the production
    /// database's aligned-history retention policy: from now on,
    /// [`Database::gc_before`] spills every transaction-log entry it
    /// truncates into the provenance store instead of dropping it, so
    /// [`Trod::aligned_history`] and [`Trod::replay`] keep reaching
    /// history older than the GC watermark. Call before the first GC for
    /// a gap-free history.
    pub fn enable_retention(&self) {
        self.runtime
            .database()
            .set_retention_policy(Some(self.provenance.clone()));
    }

    /// Recovers a durable production environment and attaches the
    /// debugger to it: the WAL at `path` is validated (torn tail
    /// truncated at the last valid checksum, corruption refused with a
    /// typed error) and replayed into a fresh session —
    /// state, catalogs, namespaces and the aligned history all restored —
    /// then wrapped in a runtime over `registry`. Subsequent commits
    /// append to the recovered log.
    pub fn open_durable(
        path: impl AsRef<std::path::Path>,
        opts: trod_db::WalOptions,
        registry: HandlerRegistry,
    ) -> Result<(Self, trod_db::RecoveryReport), trod_db::TrodError> {
        let (session, report) = Session::open_durable(path, opts)?;
        let db = session.database().clone();
        let kv = session.kv().clone();
        let runtime = Runtime::builder(db, registry).kv(kv).build();
        let trod = Trod::attach(runtime).map_err(trod_db::TrodError::Relational)?;
        Ok((trod, report))
    }

    /// [`Trod::enable_retention`] plus a durable home for the spills.
    ///
    /// When production runs on a segmented WAL (the directory layout of
    /// [`Trod::open_durable`]), the log itself is that home: GC compacts
    /// sealed segments below the floor into immutable cold files instead
    /// of deleting them, so the spilled history is already durable and no
    /// second copy is written — `path` is ignored and 0 is returned.
    /// Otherwise (in-memory sinks, legacy single-file logs) entries GC
    /// truncates are appended to a dedicated spill segment at `path`
    /// (synced per `mode`) as well as kept in memory. Reopening an
    /// existing spill segment reloads its history first; returns how many
    /// entries were reloaded.
    pub fn enable_durable_retention(
        &self,
        path: impl AsRef<std::path::Path>,
        mode: trod_db::SyncMode,
    ) -> Result<usize, trod_db::StorageError> {
        let segmented = self
            .runtime
            .database()
            .wal()
            .is_some_and(|w| w.is_segmented());
        if segmented {
            self.enable_retention();
            return Ok(0);
        }
        let loaded = self.provenance.enable_durable_spills(path, mode)?;
        self.enable_retention();
        Ok(loaded)
    }

    /// Garbage-collects production history in both stores under one
    /// clamped horizon ([`Session::gc_before`]); with retention enabled
    /// the truncated aligned entries are spilled (durably, after
    /// [`Trod::enable_durable_retention`]) before they leave the live
    /// log, so [`Trod::aligned_history`] stays gap-free.
    pub fn gc_before(&self, ts: trod_db::Ts) -> trod_kv::GcStats {
        self.runtime.session().gc_before(ts)
    }

    /// Forces an environment checkpoint now ([`Session::checkpoint`]):
    /// a durable whole-environment snapshot that bounds both recovery
    /// replay and the delta [`Trod::fork_at`] has to re-apply below the
    /// GC floor. Returns `Ok(None)` when the environment is not durable,
    /// the write was skipped (nothing committed since the last one), or
    /// another checkpoint is already in flight.
    pub fn checkpoint(&self) -> Result<Option<(trod_db::Ts, u64)>, trod_db::TrodError> {
        self.runtime.session().checkpoint()
    }

    /// The complete aligned cross-store history this debugger can see:
    /// entries spilled to the provenance store by GC retention, followed
    /// by the live transaction log — stitched into one commit-ordered
    /// view. Without retention (or before any GC) this is just the live
    /// [`Session::aligned_log`].
    pub fn aligned_history(&self) -> Vec<AlignedCommit> {
        // Read the live log BEFORE the spill: entries only ever move
        // live → spilled (under GC), so an entry a concurrent GC drains
        // between the two reads appears in both snapshots — never in
        // neither — and the overlap is dropped by commit timestamp. The
        // other order could lose an in-flight entry entirely.
        let live = self.runtime.session().aligned_log();
        let mut out: Vec<AlignedCommit> = self
            .provenance
            .spilled_log()
            .into_iter()
            .map(AlignedCommit::from_entry)
            .collect();
        let spilled_up_to = out.last().map(|c| c.commit_ts).unwrap_or(0);
        out.extend(live.into_iter().filter(|c| c.commit_ts > spilled_up_to));
        out
    }
}

impl std::fmt::Debug for Trod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trod")
            .field("runtime", &self.runtime)
            .field("provenance", &self.provenance)
            .finish()
    }
}
