//! The top-level TROD debugger façade.
//!
//! A [`Trod`] instance binds a production [`Runtime`] (application
//! handlers + traced database) to a [`ProvenanceStore`], mirroring the
//! paper's Figure 2: the interposition layer traces the production
//! environment, the provenance database stores the traces, and the
//! debugging operations — declarative queries, bug replay, retroactive
//! programming — run against that captured history in a development
//! environment.

use std::sync::Arc;

use trod_db::{Database, DbResult};
use trod_kv::Session;
use trod_provenance::ProvenanceStore;
use trod_query::{QueryResultT, ResultSet};
use trod_runtime::{HandlerRegistry, Runtime};

use crate::declarative::Declarative;
use crate::perf::Perf;
use crate::quality::Quality;
use crate::reenactment::Reenactor;
use crate::replay::{ReplayError, ReplaySession};
use crate::retroactive::RetroactiveBuilder;
use crate::security::Security;

/// The transaction-oriented debugger.
pub struct Trod {
    runtime: Arc<Runtime>,
    provenance: Arc<ProvenanceStore>,
}

impl Trod {
    /// Attaches TROD to a runtime, creating a provenance store that has an
    /// event table registered (under its default name) for every table of
    /// the application database.
    pub fn attach(runtime: Runtime) -> DbResult<Self> {
        let provenance = ProvenanceStore::for_application(runtime.database())?;
        Ok(Trod {
            runtime: Arc::new(runtime),
            provenance: Arc::new(provenance),
        })
    }

    /// Attaches TROD to a runtime using an explicitly configured
    /// provenance store (e.g. one whose event tables carry the paper's
    /// names such as `ForumEvents`).
    pub fn attach_with(runtime: Runtime, provenance: ProvenanceStore) -> Self {
        Trod {
            runtime: Arc::new(runtime),
            provenance: Arc::new(provenance),
        }
    }

    /// The production runtime.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// A shared handle to the production runtime.
    pub fn runtime_arc(&self) -> Arc<Runtime> {
        self.runtime.clone()
    }

    /// The production session: the unified transaction surface
    /// (application database, optional key-value store, tracer) every
    /// debugging layer reads through. This is the single API choke point
    /// where the aligned history is captured — relational-only, KV-only
    /// and mixed commits alike.
    pub fn session(&self) -> &Session {
        self.runtime.session()
    }

    /// The production application database.
    pub fn production_db(&self) -> &Database {
        self.runtime.database()
    }

    /// The provenance store.
    pub fn provenance(&self) -> &ProvenanceStore {
        &self.provenance
    }

    /// A shared handle to the provenance store (implements
    /// [`trod_trace::TraceSink`], so it can be handed to a
    /// [`trod_trace::BackgroundFlusher`] for continuous ingestion).
    pub fn provenance_arc(&self) -> Arc<ProvenanceStore> {
        self.provenance.clone()
    }

    /// Drains the tracer's in-memory buffer into the provenance store.
    /// Production deployments run a background flusher instead; tests and
    /// examples call this explicitly at convenient points.
    pub fn sync(&self) -> usize {
        let events = self.runtime.tracer().drain();
        let n = events.len();
        self.provenance.ingest(events);
        n
    }

    /// Runs a declarative debugging query (SQL over the provenance tables).
    pub fn query(&self, sql: &str) -> QueryResultT<ResultSet> {
        self.provenance.query(sql)
    }

    /// Declarative-debugging helpers (pre-canned queries from §3.3).
    pub fn declarative(&self) -> Declarative<'_> {
        Declarative::new(&self.provenance)
    }

    /// Security and forensics helpers (§4.2).
    pub fn security(&self) -> Security<'_> {
        Security::new(&self.provenance)
    }

    /// Performance-debugging helpers (§5): per-handler latency
    /// distributions, slow-request search, per-request workflow breakdowns
    /// — all computed from the already-captured provenance.
    pub fn perf(&self) -> Perf<'_> {
        Perf::new(&self.provenance)
    }

    /// Data-quality debugging helpers (§5): declarative quality rules over
    /// the application database, with every violation blamed on the traced
    /// requests that wrote the offending rows.
    pub fn quality(&self) -> Quality<'_> {
        Quality::new(&self.provenance, self.runtime.database())
    }

    /// Weak-isolation reenactment and anomaly auditing (§3.1): time-travel
    /// reconstruction of traced read sets plus lost-update / write-skew
    /// candidate detection for histories captured under snapshot isolation
    /// or read committed.
    pub fn reenactor(&self) -> Reenactor<'_> {
        Reenactor::new(&self.provenance, self.runtime.database())
    }

    /// Starts a faithful replay of a past request (§3.5) in a development
    /// database forked from production state.
    pub fn replay(&self, req_id: &str) -> Result<ReplaySession, ReplayError> {
        ReplaySession::for_request(&self.provenance, self.runtime.database(), req_id)
    }

    /// Starts configuring a retroactive-programming run (§3.6) that
    /// re-executes original requests against `patched_registry`.
    pub fn retroactive(&self, patched_registry: HandlerRegistry) -> RetroactiveBuilder {
        RetroactiveBuilder::new(
            self.provenance.clone(),
            self.runtime.database().clone(),
            patched_registry,
        )
    }
}

impl std::fmt::Debug for Trod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trod")
            .field("runtime", &self.runtime)
            .field("provenance", &self.provenance)
            .finish()
    }
}
