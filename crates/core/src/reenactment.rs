//! Transaction reenactment and isolation-anomaly auditing for weak
//! isolation levels.
//!
//! TROD's default assumption is strict serializability (paper §3.1), but
//! the paper notes that it "can work for lower isolation levels such as
//! snapshot isolation and read committed by leveraging prior work on
//! transaction reenactment [GProM], which can faithfully replay
//! transactional histories under weak isolation levels using database
//! audit logs and time travel capabilities."
//!
//! This module provides that capability on top of `trod-db`'s MVCC time
//! travel:
//!
//! * [`Reenactor::reenact_txn`] re-derives a traced transaction's read set
//!   by reading the production database *as of* the transaction's snapshot
//!   timestamp and compares it with what the transaction actually
//!   observed. Under serializable and snapshot isolation the two agree;
//!   under read committed a disagreement pinpoints the reads that depended
//!   on mid-transaction commits — exactly the information a developer
//!   needs to decide whether a weakly isolated execution is the cause of a
//!   bug.
//! * [`Reenactor::audit_anomalies`] scans the traced history for the
//!   classic weak-isolation anomaly patterns — lost-update and write-skew
//!   candidates between temporally overlapping transactions — using only
//!   the captured read/write provenance.

use std::collections::BTreeSet;
use std::fmt;

use trod_db::{DbResult, Key, TxnId};
use trod_kv::Session;
use trod_provenance::ProvenanceStore;
use trod_trace::TxnTrace;

/// The kind of weak-isolation anomaly a pair of transactions exhibits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// Two overlapping committed transactions wrote the same row; under
    /// weak isolation the first write is silently overwritten.
    LostUpdate,
    /// Two overlapping committed transactions each read a row the other
    /// wrote but wrote disjoint rows — the snapshot-isolation write-skew
    /// pattern.
    WriteSkew,
}

impl fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnomalyKind::LostUpdate => write!(f, "lost update"),
            AnomalyKind::WriteSkew => write!(f, "write skew"),
        }
    }
}

/// A candidate anomaly between two traced transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Anomaly {
    pub kind: AnomalyKind,
    /// The two transactions involved, in commit order.
    pub txns: (TxnId, TxnId),
    /// The requests the transactions belong to.
    pub requests: (String, String),
    /// The handlers that issued them.
    pub handlers: (String, String),
    /// The table(s) on which the conflict occurred.
    pub tables: Vec<String>,
    /// Human-readable description.
    pub detail: String,
}

/// The result of reenacting one transaction's reads via time travel.
#[derive(Debug, Clone, PartialEq)]
pub struct ReenactmentReport {
    pub txn_id: TxnId,
    pub req_id: String,
    pub handler: String,
    /// Isolation-independent snapshot the reads were reenacted at.
    pub snapshot_ts: trod_db::Ts,
    /// Row images compared.
    pub reads_checked: usize,
    /// Reads whose recorded image differs from the as-of-snapshot image —
    /// evidence the transaction observed state committed *after* its
    /// snapshot (possible under read committed, impossible under snapshot
    /// isolation or serializability).
    pub divergent_reads: Vec<String>,
}

impl ReenactmentReport {
    /// True if every recorded read matches the snapshot reconstruction.
    pub fn is_snapshot_consistent(&self) -> bool {
        self.divergent_reads.is_empty()
    }
}

/// Reenactment / isolation-audit helper bound to the provenance store and
/// the (time-travel-capable) production session environment: relational
/// reads reenact against the database's MVCC history, `kv:<namespace>`
/// reads against the key-value store's version chains — both as of the
/// transaction's snapshot timestamp, which the aligned history makes one
/// and the same point in time.
pub struct Reenactor<'a> {
    provenance: &'a ProvenanceStore,
    session: &'a Session,
}

impl<'a> Reenactor<'a> {
    pub(crate) fn new(provenance: &'a ProvenanceStore, session: &'a Session) -> Self {
        Reenactor {
            provenance,
            session,
        }
    }

    /// Reenacts one traced transaction: every image it recorded reading —
    /// relational row or key-value entry — is re-read from the production
    /// environment as of the transaction's snapshot timestamp and
    /// compared.
    pub fn reenact_txn(&self, txn_id: TxnId) -> DbResult<Option<ReenactmentReport>> {
        let Some(trace) = self.provenance.txn(txn_id) else {
            return Ok(None);
        };
        let mut reads_checked = 0;
        let mut divergent_reads = Vec::new();
        for read in &trace.reads {
            if let Some(namespace) = read.table.strip_prefix(trod_db::KV_TABLE_PREFIX) {
                // Infrastructure failures (no store bound, namespace
                // gone) propagate as errors — reporting them as read
                // divergences would fake an isolation anomaly.
                let Some(kv) = self.session.kv_store() else {
                    return Err(trod_db::DbError::Invalid(format!(
                        "cannot reenact kv read on `{}`: no key-value store bound",
                        read.table
                    )));
                };
                for (key, recorded) in &read.rows {
                    reads_checked += 1;
                    let Some(key_text) = trod_kv::kv_image_key(key) else {
                        divergent_reads.push(format!("{}: non-text kv key {key}", read.table));
                        continue;
                    };
                    let recorded_value = trod_kv::kv_image_value(recorded);
                    let as_of = kv
                        .get_as_of(namespace, key_text, trace.snapshot_ts)
                        .map_err(|e| {
                            trod_db::DbError::Invalid(format!(
                                "cannot reenact kv read on `{}`: {e}",
                                read.table
                            ))
                        })?;
                    match (as_of.as_deref(), recorded_value) {
                        (Some(a), Some(r)) if a == r => {}
                        (got, recorded_value) => divergent_reads.push(format!(
                            "{}[{key_text}]: recorded {} but snapshot ts={} has {}",
                            read.table,
                            recorded_value.unwrap_or("<nothing>"),
                            trace.snapshot_ts,
                            got.unwrap_or("<nothing>"),
                        )),
                    }
                }
                continue;
            }
            for (key, recorded) in &read.rows {
                reads_checked += 1;
                let as_of =
                    self.session
                        .database()
                        .get_as_of(&read.table, key, trace.snapshot_ts)?;
                match as_of {
                    Some(row) if &row == recorded => {}
                    Some(row) => divergent_reads.push(format!(
                        "{}{key}: recorded {recorded} but snapshot ts={} has {row}",
                        read.table, trace.snapshot_ts
                    )),
                    None => divergent_reads.push(format!(
                        "{}{key}: recorded {recorded} but row does not exist at snapshot ts={}",
                        read.table, trace.snapshot_ts
                    )),
                }
            }
        }
        Ok(Some(ReenactmentReport {
            txn_id,
            req_id: trace.ctx.req_id.clone(),
            handler: trace.ctx.handler.clone(),
            snapshot_ts: trace.snapshot_ts,
            reads_checked,
            divergent_reads,
        }))
    }

    /// Reenacts every committed transaction of a request (the
    /// weak-isolation analogue of [`crate::ReplaySession`]).
    pub fn reenact_request(&self, req_id: &str) -> DbResult<Vec<ReenactmentReport>> {
        let mut out = Vec::new();
        for txn in self.provenance.txns_for_request(req_id) {
            if !txn.committed {
                continue;
            }
            if let Some(report) = self.reenact_txn(txn.txn_id)? {
                out.push(report);
            }
        }
        Ok(out)
    }

    /// Scans all committed traced transactions for lost-update and
    /// write-skew candidates between temporally overlapping pairs.
    ///
    /// Candidates are reported pessimistically: under the default
    /// serializable level the engine's validation would have aborted one
    /// of the transactions, so a reported pair is only an *actual* anomaly
    /// if the history ran under snapshot isolation or read committed. The
    /// isolation level a transaction ran under is visible in its handler's
    /// code path, not the trace, so the audit reports every structural
    /// candidate and leaves the final judgement to the developer.
    pub fn audit_anomalies(&self) -> Vec<Anomaly> {
        let txns: Vec<TxnTrace> = self
            .provenance
            .all_txns()
            .into_iter()
            .filter(|t| t.committed)
            .collect();
        let mut out = Vec::new();
        for (i, a) in txns.iter().enumerate() {
            for b in txns.iter().skip(i + 1) {
                if !overlap(a, b) || a.ctx.req_id == b.ctx.req_id {
                    continue;
                }
                let (first, second) = if a.commit_ts <= b.commit_ts {
                    (a, b)
                } else {
                    (b, a)
                };
                if let Some(anomaly) = lost_update(first, second) {
                    out.push(anomaly);
                } else if let Some(anomaly) = write_skew(first, second) {
                    out.push(anomaly);
                }
            }
        }
        out
    }
}

impl fmt::Debug for Reenactor<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Reenactor").finish()
    }
}

/// Two committed transactions overlap if each began before the other
/// committed.
fn overlap(a: &TxnTrace, b: &TxnTrace) -> bool {
    a.snapshot_ts < b.commit_ts && b.snapshot_ts < a.commit_ts
}

fn write_set(t: &TxnTrace) -> BTreeSet<(String, String)> {
    t.writes
        .iter()
        .map(|c| (c.table.clone(), c.key.to_string()))
        .collect()
}

fn read_set(t: &TxnTrace) -> BTreeSet<(String, String)> {
    t.reads
        .iter()
        .flat_map(|r| {
            r.rows
                .iter()
                .map(move |(key, _): &(Key, _)| (r.table.clone(), key.to_string()))
        })
        .collect()
}

fn lost_update(first: &TxnTrace, second: &TxnTrace) -> Option<Anomaly> {
    let shared: Vec<(String, String)> = write_set(first)
        .intersection(&write_set(second))
        .cloned()
        .collect();
    if shared.is_empty() {
        return None;
    }
    let tables: Vec<String> = dedup_tables(shared.iter().map(|(t, _)| t.clone()));
    Some(Anomaly {
        kind: AnomalyKind::LostUpdate,
        txns: (first.txn_id, second.txn_id),
        requests: (first.ctx.req_id.clone(), second.ctx.req_id.clone()),
        handlers: (first.ctx.handler.clone(), second.ctx.handler.clone()),
        detail: format!(
            "transactions {} and {} overlap and both wrote {:?}",
            first.txn_id, second.txn_id, shared
        ),
        tables,
    })
}

fn write_skew(first: &TxnTrace, second: &TxnTrace) -> Option<Anomaly> {
    let w1 = write_set(first);
    let w2 = write_set(second);
    if w1.is_empty() || w2.is_empty() || w1.intersection(&w2).next().is_some() {
        return None;
    }
    let r1 = read_set(first);
    let r2 = read_set(second);
    let first_reads_seconds_writes = r1.intersection(&w2).next().is_some();
    let second_reads_firsts_writes = r2.intersection(&w1).next().is_some();
    if !(first_reads_seconds_writes && second_reads_firsts_writes) {
        return None;
    }
    let tables: Vec<String> =
        dedup_tables(w1.iter().chain(w2.iter()).map(|(table, _)| table.clone()));
    Some(Anomaly {
        kind: AnomalyKind::WriteSkew,
        txns: (first.txn_id, second.txn_id),
        requests: (first.ctx.req_id.clone(), second.ctx.req_id.clone()),
        handlers: (first.ctx.handler.clone(), second.ctx.handler.clone()),
        detail: format!(
            "transactions {} and {} overlap, read each other's write sets and wrote disjoint rows",
            first.txn_id, second.txn_id
        ),
        tables,
    })
}

fn dedup_tables(iter: impl Iterator<Item = String>) -> Vec<String> {
    let mut tables: Vec<String> = iter.collect();
    tables.sort();
    tables.dedup();
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use trod_db::{row, DataType, Database, IsolationLevel, Predicate, Schema, Value};
    use trod_kv::{Session, TxnOptions};
    use trod_trace::{Tracer, TxnContext};

    fn oncall_db() -> (Database, ProvenanceStore, Session) {
        let db = Database::new();
        db.create_table(
            "oncall",
            Schema::builder()
                .column("doctor", DataType::Text)
                .column("on_call", DataType::Bool)
                .primary_key(&["doctor"])
                .build()
                .unwrap(),
        )
        .unwrap();
        let store = ProvenanceStore::for_application(&db).unwrap();
        let traced = Session::builder(db.clone()).tracer(Tracer::new()).build();
        (db, store, traced)
    }

    fn seed(traced: &Session) {
        let mut setup = traced.begin_traced(TxnContext::new("R0", "setup", "f"));
        setup.insert("oncall", row!["alice", true]).unwrap();
        setup.insert("oncall", row!["bob", true]).unwrap();
        setup.commit().unwrap();
    }

    #[test]
    fn write_skew_between_overlapping_si_transactions_is_detected() {
        let (db, store, traced) = oncall_db();
        seed(&traced);

        // Two concurrent "go off call if someone else is still on call"
        // requests, run under snapshot isolation so both commit.
        let mut t1 = traced.begin_with(
            TxnOptions::new()
                .traced(TxnContext::new("R1", "goOffCall", "f"))
                .isolation(IsolationLevel::SnapshotIsolation),
        );
        let mut t2 = traced.begin_with(
            TxnOptions::new()
                .traced(TxnContext::new("R2", "goOffCall", "f"))
                .isolation(IsolationLevel::SnapshotIsolation),
        );
        let on1 = t1.scan("oncall", &Predicate::eq("on_call", true)).unwrap();
        assert_eq!(on1.len(), 2);
        let on2 = t2.scan("oncall", &Predicate::eq("on_call", true)).unwrap();
        assert_eq!(on2.len(), 2);
        t1.update("oncall", &Key::single("alice"), row!["alice", false])
            .unwrap();
        t2.update("oncall", &Key::single("bob"), row!["bob", false])
            .unwrap();
        t1.commit().unwrap();
        t2.commit().unwrap();
        store.ingest(traced.tracer().unwrap().drain());

        let reenactor = Reenactor::new(&store, &traced);
        let anomalies = reenactor.audit_anomalies();
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].kind, AnomalyKind::WriteSkew);
        assert_eq!(anomalies[0].tables, vec!["oncall".to_string()]);
        // Both doctors are now off call — the invariant both transactions
        // checked individually is violated jointly.
        let still_on = db
            .scan_latest("oncall", &Predicate::eq("on_call", true))
            .unwrap();
        assert!(still_on.is_empty());
    }

    #[test]
    fn lost_update_candidates_between_overlapping_writers() {
        let (_db, store, traced) = oncall_db();
        seed(&traced);

        let mut t1 = traced.begin_with(
            TxnOptions::new()
                .traced(TxnContext::new("R1", "toggle", "f"))
                .isolation(IsolationLevel::ReadCommitted),
        );
        let mut t2 = traced.begin_with(
            TxnOptions::new()
                .traced(TxnContext::new("R2", "toggle", "f"))
                .isolation(IsolationLevel::ReadCommitted),
        );
        t1.update("oncall", &Key::single("alice"), row!["alice", false])
            .unwrap();
        t2.update("oncall", &Key::single("alice"), row!["alice", true])
            .unwrap();
        t1.commit().unwrap();
        t2.commit().unwrap();
        store.ingest(traced.tracer().unwrap().drain());

        let reenactor = Reenactor::new(&store, &traced);
        let anomalies = reenactor.audit_anomalies();
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].kind, AnomalyKind::LostUpdate);
        assert_eq!(anomalies[0].requests, ("R1".to_string(), "R2".to_string()));
    }

    #[test]
    fn serial_transactions_produce_no_anomalies() {
        let (_db, store, traced) = oncall_db();
        seed(&traced);
        for (req, value) in [("R1", false), ("R2", true)] {
            let mut t = traced.begin_traced(TxnContext::new(req, "toggle", "f"));
            t.update("oncall", &Key::single("alice"), row!["alice", value])
                .unwrap();
            t.commit().unwrap();
        }
        store.ingest(traced.tracer().unwrap().drain());
        let reenactor = Reenactor::new(&store, &traced);
        assert!(reenactor.audit_anomalies().is_empty());
    }

    #[test]
    fn reenactment_confirms_snapshot_consistency_under_si() {
        let (_db, store, traced) = oncall_db();
        seed(&traced);
        let mut t1 = traced.begin_with(
            TxnOptions::new()
                .traced(TxnContext::new("R1", "reader", "f"))
                .isolation(IsolationLevel::SnapshotIsolation),
        );
        let rows = t1.scan("oncall", &Predicate::True).unwrap();
        assert_eq!(rows.len(), 2);
        t1.commit().unwrap();
        store.ingest(traced.tracer().unwrap().drain());

        let reenactor = Reenactor::new(&store, &traced);
        let reports = reenactor.reenact_request("R1").unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].reads_checked, 2);
        assert!(reports[0].is_snapshot_consistent());
        assert!(reenactor.reenact_txn(999_999).unwrap().is_none());
    }

    #[test]
    fn reenactment_checks_kv_reads_against_the_store_history() {
        use trod_kv::KvStore;

        let db = Database::new();
        let kv = KvStore::new();
        kv.create_namespace("carts").unwrap();
        let store = ProvenanceStore::for_application(&db).unwrap();
        let traced = Session::builder(db.clone())
            .kv(kv)
            .tracer(Tracer::new())
            .build();

        let mut setup = traced.begin_traced(TxnContext::new("R0", "setup", "f"));
        setup.kv_put("carts", "cart:alice", "widget").unwrap();
        setup.commit().unwrap();

        // A serializable reader observes the snapshot value; a later
        // writer changes it. Reenactment (as-of the snapshot) agrees with
        // what the reader recorded.
        let mut reader = traced.begin_traced(TxnContext::new("R1", "getCart", "f"));
        assert_eq!(
            reader.kv_get("carts", "cart:alice").unwrap(),
            Some("widget".into())
        );
        reader.commit().unwrap();
        let mut writer = traced.begin_traced(TxnContext::new("R2", "update", "f"));
        writer.kv_put("carts", "cart:alice", "gadget").unwrap();
        writer.commit().unwrap();

        // A read-committed reader that began before the write but read
        // after it observed a post-snapshot commit: reenactment must flag
        // the kv read as divergent.
        let mut rc = traced.begin_with(
            TxnOptions::new()
                .traced(TxnContext::new("R3", "getCart", "f"))
                .isolation(IsolationLevel::ReadCommitted),
        );
        let mut writer = traced.begin_traced(TxnContext::new("R4", "update", "f"));
        writer.kv_put("carts", "cart:alice", "doohickey").unwrap();
        writer.commit().unwrap();
        assert_eq!(
            rc.kv_get("carts", "cart:alice").unwrap(),
            Some("doohickey".into())
        );
        rc.commit().unwrap();
        store.ingest(traced.tracer().unwrap().drain());

        let reenactor = Reenactor::new(&store, &traced);
        let r1 = reenactor.reenact_request("R1").unwrap();
        assert_eq!(r1.len(), 1);
        assert_eq!(r1[0].reads_checked, 1);
        assert!(r1[0].is_snapshot_consistent());
        let r3 = reenactor.reenact_request("R3").unwrap();
        assert_eq!(r3.len(), 1);
        assert!(
            !r3[0].is_snapshot_consistent(),
            "the kv read observed a post-snapshot commit and must be flagged"
        );
        assert!(r3[0].divergent_reads[0].contains("kv:carts"));
    }

    #[test]
    fn reenactment_flags_reads_that_saw_later_commits_under_read_committed() {
        let (_db, store, traced) = oncall_db();
        seed(&traced);

        // A read-committed transaction begins, then a concurrent writer
        // commits, then the first transaction reads the freshly committed
        // value — legal under read committed, but divergent from its
        // snapshot.
        let mut reader = traced.begin_with(
            TxnOptions::new()
                .traced(TxnContext::new("R1", "reader", "f"))
                .isolation(IsolationLevel::ReadCommitted),
        );
        let mut writer = traced.begin_traced(TxnContext::new("R2", "writer", "f"));
        writer
            .update("oncall", &Key::single("alice"), row!["alice", false])
            .unwrap();
        writer.commit().unwrap();
        let seen = reader
            .get("oncall", &Key::single("alice"))
            .unwrap()
            .unwrap();
        assert_eq!(seen.get(1), Some(&Value::Bool(false)));
        reader.commit().unwrap();
        store.ingest(traced.tracer().unwrap().drain());

        let reenactor = Reenactor::new(&store, &traced);
        let reports = reenactor.reenact_request("R1").unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].reads_checked, 1);
        assert!(
            !reports[0].is_snapshot_consistent(),
            "the read observed a post-snapshot commit and must be flagged"
        );
    }
}
