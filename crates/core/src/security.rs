//! Security debugging and forensics (paper §4.2).
//!
//! Two capabilities are reproduced:
//!
//! * **Access-control pattern checking** (after Near & Jackson): find
//!   requests that violated common patterns such as *User Profiles* (only
//!   a user may update their own profile) or *Authentication* (only
//!   logged-in users may read certain objects), expressed as declarative
//!   queries over the provenance tables.
//! * **Data-exfiltration tracing**: starting from a request that
//!   improperly accessed sensitive data, follow the data forward through
//!   the workflow — writes it made, later requests that read those
//!   writes, and external calls those requests issued — to determine
//!   whether (and where) the data could have left the system.

use std::collections::BTreeSet;

use trod_provenance::{ProvenanceStore, EXECUTIONS_TABLE, EXTERNAL_CALLS_TABLE};
use trod_query::{QueryResultT, ResultSet};

/// A request flagged by an access-control pattern check.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessViolation {
    pub timestamp: i64,
    pub req_id: String,
    pub handler: String,
    pub detail: String,
}

/// The result of tracing tainted data forward from a suspicious request.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DataFlowReport {
    /// The request the trace started from.
    pub origin_req_id: String,
    /// Requests (including the origin) through which the tainted data
    /// flowed, in the order they were reached.
    pub tainted_requests: Vec<String>,
    /// (table, key) pairs written while tainted.
    pub tainted_writes: Vec<(String, String)>,
    /// External calls made by tainted requests — the candidate
    /// exfiltration points.
    pub exfiltration_candidates: Vec<(String, String, String)>,
}

impl DataFlowReport {
    /// True if tainted data reached any external service.
    pub fn data_left_the_system(&self) -> bool {
        !self.exfiltration_candidates.is_empty()
    }
}

/// Security / forensics helper bound to a provenance store.
pub struct Security<'a> {
    provenance: &'a ProvenanceStore,
}

impl<'a> Security<'a> {
    pub(crate) fn new(provenance: &'a ProvenanceStore) -> Self {
        Security { provenance }
    }

    /// The paper's *User Profiles* pattern query: find requests whose
    /// transactions updated a profile row where the profile owner column
    /// differs from the updater column.
    ///
    /// `events_table` is the provenance event table of the profile table
    /// (e.g. `"ProfileEvents"`); `owner_column` / `updater_column` name
    /// the owner and updater columns inside it (the paper uses `UserName`
    /// and `UpdatedBy`).
    pub fn user_profile_violations(
        &self,
        events_table: &str,
        owner_column: &str,
        updater_column: &str,
    ) -> QueryResultT<Vec<AccessViolation>> {
        let sql = format!(
            "SELECT Timestamp, ReqId, HandlerName, P.{owner_column}, P.{updater_column} \
             FROM {EXECUTIONS_TABLE} as E, {events_table} as P \
             ON E.TxnId = P.TxnId \
             WHERE P.{owner_column} != P.{updater_column} AND P.Type = 'Update' \
             ORDER BY Timestamp ASC"
        );
        let result = self.provenance.query(&sql)?;
        Ok(result
            .rows()
            .iter()
            .map(|row| AccessViolation {
                timestamp: row[0].as_int().unwrap_or(0),
                req_id: row[1].as_text().unwrap_or("").to_string(),
                handler: row[2].as_text().unwrap_or("").to_string(),
                detail: format!(
                    "profile of `{}` updated by `{}`",
                    row[3].as_text().unwrap_or("?"),
                    row[4].as_text().unwrap_or("?")
                ),
            })
            .collect())
    }

    /// The *Authentication* pattern: reads of a protected table performed
    /// by requests whose handler is not in the allow-list of
    /// authenticated entry points.
    pub fn unauthenticated_reads(
        &self,
        events_table: &str,
        authenticated_handlers: &[&str],
    ) -> QueryResultT<Vec<AccessViolation>> {
        let sql = format!(
            "SELECT Timestamp, ReqId, HandlerName \
             FROM {EXECUTIONS_TABLE} as E, {events_table} as P \
             ON E.TxnId = P.TxnId \
             WHERE P.Type = 'Read' \
             ORDER BY Timestamp ASC"
        );
        let result = self.provenance.query(&sql)?;
        Ok(result
            .rows()
            .iter()
            .filter(|row| {
                let handler = row[2].as_text().unwrap_or("");
                !authenticated_handlers.contains(&handler)
            })
            .map(|row| AccessViolation {
                timestamp: row[0].as_int().unwrap_or(0),
                req_id: row[1].as_text().unwrap_or("").to_string(),
                handler: row[2].as_text().unwrap_or("").to_string(),
                detail: format!(
                    "`{}` read protected data without being an authenticated entry point",
                    row[2].as_text().unwrap_or("?")
                ),
            })
            .collect())
    }

    /// Raw list of external calls (from the provenance tables), useful to
    /// review what left the system in a time window.
    pub fn external_calls(&self) -> QueryResultT<ResultSet> {
        self.provenance.query(&format!(
            "SELECT ReqId, HandlerName, Service, Payload, Timestamp \
             FROM {EXTERNAL_CALLS_TABLE} ORDER BY Timestamp ASC"
        ))
    }

    /// Traces tainted data forward from `origin_req_id` (paper §4.2,
    /// "detecting data exfiltration through workflows").
    ///
    /// Taint propagation: every (table, key) the origin request wrote is
    /// tainted; any later transaction that *read* a tainted key taints its
    /// request, whose writes become tainted in turn; external calls of
    /// tainted requests are candidate exfiltration points.
    pub fn trace_data_flow(&self, origin_req_id: &str) -> DataFlowReport {
        let all_txns = self.provenance.all_txns();
        let mut tainted_requests: Vec<String> = vec![origin_req_id.to_string()];
        let mut tainted_keys: BTreeSet<(String, String)> = BTreeSet::new();
        let mut tainted_writes: Vec<(String, String)> = Vec::new();

        // Seed with the origin's writes.
        for txn in all_txns.iter().filter(|t| t.ctx.req_id == origin_req_id) {
            for write in &txn.writes {
                let entry = (write.table.clone(), write.key.to_string());
                if tainted_keys.insert(entry.clone()) {
                    tainted_writes.push(entry);
                }
            }
        }

        // Propagate forward in commit order until a fixed point. The
        // number of passes is bounded by the number of requests.
        let mut changed = true;
        while changed {
            changed = false;
            for txn in &all_txns {
                if !txn.committed || tainted_requests.contains(&txn.ctx.req_id) {
                    continue;
                }
                let reads_tainted = txn.reads.iter().any(|read| {
                    read.rows.iter().any(|(key, _)| {
                        tainted_keys.contains(&(read.table.clone(), key.to_string()))
                    })
                });
                if reads_tainted {
                    tainted_requests.push(txn.ctx.req_id.clone());
                    changed = true;
                }
                if tainted_requests.contains(&txn.ctx.req_id) {
                    for write in &txn.writes {
                        let entry = (write.table.clone(), write.key.to_string());
                        if tainted_keys.insert(entry.clone()) {
                            tainted_writes.push(entry);
                            changed = true;
                        }
                    }
                }
            }
        }

        // External calls of tainted requests.
        let mut exfiltration_candidates = Vec::new();
        if let Ok(calls) = self.external_calls() {
            for row in calls.rows() {
                let req = row[0].as_text().unwrap_or("").to_string();
                if tainted_requests.contains(&req) {
                    exfiltration_candidates.push((
                        req,
                        row[2].as_text().unwrap_or("").to_string(),
                        row[3].as_text().unwrap_or("").to_string(),
                    ));
                }
            }
        }

        DataFlowReport {
            origin_req_id: origin_req_id.to_string(),
            tainted_requests,
            tainted_writes,
            exfiltration_candidates,
        }
    }
}

impl std::fmt::Debug for Security<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Security").finish()
    }
}
