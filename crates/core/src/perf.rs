//! Performance debugging over provenance traces.
//!
//! The paper's §5 ("Debugging Performance and Data Issues") proposes
//! extending TROD's always-on tracing with performance metrics so that the
//! same provenance database that answers correctness questions can answer
//! "which handler is slow and why?" questions, replacing the manual
//! annotations required by commercial APM tools.
//!
//! No additional instrumentation is needed: the interposition layer
//! already timestamps every handler start/end (the `Requests` table) and
//! every transaction (the `Executions` table), so latencies per handler,
//! per request and per transaction fall out of the captured provenance.
//! [`Perf`] computes them and exposes the typical APM-style views:
//! per-handler latency distributions, slow-request search, and per-request
//! workflow breakdowns (the "transaction trace" of New Relic / Retrace).

use std::collections::BTreeMap;

use trod_provenance::{ProvenanceStore, RequestRecord};

/// Latency distribution for one handler, in trace-clock microseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct HandlerLatency {
    /// Handler name.
    pub handler: String,
    /// Completed invocations observed.
    pub invocations: usize,
    /// Invocations that returned an application error.
    pub errors: usize,
    /// Mean latency.
    pub mean_us: f64,
    /// Median latency.
    pub p50_us: i64,
    /// 95th-percentile latency.
    pub p95_us: i64,
    /// Maximum latency.
    pub max_us: i64,
    /// Committed transactions run by this handler across all invocations.
    pub transactions: usize,
}

/// One completed request invocation that exceeded a latency threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowRequest {
    pub req_id: String,
    pub handler: String,
    pub latency_us: i64,
    /// Transactions the invocation ran (committed or aborted).
    pub transactions: usize,
    /// Whether the handler reported success.
    pub ok: bool,
}

/// One node of a request's workflow breakdown: a handler invocation with
/// its own latency, the transactions it ran, and its child invocations
/// (handlers it called over RPC).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    pub handler: String,
    pub start_us: i64,
    pub end_us: Option<i64>,
    pub latency_us: Option<i64>,
    /// Transactions attributed to this handler within the request.
    pub transactions: usize,
    /// Time spent inside this handler's transactions (sum of per-txn gaps
    /// between consecutive trace timestamps is not recoverable, so this is
    /// the count-weighted share; see [`Perf::request_breakdown`]).
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Latency of this span minus the latency of its children — the time
    /// spent in the handler's own code and transactions.
    pub fn self_time_us(&self) -> Option<i64> {
        let own = self.latency_us?;
        let children: i64 = self.children.iter().filter_map(|c| c.latency_us).sum();
        Some((own - children).max(0))
    }

    /// Total number of spans in this subtree (including this one).
    pub fn span_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(SpanNode::span_count)
            .sum::<usize>()
    }
}

/// End-to-end latency summary of one request (its root handler invocation).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestProfile {
    pub req_id: String,
    /// The root handler (the one invoked directly, not over RPC).
    pub root: SpanNode,
    /// End-to-end latency (root handler start to end).
    pub end_to_end_us: Option<i64>,
    /// Total handler invocations in the workflow.
    pub invocations: usize,
    /// Total transactions run by the request.
    pub transactions: usize,
}

/// Performance-debugging helper bound to a provenance store.
pub struct Perf<'a> {
    provenance: &'a ProvenanceStore,
}

impl<'a> Perf<'a> {
    pub(crate) fn new(provenance: &'a ProvenanceStore) -> Self {
        Perf { provenance }
    }

    /// Per-handler latency distributions across all completed invocations,
    /// sorted by mean latency descending (slowest handler first).
    pub fn handler_latencies(&self) -> Vec<HandlerLatency> {
        let mut samples: BTreeMap<String, Vec<(i64, bool)>> = BTreeMap::new();
        for rec in self.provenance.all_request_records() {
            if let Some(latency) = latency_of(&rec) {
                samples
                    .entry(rec.handler.clone())
                    .or_default()
                    .push((latency, rec.ok.unwrap_or(false)));
            }
        }
        let mut txn_counts: BTreeMap<String, usize> = BTreeMap::new();
        for txn in self.provenance.all_txns() {
            if txn.committed {
                *txn_counts.entry(txn.ctx.handler.clone()).or_default() += 1;
            }
        }

        let mut out: Vec<HandlerLatency> = samples
            .into_iter()
            .map(|(handler, mut lat)| {
                lat.sort_by_key(|(us, _)| *us);
                let values: Vec<i64> = lat.iter().map(|(us, _)| *us).collect();
                let errors = lat.iter().filter(|(_, ok)| !ok).count();
                let sum: i64 = values.iter().sum();
                let transactions = txn_counts.get(&handler).copied().unwrap_or(0);
                HandlerLatency {
                    invocations: values.len(),
                    errors,
                    mean_us: sum as f64 / values.len() as f64,
                    p50_us: percentile(&values, 0.50),
                    p95_us: percentile(&values, 0.95),
                    max_us: *values.last().unwrap_or(&0),
                    transactions,
                    handler,
                }
            })
            .collect();
        out.sort_by(|a, b| b.mean_us.total_cmp(&a.mean_us));
        out
    }

    /// Completed handler invocations whose latency exceeded
    /// `threshold_us`, slowest first.
    pub fn slow_requests(&self, threshold_us: i64) -> Vec<SlowRequest> {
        let mut txns_per_invocation: BTreeMap<(String, String), usize> = BTreeMap::new();
        for txn in self.provenance.all_txns() {
            *txns_per_invocation
                .entry((txn.ctx.req_id.clone(), txn.ctx.handler.clone()))
                .or_default() += 1;
        }
        let mut out: Vec<SlowRequest> = self
            .provenance
            .all_request_records()
            .into_iter()
            .filter_map(|rec| {
                let latency = latency_of(&rec)?;
                if latency < threshold_us {
                    return None;
                }
                let transactions = txns_per_invocation
                    .get(&(rec.req_id.clone(), rec.handler.clone()))
                    .copied()
                    .unwrap_or(0);
                Some(SlowRequest {
                    req_id: rec.req_id,
                    handler: rec.handler,
                    latency_us: latency,
                    transactions,
                    ok: rec.ok.unwrap_or(false),
                })
            })
            .collect();
        out.sort_by_key(|s| std::cmp::Reverse(s.latency_us));
        out
    }

    /// The end-to-end workflow breakdown of one request: the tree of
    /// handler invocations (root handler plus RPC callees), each annotated
    /// with its latency and transaction count.
    ///
    /// Returns `None` if the request was never traced.
    pub fn request_breakdown(&self, req_id: &str) -> Option<RequestProfile> {
        let records = self.provenance.request_records(req_id);
        if records.is_empty() {
            return None;
        }
        let mut txns_per_handler: BTreeMap<String, usize> = BTreeMap::new();
        let mut total_txns = 0usize;
        for txn in self.provenance.txns_for_request(req_id) {
            *txns_per_handler.entry(txn.ctx.handler.clone()).or_default() += 1;
            total_txns += 1;
        }

        // The root invocation is the earliest one without a parent; if the
        // trace is truncated and every record has a parent, fall back to
        // the earliest record.
        let root_idx = records
            .iter()
            .enumerate()
            .find(|(_, r)| r.parent.is_none())
            .map(|(i, _)| i)
            .unwrap_or(0);
        let root = build_span(&records, root_idx, &txns_per_handler);
        let invocations = records.len();
        Some(RequestProfile {
            req_id: req_id.to_string(),
            end_to_end_us: root.latency_us,
            invocations,
            transactions: total_txns,
            root,
        })
    }

    /// Profiles of every traced request, slowest end-to-end first.
    /// Requests still in flight (no end timestamp) sort last.
    pub fn all_request_profiles(&self) -> Vec<RequestProfile> {
        let mut out: Vec<RequestProfile> = self
            .provenance
            .request_ids()
            .iter()
            .filter_map(|r| self.request_breakdown(r))
            .collect();
        out.sort_by_key(|p| std::cmp::Reverse(p.end_to_end_us.unwrap_or(-1)));
        out
    }
}

impl std::fmt::Debug for Perf<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Perf").finish()
    }
}

fn latency_of(rec: &RequestRecord) -> Option<i64> {
    rec.end_ts.map(|end| (end - rec.start_ts).max(0))
}

/// Nearest-rank percentile over a sorted slice. Returns 0 for empty input.
fn percentile(sorted: &[i64], q: f64) -> i64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn build_span(
    records: &[RequestRecord],
    idx: usize,
    txns_per_handler: &BTreeMap<String, usize>,
) -> SpanNode {
    let rec = &records[idx];
    // Children: invocations whose parent is this handler and whose start
    // falls inside this invocation's window. Handler names are unique per
    // request in the runtime's workflow model, so parent-name matching is
    // unambiguous; the window check guards against repeated invocations of
    // the same handler within one request.
    let end = rec.end_ts.unwrap_or(i64::MAX);
    let children: Vec<SpanNode> = records
        .iter()
        .enumerate()
        .filter(|(i, r)| {
            *i != idx
                && r.parent.as_deref() == Some(rec.handler.as_str())
                && r.start_ts >= rec.start_ts
                && r.start_ts <= end
        })
        .map(|(i, _)| build_span(records, i, txns_per_handler))
        .collect();
    SpanNode {
        handler: rec.handler.clone(),
        start_us: rec.start_ts,
        end_us: rec.end_ts,
        latency_us: latency_of(rec),
        transactions: txns_per_handler.get(&rec.handler).copied().unwrap_or(0),
        children,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trod_provenance::ProvenanceStore;
    use trod_trace::Tracer;

    /// Builds a provenance store from a scripted set of handler events.
    fn store_with_requests(specs: &[(&str, &str, Option<&str>, bool)]) -> ProvenanceStore {
        let store = ProvenanceStore::new();
        let tracer = Tracer::new();
        // Start every handler in order, then end them in reverse order so
        // parents envelope children.
        for (req, handler, parent, _) in specs {
            tracer.handler_start(req, handler, *parent, "{}");
        }
        for (req, handler, _, ok) in specs.iter().rev() {
            tracer.handler_end(req, handler, "out", *ok);
        }
        store.ingest(tracer.drain());
        store
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile(&v, 0.50), 5);
        assert_eq!(percentile(&v, 0.95), 10);
        assert_eq!(percentile(&v, 1.0), 10);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[42], 0.95), 42);
    }

    #[test]
    fn handler_latencies_group_and_sort() {
        let store = store_with_requests(&[
            ("R1", "checkout", None, true),
            ("R2", "checkout", None, true),
            ("R3", "lookup", None, false),
        ]);
        let perf = Perf::new(&store);
        let stats = perf.handler_latencies();
        assert_eq!(stats.len(), 2);
        let checkout = stats.iter().find(|s| s.handler == "checkout").unwrap();
        assert_eq!(checkout.invocations, 2);
        assert_eq!(checkout.errors, 0);
        assert!(checkout.mean_us >= 0.0);
        assert!(checkout.p95_us >= checkout.p50_us);
        let lookup = stats.iter().find(|s| s.handler == "lookup").unwrap();
        assert_eq!(lookup.errors, 1);
    }

    #[test]
    fn slow_requests_filters_by_threshold() {
        let store = store_with_requests(&[("R1", "checkout", None, true)]);
        let perf = Perf::new(&store);
        // Threshold 0: everything qualifies.
        let slow = perf.slow_requests(0);
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].req_id, "R1");
        // Impossible threshold: nothing qualifies.
        assert!(perf.slow_requests(i64::MAX).is_empty());
    }

    #[test]
    fn request_breakdown_builds_workflow_tree() {
        let store = store_with_requests(&[
            ("R1", "checkout", None, true),
            ("R1", "reserve", Some("checkout"), true),
            ("R1", "charge", Some("checkout"), true),
        ]);
        let perf = Perf::new(&store);
        let profile = perf.request_breakdown("R1").unwrap();
        assert_eq!(profile.invocations, 3);
        assert_eq!(profile.root.handler, "checkout");
        assert_eq!(profile.root.children.len(), 2);
        assert_eq!(profile.root.span_count(), 3);
        let e2e = profile.end_to_end_us.unwrap();
        for child in &profile.root.children {
            assert!(child.latency_us.unwrap() <= e2e);
        }
        assert!(profile.root.self_time_us().unwrap() >= 0);
        assert!(perf.request_breakdown("missing").is_none());
    }

    #[test]
    fn all_request_profiles_sorted_slowest_first() {
        let store =
            store_with_requests(&[("R1", "checkout", None, true), ("R2", "lookup", None, true)]);
        let perf = Perf::new(&store);
        let profiles = perf.all_request_profiles();
        assert_eq!(profiles.len(), 2);
        assert!(
            profiles[0].end_to_end_us.unwrap_or(0) >= profiles[1].end_to_end_us.unwrap_or(0),
            "profiles must be sorted slowest first"
        );
    }

    #[test]
    fn open_invocations_are_not_counted_as_completed() {
        let store = ProvenanceStore::new();
        let tracer = Tracer::new();
        tracer.handler_start("R1", "checkout", None, "{}");
        // No handler_end: the request is still in flight.
        store.ingest(tracer.drain());
        let perf = Perf::new(&store);
        assert!(perf.handler_latencies().is_empty());
        assert!(perf.slow_requests(0).is_empty());
        let profile = perf.request_breakdown("R1").unwrap();
        assert!(profile.end_to_end_us.is_none());
    }
}
