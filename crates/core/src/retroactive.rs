//! Retroactive programming (paper §3.6).
//!
//! Retroactive programming re-executes *original* production requests
//! against *modified* code on a past database snapshot. Because the patch
//! may change transaction boundaries, TROD cannot simply re-apply the
//! transaction log; it must actually re-execute the handlers, and it must
//! consider the different orders in which the conflicting requests could
//! have interleaved. The conflict-aware ordering enumeration comes from
//! [`crate::interleave`]; this module drives the re-executions and
//! evaluates invariants over every outcome.

use std::fmt;
use std::sync::Arc;

use trod_db::{Database, DbError, IsolationLevel, Ts};
use trod_kv::{KvStore, Session};
use trod_provenance::{ProvenanceStore, RequestRecord};
use trod_runtime::{Args, HandlerRegistry, Runtime};

use crate::interleave::ConflictGraph;
use crate::invariant::{check_all, Invariant};
use crate::replay::{fork_environment, ReplayError};

/// Errors raised while preparing or running a retroactive exploration.
#[derive(Debug, Clone, PartialEq)]
pub enum RetroactiveError {
    /// No requests were selected for re-execution.
    NoRequestsSelected,
    /// A selected request has no traced root-handler invocation.
    MissingRequestRecord(String),
    /// The recorded arguments for a request could not be decoded.
    BadArguments { req_id: String, detail: String },
    /// The development environment could not be forked at the requested
    /// snapshot (e.g. the history was truncated without retention).
    Fork(ReplayError),
    /// An underlying storage error.
    Storage(DbError),
}

impl fmt::Display for RetroactiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetroactiveError::NoRequestsSelected => {
                write!(f, "no requests selected for retroactive re-execution")
            }
            RetroactiveError::MissingRequestRecord(r) => {
                write!(f, "request `{r}` has no traced root handler invocation")
            }
            RetroactiveError::BadArguments { req_id, detail } => {
                write!(
                    f,
                    "cannot decode recorded arguments of `{req_id}`: {detail}"
                )
            }
            RetroactiveError::Fork(e) => write!(f, "cannot fork the environment: {e}"),
            RetroactiveError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for RetroactiveError {}

impl From<DbError> for RetroactiveError {
    fn from(e: DbError) -> Self {
        RetroactiveError::Storage(e)
    }
}

/// The outcome of re-executing one request in one ordering.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// The re-executed request's id (original id with a prime suffix,
    /// mirroring the paper's Figure 3: R1 → R1').
    pub req_id: String,
    /// The original request id.
    pub original_req_id: String,
    /// The root handler that was re-executed.
    pub handler: String,
    /// Whether the handler completed without error.
    pub ok: bool,
    /// The handler's output (or error message).
    pub output: String,
    /// The original production output, for comparison.
    pub original_output: Option<String>,
    /// Whether the original production execution succeeded.
    pub original_ok: Option<bool>,
}

impl RequestOutcome {
    /// True if success/failure changed relative to the original execution.
    pub fn outcome_changed(&self) -> bool {
        match self.original_ok {
            Some(orig) => orig != self.ok,
            None => false,
        }
    }
}

/// The outcome of one complete re-execution ordering.
#[derive(Debug, Clone)]
pub struct OrderingOutcome {
    /// The order in which the original requests were re-executed.
    pub order: Vec<String>,
    /// Per-request outcomes, in execution order.
    pub outcomes: Vec<RequestOutcome>,
    /// Invariant violations observed on the final state.
    pub violations: Vec<String>,
    /// The development environment this ordering ran in — both stores,
    /// forked at the branch snapshot — left available for further
    /// inspection (same shape as `ReplaySession::dev_session`).
    pub dev: Session,
}

impl OrderingOutcome {
    /// The development database produced by this ordering.
    pub fn dev_db(&self) -> &Database {
        self.dev.database()
    }

    /// The development key-value store of this ordering, when the
    /// production session is polyglot.
    pub fn dev_kv(&self) -> Option<&KvStore> {
        self.dev.kv_store()
    }
}

impl OrderingOutcome {
    /// True if no invariant was violated and every re-executed request
    /// succeeded or failed exactly as it originally did.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The full report of a retroactive exploration.
#[derive(Debug, Clone)]
pub struct RetroactiveReport {
    /// The snapshot timestamp re-execution branched from.
    pub snapshot_ts: Ts,
    /// Number of conflicting request pairs found.
    pub conflicting_pairs: usize,
    /// One outcome per explored ordering (the original order first).
    pub orderings: Vec<OrderingOutcome>,
}

impl RetroactiveReport {
    /// True if every explored ordering satisfied every invariant.
    pub fn all_orderings_clean(&self) -> bool {
        self.orderings.iter().all(OrderingOutcome::is_clean)
    }

    /// All distinct invariant violations across orderings.
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for ordering in &self.orderings {
            for v in &ordering.violations {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
        }
        out
    }

    /// Outcomes whose success/failure differs from the original execution
    /// (useful to spot regressions introduced by a patch).
    pub fn changed_outcomes(&self) -> Vec<&RequestOutcome> {
        self.orderings
            .iter()
            .flat_map(|o| o.outcomes.iter())
            .filter(|o| o.outcome_changed())
            .collect()
    }
}

/// Configures and runs a retroactive exploration.
pub struct RetroactiveBuilder {
    provenance: Arc<ProvenanceStore>,
    production: Session,
    registry: HandlerRegistry,
    req_ids: Vec<String>,
    snapshot_ts: Option<Ts>,
    max_orderings: usize,
    isolation: IsolationLevel,
    invariants: Vec<Invariant>,
}

impl RetroactiveBuilder {
    /// Creates a builder; used through [`crate::Trod::retroactive`]. The
    /// production session supplies both stores: each explored ordering
    /// runs the patched handlers in a fresh fork of the whole environment
    /// (relational database and, for polyglot applications, the key-value
    /// store) at the branch snapshot.
    pub fn new(
        provenance: Arc<ProvenanceStore>,
        production: Session,
        registry: HandlerRegistry,
    ) -> Self {
        RetroactiveBuilder {
            provenance,
            production,
            registry,
            req_ids: Vec::new(),
            snapshot_ts: None,
            max_orderings: 12,
            isolation: IsolationLevel::Serializable,
            invariants: Vec::new(),
        }
    }

    /// Selects explicit requests to re-execute (in original order).
    pub fn requests(mut self, req_ids: &[&str]) -> Self {
        self.req_ids = req_ids.iter().map(|r| r.to_string()).collect();
        self
    }

    /// Selects every traced request that touched `table` — the paper's
    /// suggestion for thorough patch testing ("serve past user requests
    /// directly related to this bug and other requests that may touch the
    /// same table", §4.1).
    pub fn requests_touching_table(mut self, table: &str) -> Self {
        let mut req_ids = Vec::new();
        for txn in self.provenance.txns_touching_table(table) {
            if !req_ids.contains(&txn.ctx.req_id) {
                req_ids.push(txn.ctx.req_id.clone());
            }
        }
        self.req_ids = req_ids;
        self
    }

    /// Branches from an explicit snapshot timestamp instead of the
    /// earliest snapshot of the selected requests.
    pub fn snapshot_at(mut self, ts: Ts) -> Self {
        self.snapshot_ts = Some(ts);
        self
    }

    /// Caps the number of explored orderings (default 12).
    pub fn max_orderings(mut self, n: usize) -> Self {
        self.max_orderings = n.max(1);
        self
    }

    /// Sets the isolation level the patched handlers run under
    /// (default: serializable).
    pub fn isolation(mut self, isolation: IsolationLevel) -> Self {
        self.isolation = isolation;
        self
    }

    /// Adds an invariant evaluated on the final state of every ordering.
    pub fn invariant(mut self, invariant: Invariant) -> Self {
        self.invariants.push(invariant);
        self
    }

    /// Runs the exploration.
    pub fn run(self) -> Result<RetroactiveReport, RetroactiveError> {
        if self.req_ids.is_empty() {
            return Err(RetroactiveError::NoRequestsSelected);
        }

        // Root handler invocation (parent == None) and its arguments, for
        // every selected request.
        let mut roots: Vec<(String, RequestRecord, Args)> = Vec::new();
        for req_id in &self.req_ids {
            let records = self.provenance.request_records(req_id);
            let root = records
                .iter()
                .find(|r| r.parent.is_none())
                .cloned()
                .ok_or_else(|| RetroactiveError::MissingRequestRecord(req_id.clone()))?;
            let args =
                Args::decode(&root.args).map_err(|detail| RetroactiveError::BadArguments {
                    req_id: req_id.clone(),
                    detail,
                })?;
            roots.push((req_id.clone(), root, args));
        }

        // Snapshot: the earliest snapshot any selected request's
        // transaction read from, unless overridden.
        let selected_txns: Vec<_> = self
            .req_ids
            .iter()
            .flat_map(|r| self.provenance.txns_for_request(r))
            .filter(|t| t.committed)
            .collect();
        let snapshot_ts = self.snapshot_ts.unwrap_or_else(|| {
            selected_txns
                .iter()
                .map(|t| t.snapshot_ts)
                .min()
                .unwrap_or(0)
        });

        // Conflict-aware ordering enumeration.
        let graph = ConflictGraph::build(&self.req_ids, &selected_txns);
        let orderings = graph.enumerate_orderings(self.max_orderings);

        let mut outcomes = Vec::with_capacity(orderings.len());
        for order in orderings {
            // Fork the whole environment — both stores — through the same
            // retention-aware path replay uses, so retroactive runs keep
            // working for history older than the GC watermark too.
            let dev = fork_environment(&self.provenance, &self.production, snapshot_ts)
                .map_err(RetroactiveError::Fork)?;
            let mut builder = Runtime::builder(dev.database().clone(), self.registry.clone())
                .default_isolation(self.isolation)
                .request_prefix("RETRO-");
            if let Some(kv) = dev.kv_store() {
                builder = builder.kv(kv.clone());
            }
            let runtime = builder.build();

            let mut request_outcomes = Vec::with_capacity(order.len());
            for req_id in &order {
                let (_, root, args) = roots
                    .iter()
                    .find(|(r, _, _)| r == req_id)
                    .expect("ordering only permutes selected requests");
                let replay_id = format!("{req_id}'");
                let result =
                    runtime.handle_request_with_id(&replay_id, &root.handler, args.clone());
                let (ok, output) = match &result.output {
                    Ok(v) => (true, v.to_string()),
                    Err(e) => (false, e.to_string()),
                };
                request_outcomes.push(RequestOutcome {
                    req_id: replay_id,
                    original_req_id: req_id.clone(),
                    handler: root.handler.clone(),
                    ok,
                    output,
                    original_output: root.output.clone(),
                    original_ok: root.ok,
                });
            }

            let violations = check_all(dev.database(), &self.invariants);
            outcomes.push(OrderingOutcome {
                order,
                outcomes: request_outcomes,
                violations,
                dev,
            });
        }

        Ok(RetroactiveReport {
            snapshot_ts,
            conflicting_pairs: graph.conflict_count(),
            orderings: outcomes,
        })
    }
}

impl fmt::Debug for RetroactiveBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RetroactiveBuilder")
            .field("requests", &self.req_ids)
            .field("max_orderings", &self.max_orderings)
            .field("invariants", &self.invariants.len())
            .finish()
    }
}
