//! Declarative debugging helpers.
//!
//! The paper's §3.3/§3.4 workflow is: a developer notices a symptom
//! (duplicated rows, a failed request), then queries the provenance
//! database to find which requests and handlers caused it. Raw SQL is
//! always available through [`trod_core::Trod::query`]; this module adds
//! the most common investigations as typed helpers.

use trod_db::Value;
use trod_provenance::{ProvenanceStore, EXECUTIONS_TABLE};
use trod_query::{QueryResultT, ResultSet};
use trod_trace::TxnTrace;

/// One row of the "who touched this data?" investigation.
#[derive(Debug, Clone, PartialEq)]
pub struct WriterRecord {
    pub timestamp: i64,
    pub req_id: String,
    pub handler: String,
    pub txn_id: i64,
    pub event_type: String,
}

/// Declarative-debugging helper bound to a provenance store.
pub struct Declarative<'a> {
    provenance: &'a ProvenanceStore,
}

impl<'a> Declarative<'a> {
    pub(crate) fn new(provenance: &'a ProvenanceStore) -> Self {
        Declarative { provenance }
    }

    /// Raw SQL passthrough.
    pub fn query(&self, sql: &str) -> QueryResultT<ResultSet> {
        self.provenance.query(sql)
    }

    /// The paper's §3.3 query, generalised: find the requests whose
    /// transactions performed `event_type` (e.g. `"Insert"`) events on
    /// `app_table` matching all `column_filters` (column name, value),
    /// ordered by timestamp.
    ///
    /// For the Moodle bug this is called as
    /// `find_writers("forum_sub", "Insert", &[("UserId", "U1"), ("Forum", "F2")])`
    /// and returns the two `subscribeUser` requests that inserted the
    /// duplicated subscription.
    pub fn find_writers(
        &self,
        app_table: &str,
        event_type: &str,
        column_filters: &[(&str, &str)],
    ) -> QueryResultT<Vec<WriterRecord>> {
        let event_table = match self.provenance.event_table_for(app_table) {
            Some(t) => t,
            None => return Ok(Vec::new()),
        };
        let mut filters = format!("F.Type = '{event_type}'");
        for (column, value) in column_filters {
            filters.push_str(&format!(" AND F.{column} = '{value}'"));
        }
        let sql = format!(
            "SELECT Timestamp, ReqId, HandlerName, E.TxnId \
             FROM {EXECUTIONS_TABLE} as E, {event_table} as F \
             ON E.TxnId = F.TxnId \
             WHERE {filters} \
             ORDER BY Timestamp ASC"
        );
        let result = self.query(&sql)?;
        Ok(result
            .rows()
            .iter()
            .map(|row| WriterRecord {
                timestamp: row[0].as_int().unwrap_or(0),
                req_id: row[1].as_text().unwrap_or("").to_string(),
                handler: row[2].as_text().unwrap_or("").to_string(),
                txn_id: row[3].as_int().unwrap_or(0),
                event_type: event_type.to_string(),
            })
            .collect())
    }

    /// All transaction executions belonging to a request, in commit order
    /// (the per-request view of the paper's Table 1).
    pub fn executions_for_request(&self, req_id: &str) -> QueryResultT<ResultSet> {
        self.query(&format!(
            "SELECT TxnId, Timestamp, HandlerName, ReqId, Metadata \
             FROM {EXECUTIONS_TABLE} WHERE ReqId = '{req_id}' ORDER BY Timestamp ASC"
        ))
    }

    /// Requests whose committed transactions interleave with the given
    /// request's transaction span — the "which concurrent executions may
    /// have updated the database between my transactions?" question of
    /// §3.5, answered from provenance alone.
    pub fn concurrent_requests(&self, req_id: &str) -> Vec<String> {
        let own = self.provenance.txns_for_request(req_id);
        let committed: Vec<&TxnTrace> = own.iter().filter(|t| t.committed).collect();
        let (first, last) = match (committed.first(), committed.last()) {
            (Some(f), Some(l)) => (f.snapshot_ts, l.serialization_ts()),
            _ => return Vec::new(),
        };
        let mut out = Vec::new();
        for txn in self.provenance.all_txns() {
            if txn.ctx.req_id == req_id || !txn.committed {
                continue;
            }
            // Overlaps the (first snapshot, last serialization point) window.
            if txn.serialization_ts() > first
                && txn.snapshot_ts < last
                && !out.contains(&txn.ctx.req_id)
            {
                out.push(txn.ctx.req_id.clone());
            }
        }
        out
    }

    /// Handler names ranked by how many committed transactions they ran
    /// (a quick "where is the database traffic coming from?" view).
    pub fn handler_activity(&self) -> QueryResultT<ResultSet> {
        self.query(&format!(
            "SELECT HandlerName, COUNT(*) AS txns FROM {EXECUTIONS_TABLE} \
             WHERE Committed = TRUE GROUP BY HandlerName ORDER BY txns DESC"
        ))
    }

    /// Requests that aborted at least one transaction (often the first
    /// visible symptom of a concurrency problem).
    pub fn requests_with_aborts(&self) -> QueryResultT<Vec<String>> {
        let result = self.query(&format!(
            "SELECT ReqId FROM {EXECUTIONS_TABLE} WHERE Committed = FALSE ORDER BY Timestamp"
        ))?;
        let mut out = Vec::new();
        for row in result.rows() {
            if let Value::Text(req) = &row[0] {
                if !out.contains(req) {
                    out.push(req.clone());
                }
            }
        }
        Ok(out)
    }
}

impl std::fmt::Debug for Declarative<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Declarative").finish()
    }
}
