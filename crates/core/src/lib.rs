//! # trod-core
//!
//! The TROD debugger itself — the primary contribution of *Transactions
//! Make Debugging Easy* (CIDR 2023) — built on the substrates in the
//! sibling crates:
//!
//! | Paper concept | This crate |
//! |---|---|
//! | Declarative debugging over provenance (§3.3–3.4) | [`Declarative`], [`Trod::query`] |
//! | Faithful bug replay with per-transaction breakpoints (§3.5) | [`ReplaySession`] |
//! | Retroactive programming over past events (§3.6) | [`RetroactiveBuilder`], [`RetroactiveReport`] |
//! | Conflict-aware re-execution ordering enumeration (§3.6) | [`interleave::ConflictGraph`] |
//! | Access-control & exfiltration forensics (§4.2) | [`Security`] |
//! | Bug-fix validation invariants (§4.1) | [`Invariant`] |
//!
//! The entry point is [`Trod`]: attach it to a running
//! [`trod_runtime::Runtime`], let the application serve (traced)
//! requests, call [`Trod::sync`] (or run a background flusher) to move
//! traces into the provenance database, and then debug.

/// The shared hand-rolled JSON module (one escaper, one number
/// formatter, writer + strict parser). It lives in `trod-trace` — the
/// lowest crate that needs it for wire-format serialization — and is
/// re-exported here so debugger-level consumers (the server, tooling)
/// can reach it as `trod_core::json`.
pub mod json {
    pub use trod_trace::json::*;
}

/// Wire-format serialization of engine types (values, CDC records,
/// aligned-log entries, traces); see [`trod_trace::wire`].
pub mod wire {
    pub use trod_trace::wire::*;
}

pub mod debugger;
pub mod declarative;
pub mod interleave;
pub mod invariant;
pub mod perf;
pub mod quality;
pub mod reenactment;
pub mod replay;
pub mod retroactive;
pub mod security;

pub use debugger::Trod;
pub use declarative::{Declarative, WriterRecord};
pub use interleave::{txns_conflict, ConflictGraph};
pub use invariant::{check_all, Invariant};
pub use perf::{HandlerLatency, Perf, RequestProfile, SlowRequest, SpanNode};
pub use quality::{
    BlameRecord, BlamedViolation, Quality, QualityReport, QualityRule, QualityViolation,
};
pub use reenactment::{Anomaly, AnomalyKind, ReenactmentReport, Reenactor};
pub use replay::{ReplayError, ReplayReport, ReplaySession, ReplayStep, StepReport};
pub use retroactive::{
    OrderingOutcome, RequestOutcome, RetroactiveBuilder, RetroactiveError, RetroactiveReport,
};
pub use security::{AccessViolation, DataFlowReport, Security};
