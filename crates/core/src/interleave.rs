//! Conflict analysis and re-execution ordering enumeration (paper §3.6).
//!
//! Retroactive programming must consider different orders in which the
//! original concurrent requests could be re-executed, because the patched
//! code may change transaction boundaries and therefore outcomes. Naively
//! there are `n!` request orders (and exponentially more instruction
//! interleavings); the paper's observation is that only *conflicting*
//! transactions — those sharing state — can produce different outcomes
//! when reordered. This module builds a request-level conflict relation
//! from the traced read/write sets and enumerates only orderings that
//! differ in the relative order of at least one conflicting pair.

use std::collections::{BTreeMap, BTreeSet};

use trod_trace::TxnTrace;

/// True if two traced transactions conflict: at least one of them writes a
/// table the other reads or writes, at key granularity where keys are
/// known and at table granularity for predicate reads.
pub fn txns_conflict(a: &TxnTrace, b: &TxnTrace) -> bool {
    directional_conflict(a, b) || directional_conflict(b, a)
}

fn directional_conflict(writer: &TxnTrace, reader: &TxnTrace) -> bool {
    for write in &writer.writes {
        // Write-write on the same key.
        if reader
            .writes
            .iter()
            .any(|w| w.table == write.table && w.key == write.key)
        {
            return true;
        }
        // Write vs. read: a point read of the same key, or any predicate
        // read over the same table (conservative, because the predicate's
        // membership may change).
        for read in &reader.reads {
            if read.table != write.table {
                continue;
            }
            let point_match = read.rows.iter().any(|(key, _)| key == &write.key);
            let predicate_read = read.rows.is_empty()
                || read.query.starts_with("Scan")
                || read.query.starts_with("Check")
                || read.query.starts_with("Count");
            if point_match || predicate_read {
                return true;
            }
        }
    }
    false
}

/// A request-level conflict relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictGraph {
    /// Request ids, in original (first-transaction) order.
    requests: Vec<String>,
    /// Pairs of indices into `requests` that conflict (i < j).
    edges: BTreeSet<(usize, usize)>,
}

impl ConflictGraph {
    /// Builds the conflict relation for the given requests from their
    /// traced transactions. `requests` supplies the original order.
    pub fn build(requests: &[String], txns: &[TxnTrace]) -> Self {
        let mut by_request: BTreeMap<&str, Vec<&TxnTrace>> = BTreeMap::new();
        for txn in txns {
            by_request
                .entry(txn.ctx.req_id.as_str())
                .or_default()
                .push(txn);
        }
        let mut edges = BTreeSet::new();
        for i in 0..requests.len() {
            for j in (i + 1)..requests.len() {
                let a = by_request.get(requests[i].as_str());
                let b = by_request.get(requests[j].as_str());
                if let (Some(a), Some(b)) = (a, b) {
                    let conflicting = a.iter().any(|ta| b.iter().any(|tb| txns_conflict(ta, tb)));
                    if conflicting {
                        edges.insert((i, j));
                    }
                }
            }
        }
        ConflictGraph {
            requests: requests.to_vec(),
            edges,
        }
    }

    /// The requests covered by this graph, in original order.
    pub fn requests(&self) -> &[String] {
        &self.requests
    }

    /// True if the two requests conflict.
    pub fn conflicts(&self, a: &str, b: &str) -> bool {
        let ia = self.requests.iter().position(|r| r == a);
        let ib = self.requests.iter().position(|r| r == b);
        match (ia, ib) {
            (Some(ia), Some(ib)) if ia != ib => {
                let key = (ia.min(ib), ia.max(ib));
                self.edges.contains(&key)
            }
            _ => false,
        }
    }

    /// Number of conflicting pairs.
    pub fn conflict_count(&self) -> usize {
        self.edges.len()
    }

    /// Enumerates re-execution orderings. Two permutations are considered
    /// equivalent (and only one representative is kept) if every
    /// conflicting pair appears in the same relative order in both; the
    /// original order is always the first entry. At most `limit` orderings
    /// are returned.
    pub fn enumerate_orderings(&self, limit: usize) -> Vec<Vec<String>> {
        let n = self.requests.len();
        if n == 0 || limit == 0 {
            return Vec::new();
        }
        let mut seen_signatures = BTreeSet::new();
        let mut out = Vec::new();

        let mut indices: Vec<usize> = (0..n).collect();
        // Heap's algorithm would also work; for the small n used in
        // retroactive runs a recursive enumeration is clearer.
        let mut stack: Vec<(Vec<usize>, Vec<usize>)> = vec![(Vec::new(), indices.clone())];
        // Make sure the identity permutation is explored first so the
        // original order is always included.
        indices.clear();

        while let Some((prefix, remaining)) = stack.pop() {
            if out.len() >= limit {
                break;
            }
            if remaining.is_empty() {
                let signature = self.signature(&prefix);
                if seen_signatures.insert(signature) {
                    out.push(prefix.iter().map(|&i| self.requests[i].clone()).collect());
                }
                continue;
            }
            // Push candidates in reverse so that the smallest index (the
            // original relative order) is explored first.
            for (pos, &candidate) in remaining.iter().enumerate().rev() {
                let mut next_prefix = prefix.clone();
                next_prefix.push(candidate);
                let mut next_remaining = remaining.clone();
                next_remaining.remove(pos);
                stack.push((next_prefix, next_remaining));
            }
        }
        out
    }

    /// The orientation of every conflicting pair under a permutation.
    fn signature(&self, order: &[usize]) -> Vec<bool> {
        let mut position = vec![0usize; self.requests.len()];
        for (pos, &idx) in order.iter().enumerate() {
            position[idx] = pos;
        }
        self.edges
            .iter()
            .map(|&(i, j)| position[i] < position[j])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trod_db::{ChangeRecord, Key, Row, Value};
    use trod_trace::{ReadTrace, TxnContext};

    fn txn(req: &str, reads: Vec<ReadTrace>, writes: Vec<ChangeRecord>) -> TxnTrace {
        TxnTrace {
            txn_id: 0,
            ctx: TxnContext::new(req, "h", "f"),
            timestamp: 0,
            snapshot_ts: 0,
            commit_ts: 1,
            committed: true,
            reads,
            writes,
        }
    }

    fn insert(table: &str, key: i64) -> ChangeRecord {
        ChangeRecord::insert(table, Key::single(key), Row::from(vec![Value::Int(key)]))
    }

    fn scan(table: &str) -> ReadTrace {
        ReadTrace {
            table: table.into(),
            query: format!("Scan {table} WHERE TRUE"),
            read_ts: 0,
            rows: vec![],
        }
    }

    #[test]
    fn conflict_detection_write_write_and_read_write() {
        let a = txn("R1", vec![], vec![insert("t", 1)]);
        let b = txn("R2", vec![], vec![insert("t", 1)]);
        assert!(txns_conflict(&a, &b));

        let c = txn("R3", vec![], vec![insert("t", 2)]);
        // Different keys, no reads: no conflict.
        assert!(!txns_conflict(&a, &c));

        let d = txn("R4", vec![scan("t")], vec![]);
        // Predicate read over a written table conflicts conservatively.
        assert!(txns_conflict(&a, &d));

        let e = txn("R5", vec![scan("other")], vec![]);
        assert!(!txns_conflict(&a, &e));
    }

    #[test]
    fn conflict_graph_and_ordering_enumeration() {
        let reqs: Vec<String> = vec!["R1".into(), "R2".into(), "R3".into()];
        // R1 and R2 both write key 1 (conflict); R3 touches another table.
        let txns = vec![
            txn("R1", vec![scan("t")], vec![insert("t", 1)]),
            txn("R2", vec![scan("t")], vec![insert("t", 2)]),
            txn("R3", vec![], vec![insert("u", 1)]),
        ];
        let graph = ConflictGraph::build(&reqs, &txns);
        assert!(graph.conflicts("R1", "R2"));
        assert!(!graph.conflicts("R1", "R3"));
        assert!(!graph.conflicts("R2", "R3"));
        assert_eq!(graph.conflict_count(), 1);

        let orders = graph.enumerate_orderings(100);
        // Only the relative order of R1 and R2 matters: two classes.
        assert_eq!(orders.len(), 2);
        assert_eq!(orders[0], vec!["R1", "R2", "R3"]);
        assert!(orders
            .iter()
            .any(|o| o.iter().position(|r| r == "R2") < o.iter().position(|r| r == "R1")));
    }

    #[test]
    fn enumeration_respects_limit_and_handles_all_conflicting() {
        let reqs: Vec<String> = (1..=4).map(|i| format!("R{i}")).collect();
        // Every request writes the same key: all pairs conflict, so every
        // permutation is distinct (4! = 24).
        let txns: Vec<TxnTrace> = reqs
            .iter()
            .map(|r| txn(r, vec![], vec![insert("t", 1)]))
            .collect();
        let graph = ConflictGraph::build(&reqs, &txns);
        assert_eq!(graph.conflict_count(), 6);
        let all = graph.enumerate_orderings(1000);
        assert_eq!(all.len(), 24);
        let limited = graph.enumerate_orderings(5);
        assert_eq!(limited.len(), 5);
        assert_eq!(limited[0], vec!["R1", "R2", "R3", "R4"]);
    }

    #[test]
    fn no_conflicts_means_single_ordering() {
        let reqs: Vec<String> = vec!["R1".into(), "R2".into(), "R3".into()];
        let txns: Vec<TxnTrace> = reqs
            .iter()
            .enumerate()
            .map(|(i, r)| txn(r, vec![], vec![insert(&format!("t{i}"), 1)]))
            .collect();
        let graph = ConflictGraph::build(&reqs, &txns);
        let orders = graph.enumerate_orderings(100);
        assert_eq!(orders.len(), 1);
        assert_eq!(orders[0], reqs);
    }

    #[test]
    fn empty_input() {
        let graph = ConflictGraph::build(&[], &[]);
        assert!(graph.enumerate_orderings(10).is_empty());
        assert_eq!(graph.conflict_count(), 0);
    }
}
