//! Data-quality debugging.
//!
//! The paper's §5 argues TROD can simplify debugging data-quality issues —
//! well-formed but incorrect data, usually introduced by human error —
//! because the provenance database already records every change to every
//! application table. This module provides the two halves of that
//! workflow:
//!
//! 1. **Quality rules** ([`QualityRule`]) evaluated against the current
//!    application database: uniqueness, non-null, referential integrity,
//!    numeric ranges, and arbitrary custom checks.
//! 2. **Blame** ([`Quality::blame`] / [`Quality::check`]): for every
//!    violating row, the provenance archive is searched for the
//!    transactions — and therefore the requests and handlers — that wrote
//!    it, so the developer can jump straight from "this row is bad" to
//!    "this request made it bad", and from there to replay or retroactive
//!    testing.

use trod_db::{Database, DbResult, Key, Predicate, Value};
use trod_provenance::ProvenanceStore;

/// A declarative data-quality rule over one application table.
#[derive(Debug, Clone)]
pub enum QualityRule {
    /// The combination of `columns` must be unique across live rows.
    Unique { table: String, columns: Vec<String> },
    /// `column` must not be NULL in any live row.
    NotNull { table: String, column: String },
    /// Every non-NULL value of `table.column` must appear in
    /// `ref_table.ref_column` (referential integrity).
    ForeignKey {
        table: String,
        column: String,
        ref_table: String,
        ref_column: String,
    },
    /// Every non-NULL numeric value of `table.column` must lie in
    /// `[min, max]` (inclusive).
    Range {
        table: String,
        column: String,
        min: f64,
        max: f64,
    },
    /// Rows matching `predicate` are violations (e.g. "negative stock").
    Forbidden {
        name: String,
        table: String,
        predicate: Predicate,
    },
}

impl QualityRule {
    /// Convenience constructor for [`QualityRule::Unique`].
    pub fn unique(table: &str, columns: &[&str]) -> Self {
        QualityRule::Unique {
            table: table.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
        }
    }

    /// Convenience constructor for [`QualityRule::NotNull`].
    pub fn not_null(table: &str, column: &str) -> Self {
        QualityRule::NotNull {
            table: table.to_string(),
            column: column.to_string(),
        }
    }

    /// Convenience constructor for [`QualityRule::ForeignKey`].
    pub fn foreign_key(table: &str, column: &str, ref_table: &str, ref_column: &str) -> Self {
        QualityRule::ForeignKey {
            table: table.to_string(),
            column: column.to_string(),
            ref_table: ref_table.to_string(),
            ref_column: ref_column.to_string(),
        }
    }

    /// Convenience constructor for [`QualityRule::Range`].
    pub fn range(table: &str, column: &str, min: f64, max: f64) -> Self {
        QualityRule::Range {
            table: table.to_string(),
            column: column.to_string(),
            min,
            max,
        }
    }

    /// Convenience constructor for [`QualityRule::Forbidden`].
    pub fn forbidden(name: &str, table: &str, predicate: Predicate) -> Self {
        QualityRule::Forbidden {
            name: name.to_string(),
            table: table.to_string(),
            predicate,
        }
    }

    /// A short human-readable name for the rule.
    pub fn name(&self) -> String {
        match self {
            QualityRule::Unique { table, columns } => {
                format!("unique({table}.{})", columns.join(","))
            }
            QualityRule::NotNull { table, column } => format!("not_null({table}.{column})"),
            QualityRule::ForeignKey {
                table,
                column,
                ref_table,
                ref_column,
            } => format!("fk({table}.{column} -> {ref_table}.{ref_column})"),
            QualityRule::Range {
                table,
                column,
                min,
                max,
                ..
            } => format!("range({table}.{column} in [{min}, {max}])"),
            QualityRule::Forbidden { name, table, .. } => format!("forbidden({name} on {table})"),
        }
    }

    /// The application table this rule inspects.
    pub fn table(&self) -> &str {
        match self {
            QualityRule::Unique { table, .. }
            | QualityRule::NotNull { table, .. }
            | QualityRule::ForeignKey { table, .. }
            | QualityRule::Range { table, .. }
            | QualityRule::Forbidden { table, .. } => table,
        }
    }
}

/// One violating row found by a quality rule.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityViolation {
    /// Name of the rule that flagged the row.
    pub rule: String,
    /// Application table containing the row.
    pub table: String,
    /// Primary key of the violating row.
    pub key: Key,
    /// Human-readable description of what is wrong.
    pub detail: String,
}

/// A provenance record blaming a violation on a traced transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlameRecord {
    pub txn_id: i64,
    pub req_id: String,
    pub handler: String,
    pub timestamp: i64,
    /// The kind of write ("Insert", "Update", "Delete") that touched the
    /// violating row.
    pub operation: String,
}

/// A violation together with the requests that produced the bad data.
#[derive(Debug, Clone, PartialEq)]
pub struct BlamedViolation {
    pub violation: QualityViolation,
    /// Transactions (in commit order) that wrote the violating row. Empty
    /// if the row predates tracing or its provenance was redacted.
    pub culprits: Vec<BlameRecord>,
}

/// Result of running a set of quality rules.
#[derive(Debug, Clone, Default)]
pub struct QualityReport {
    pub violations: Vec<BlamedViolation>,
    /// Rules evaluated.
    pub rules_checked: usize,
}

impl QualityReport {
    /// True if no rule found a violation.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Request ids implicated in at least one violation, deduplicated.
    pub fn implicated_requests(&self) -> Vec<String> {
        let mut out = Vec::new();
        for v in &self.violations {
            for c in &v.culprits {
                if !out.contains(&c.req_id) {
                    out.push(c.req_id.clone());
                }
            }
        }
        out
    }
}

/// Data-quality helper bound to an application database and its provenance.
pub struct Quality<'a> {
    provenance: &'a ProvenanceStore,
    db: &'a Database,
}

impl<'a> Quality<'a> {
    pub(crate) fn new(provenance: &'a ProvenanceStore, db: &'a Database) -> Self {
        Quality { provenance, db }
    }

    /// Evaluates every rule against the current database state and blames
    /// each violation on the traced transactions that wrote the row.
    pub fn check(&self, rules: &[QualityRule]) -> DbResult<QualityReport> {
        let mut report = QualityReport {
            rules_checked: rules.len(),
            ..QualityReport::default()
        };
        for rule in rules {
            for violation in self.evaluate(rule)? {
                let culprits = self.blame(&violation);
                report.violations.push(BlamedViolation {
                    violation,
                    culprits,
                });
            }
        }
        Ok(report)
    }

    /// Evaluates a single rule, returning its violations without blame.
    pub fn evaluate(&self, rule: &QualityRule) -> DbResult<Vec<QualityViolation>> {
        match rule {
            QualityRule::Unique { table, columns } => self.eval_unique(table, columns),
            QualityRule::NotNull { table, column } => self.eval_not_null(table, column),
            QualityRule::ForeignKey {
                table,
                column,
                ref_table,
                ref_column,
            } => self.eval_foreign_key(table, column, ref_table, ref_column),
            QualityRule::Range {
                table,
                column,
                min,
                max,
            } => self.eval_range(table, column, *min, *max),
            QualityRule::Forbidden {
                name,
                table,
                predicate,
            } => self.eval_forbidden(name, table, predicate),
        }
    }

    /// Finds the traced transactions that wrote the violating row, in
    /// commit order. Works purely from the provenance archive, so it also
    /// finds writers whose effects were later overwritten.
    pub fn blame(&self, violation: &QualityViolation) -> Vec<BlameRecord> {
        let mut out = Vec::new();
        for txn in self.provenance.txns_touching_table(&violation.table) {
            if !txn.committed {
                continue;
            }
            for change in &txn.writes {
                if change.table == violation.table && change.key == violation.key {
                    out.push(BlameRecord {
                        txn_id: txn.txn_id as i64,
                        req_id: txn.ctx.req_id.clone(),
                        handler: txn.ctx.handler.clone(),
                        timestamp: txn.timestamp,
                        operation: change.op.kind().to_string(),
                    });
                }
            }
        }
        out
    }

    fn eval_unique(&self, table: &str, columns: &[String]) -> DbResult<Vec<QualityViolation>> {
        let schema = self.db.schema_of(table)?;
        let idxs: Vec<usize> = columns
            .iter()
            .filter_map(|c| schema.column_index(c))
            .collect();
        let rows = self.db.scan_latest(table, &Predicate::True)?;
        let mut seen: std::collections::HashMap<String, Key> = std::collections::HashMap::new();
        let mut out = Vec::new();
        for (key, row) in rows {
            let fingerprint = idxs
                .iter()
                .map(|i| format!("{:?}", row.get(*i)))
                .collect::<Vec<_>>()
                .join("|");
            if let Some(first) = seen.get(&fingerprint) {
                out.push(QualityViolation {
                    rule: format!("unique({table}.{})", columns.join(",")),
                    table: table.to_string(),
                    key,
                    detail: format!(
                        "duplicate of row {first} on columns ({})",
                        columns.join(", ")
                    ),
                });
            } else {
                seen.insert(fingerprint, key);
            }
        }
        Ok(out)
    }

    fn eval_not_null(&self, table: &str, column: &str) -> DbResult<Vec<QualityViolation>> {
        let rows = self
            .db
            .scan_latest(table, &Predicate::IsNull(column.to_string()))?;
        Ok(rows
            .into_iter()
            .map(|(key, _)| QualityViolation {
                rule: format!("not_null({table}.{column})"),
                table: table.to_string(),
                key,
                detail: format!("{column} is NULL"),
            })
            .collect())
    }

    fn eval_foreign_key(
        &self,
        table: &str,
        column: &str,
        ref_table: &str,
        ref_column: &str,
    ) -> DbResult<Vec<QualityViolation>> {
        let ref_schema = self.db.schema_of(ref_table)?;
        let ref_idx = ref_schema.column_index(ref_column);
        let referenced: Vec<Value> = self
            .db
            .scan_latest(ref_table, &Predicate::True)?
            .into_iter()
            .filter_map(|(_, row)| ref_idx.and_then(|i| row.get(i).cloned()))
            .collect();

        let schema = self.db.schema_of(table)?;
        let idx = schema.column_index(column);
        let mut out = Vec::new();
        for (key, row) in self.db.scan_latest(table, &Predicate::True)? {
            let Some(value) = idx.and_then(|i| row.get(i)) else {
                continue;
            };
            if value.is_null() {
                continue;
            }
            if !referenced.iter().any(|r| r.sql_eq(value)) {
                out.push(QualityViolation {
                    rule: format!("fk({table}.{column} -> {ref_table}.{ref_column})"),
                    table: table.to_string(),
                    key,
                    detail: format!("{column} = {value} has no match in {ref_table}.{ref_column}"),
                });
            }
        }
        Ok(out)
    }

    fn eval_range(
        &self,
        table: &str,
        column: &str,
        min: f64,
        max: f64,
    ) -> DbResult<Vec<QualityViolation>> {
        let schema = self.db.schema_of(table)?;
        let idx = schema.column_index(column);
        let mut out = Vec::new();
        for (key, row) in self.db.scan_latest(table, &Predicate::True)? {
            let Some(value) = idx.and_then(|i| row.get(i)) else {
                continue;
            };
            let Some(number) = value
                .as_float()
                .or_else(|| value.as_int().map(|i| i as f64))
            else {
                continue;
            };
            if number < min || number > max {
                out.push(QualityViolation {
                    rule: format!("range({table}.{column} in [{min}, {max}])"),
                    table: table.to_string(),
                    key,
                    detail: format!("{column} = {number} outside [{min}, {max}]"),
                });
            }
        }
        Ok(out)
    }

    fn eval_forbidden(
        &self,
        name: &str,
        table: &str,
        predicate: &Predicate,
    ) -> DbResult<Vec<QualityViolation>> {
        let rows = self.db.scan_latest(table, predicate)?;
        Ok(rows
            .into_iter()
            .map(|(key, _)| QualityViolation {
                rule: format!("forbidden({name} on {table})"),
                table: table.to_string(),
                key,
                detail: format!("row matches forbidden predicate {predicate}"),
            })
            .collect())
    }
}

impl std::fmt::Debug for Quality<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Quality").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trod_db::{row, DataType, Schema};
    use trod_kv::Session;
    use trod_trace::{Tracer, TxnContext};

    fn setup() -> (Database, ProvenanceStore, Session) {
        let db = Database::new();
        db.create_table(
            "forum_sub",
            Schema::builder()
                .column("id", DataType::Int)
                .column("user_id", DataType::Text)
                .column("forum", DataType::Text)
                .nullable("note", DataType::Text)
                .primary_key(&["id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            "forums",
            Schema::builder()
                .column("forum", DataType::Text)
                .primary_key(&["forum"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            "inventory",
            Schema::builder()
                .column("item", DataType::Text)
                .column("stock", DataType::Int)
                .primary_key(&["item"])
                .build()
                .unwrap(),
        )
        .unwrap();
        let store = ProvenanceStore::for_application(&db).unwrap();
        let traced = Session::builder(db.clone()).tracer(Tracer::new()).build();
        (db, store, traced)
    }

    fn flush(traced: &Session, store: &ProvenanceStore) {
        store.ingest(traced.tracer().unwrap().drain());
    }

    #[test]
    fn unique_rule_finds_duplicates_and_blames_the_writers() {
        let (db, store, traced) = setup();
        let mut txn = traced.begin_traced(TxnContext::new("R1", "subscribeUser", "func:DB.insert"));
        txn.insert("forum_sub", row![1i64, "U1", "F2", Value::Null])
            .unwrap();
        txn.commit().unwrap();
        let mut txn = traced.begin_traced(TxnContext::new("R2", "subscribeUser", "func:DB.insert"));
        txn.insert("forum_sub", row![2i64, "U1", "F2", Value::Null])
            .unwrap();
        txn.commit().unwrap();
        flush(&traced, &store);

        let quality = Quality::new(&store, &db);
        let report = quality
            .check(&[QualityRule::unique("forum_sub", &["user_id", "forum"])])
            .unwrap();
        assert_eq!(report.violations.len(), 1);
        let blamed = &report.violations[0];
        assert_eq!(blamed.culprits.len(), 1);
        assert_eq!(blamed.culprits[0].req_id, "R2");
        assert_eq!(blamed.culprits[0].operation, "Insert");
        assert_eq!(report.implicated_requests(), vec!["R2".to_string()]);
        assert!(!report.is_clean());
    }

    #[test]
    fn not_null_and_range_rules() {
        let (db, store, traced) = setup();
        let mut txn = traced.begin_traced(TxnContext::new("R1", "h", "f"));
        txn.insert("forum_sub", row![1i64, "U1", "F2", Value::Null])
            .unwrap();
        txn.insert("inventory", row!["widget", -3i64]).unwrap();
        txn.insert("inventory", row!["gadget", 7i64]).unwrap();
        txn.commit().unwrap();
        flush(&traced, &store);

        let quality = Quality::new(&store, &db);
        let nulls = quality
            .evaluate(&QualityRule::not_null("forum_sub", "note"))
            .unwrap();
        assert_eq!(nulls.len(), 1);

        let ranges = quality
            .evaluate(&QualityRule::range("inventory", "stock", 0.0, 1_000.0))
            .unwrap();
        assert_eq!(ranges.len(), 1);
        assert!(ranges[0].detail.contains("-3"));
    }

    #[test]
    fn foreign_key_rule_detects_dangling_references() {
        let (db, store, traced) = setup();
        let mut txn = traced.begin_traced(TxnContext::new("R1", "h", "f"));
        txn.insert("forums", row!["F1"]).unwrap();
        txn.insert("forum_sub", row![1i64, "U1", "F1", Value::Null])
            .unwrap();
        txn.insert("forum_sub", row![2i64, "U2", "F404", Value::Null])
            .unwrap();
        txn.commit().unwrap();
        flush(&traced, &store);

        let quality = Quality::new(&store, &db);
        let report = quality
            .check(&[QualityRule::foreign_key(
                "forum_sub",
                "forum",
                "forums",
                "forum",
            )])
            .unwrap();
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].violation.detail.contains("F404"));
    }

    #[test]
    fn forbidden_rule_and_clean_report() {
        let (db, store, traced) = setup();
        let mut txn = traced.begin_traced(TxnContext::new("R1", "h", "f"));
        txn.insert("inventory", row!["widget", 5i64]).unwrap();
        txn.commit().unwrap();
        flush(&traced, &store);

        let quality = Quality::new(&store, &db);
        let clean = quality
            .check(&[QualityRule::forbidden(
                "negative stock",
                "inventory",
                Predicate::lt("stock", 0i64),
            )])
            .unwrap();
        assert!(clean.is_clean());
        assert_eq!(clean.rules_checked, 1);

        let mut txn = traced.begin_traced(TxnContext::new("R2", "refund", "f"));
        txn.update("inventory", &Key::single("widget"), row!["widget", -1i64])
            .unwrap();
        txn.commit().unwrap();
        flush(&traced, &store);
        let dirty = quality
            .check(&[QualityRule::forbidden(
                "negative stock",
                "inventory",
                Predicate::lt("stock", 0i64),
            )])
            .unwrap();
        assert_eq!(dirty.violations.len(), 1);
        // Blame finds both the original insert and the bad update; the
        // update (R2) is the most recent culprit.
        let culprits = &dirty.violations[0].culprits;
        assert!(culprits
            .iter()
            .any(|c| c.req_id == "R2" && c.operation == "Update"));
    }

    #[test]
    fn rule_names_and_tables() {
        let rule = QualityRule::unique("t", &["a", "b"]);
        assert_eq!(rule.name(), "unique(t.a,b)");
        assert_eq!(rule.table(), "t");
        assert!(QualityRule::range("t", "c", 0.0, 1.0)
            .name()
            .contains("range"));
        assert!(QualityRule::not_null("t", "c").name().contains("not_null"));
        assert!(QualityRule::foreign_key("t", "c", "r", "d")
            .name()
            .contains("fk"));
    }
}
