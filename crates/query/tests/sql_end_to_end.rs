//! End-to-end SQL tests over real trod-db tables, including the literal
//! queries printed in the TROD paper (§3.3 and §4.2).

use proptest::prelude::*;
use trod_db::{row, DataType, Database, Schema, Value};
use trod_query::{QueryEngine, QueryError};

/// Builds the provenance-shaped tables of the paper's running example
/// (Table 1 "Executions" and Table 2 "ForumEvents") with the exact rows
/// shown in the paper.
fn paper_tables() -> QueryEngine {
    let db = Database::new();
    db.create_table(
        "Executions",
        Schema::builder()
            .column("TxnId", DataType::Int)
            .column("Timestamp", DataType::Int)
            .column("HandlerName", DataType::Text)
            .column("ReqId", DataType::Text)
            .column("Metadata", DataType::Text)
            .primary_key(&["TxnId"])
            .build()
            .unwrap(),
    )
    .unwrap();
    db.create_table(
        "ForumEvents",
        Schema::builder()
            .column("EventId", DataType::Int)
            .column("TxnId", DataType::Int)
            .column("Type", DataType::Text)
            .column("Query", DataType::Text)
            .nullable("UserId", DataType::Text)
            .nullable("Forum", DataType::Text)
            .primary_key(&["EventId"])
            .build()
            .unwrap(),
    )
    .unwrap();

    let mut txn = db.begin();
    // Table 1 rows.
    for (txn_id, ts, handler, req, meta) in [
        (1i64, 1i64, "subscribeUser", "R1", "func:isSubscribed"),
        (2, 2, "subscribeUser", "R2", "func:isSubscribed"),
        (3, 3, "subscribeUser", "R2", "func:DB.insert"),
        (4, 4, "subscribeUser", "R1", "func:DB.insert"),
        (9, 9, "fetchSubscribers", "R3", "func:DB.executeQuery"),
    ] {
        txn.insert("Executions", row![txn_id, ts, handler, req, meta])
            .unwrap();
    }
    // Table 2 rows.
    for (event, txn_id, typ, query, user, forum) in [
        (
            1i64,
            1i64,
            "Read",
            "Check if (U1, F2) exists",
            Value::Null,
            Value::Null,
        ),
        (
            2,
            2,
            "Read",
            "Check if (U1, F2) exists",
            Value::Null,
            Value::Null,
        ),
        (
            3,
            3,
            "Insert",
            "Insert (U1, F2)",
            Value::from("U1"),
            Value::from("F2"),
        ),
        (
            4,
            4,
            "Insert",
            "Insert (U1, F2)",
            Value::from("U1"),
            Value::from("F2"),
        ),
        (
            5,
            9,
            "Read",
            "Select UserId for F2",
            Value::from("U1"),
            Value::from("F2"),
        ),
        (
            6,
            9,
            "Read",
            "Select UserId for F2",
            Value::from("U1"),
            Value::from("F2"),
        ),
    ] {
        txn.insert("ForumEvents", row![event, txn_id, typ, query, user, forum])
            .unwrap();
    }
    txn.commit().unwrap();
    QueryEngine::new(db)
}

#[test]
fn papers_declarative_debugging_query_finds_the_two_buggy_requests() {
    let engine = paper_tables();
    let sql = "SELECT Timestamp, ReqId, HandlerName \
               FROM Executions as E, ForumEvents as F \
               ON E.TxnId = F.TxnId \
               WHERE F.UserId = 'U1' AND F.Forum = 'F2' AND F.Type = 'Insert' \
               ORDER BY Timestamp ASC;";
    let result = engine.execute(sql).unwrap();
    // The paper's expected answer: (TS3, R2, subscribeUser), (TS4, R1, subscribeUser).
    assert_eq!(result.len(), 2);
    assert_eq!(result.value(0, "ReqId"), Some(&Value::Text("R2".into())));
    assert_eq!(result.value(1, "ReqId"), Some(&Value::Text("R1".into())));
    assert_eq!(
        result.value(0, "HandlerName"),
        Some(&Value::Text("subscribeUser".into()))
    );
    assert_eq!(result.value(0, "Timestamp"), Some(&Value::Int(3)));
    assert_eq!(result.value(1, "Timestamp"), Some(&Value::Int(4)));
}

#[test]
fn explicit_join_syntax_gives_the_same_answer() {
    let engine = paper_tables();
    let comma = engine
        .execute(
            "SELECT ReqId FROM Executions as E, ForumEvents as F ON E.TxnId = F.TxnId \
             WHERE F.Type = 'Insert' ORDER BY Timestamp ASC",
        )
        .unwrap();
    let join = engine
        .execute(
            "SELECT ReqId FROM Executions as E JOIN ForumEvents as F ON E.TxnId = F.TxnId \
             WHERE F.Type = 'Insert' ORDER BY Timestamp ASC",
        )
        .unwrap();
    assert_eq!(comma, join);
}

#[test]
fn aggregates_and_group_by() {
    let engine = paper_tables();
    let result = engine
        .execute(
            "SELECT HandlerName, COUNT(*) AS n FROM Executions \
             GROUP BY HandlerName ORDER BY n DESC",
        )
        .unwrap();
    assert_eq!(result.len(), 2);
    assert_eq!(
        result.value(0, "HandlerName"),
        Some(&Value::Text("subscribeUser".into()))
    );
    assert_eq!(result.value(0, "n"), Some(&Value::Int(4)));
    assert_eq!(result.value(1, "n"), Some(&Value::Int(1)));
}

#[test]
fn aggregates_without_group_by_over_empty_input() {
    let engine = paper_tables();
    let result = engine
        .execute(
            "SELECT COUNT(*), MAX(Timestamp), AVG(Timestamp) FROM Executions WHERE TxnId > 1000",
        )
        .unwrap();
    assert_eq!(result.len(), 1);
    assert_eq!(result.rows()[0][0], Value::Int(0));
    assert_eq!(result.rows()[0][1], Value::Null);
    assert_eq!(result.rows()[0][2], Value::Null);
}

#[test]
fn sum_min_max_avg() {
    let engine = paper_tables();
    let result = engine
        .execute("SELECT SUM(Timestamp) AS s, MIN(Timestamp) AS lo, MAX(Timestamp) AS hi, AVG(Timestamp) AS mean FROM Executions")
        .unwrap();
    assert_eq!(result.value(0, "s"), Some(&Value::Int(1 + 2 + 3 + 4 + 9)));
    assert_eq!(result.value(0, "lo"), Some(&Value::Int(1)));
    assert_eq!(result.value(0, "hi"), Some(&Value::Int(9)));
    assert_eq!(result.value(0, "mean"), Some(&Value::Float(19.0 / 5.0)));
}

#[test]
fn wildcard_limit_and_order() {
    let engine = paper_tables();
    let result = engine
        .execute("SELECT * FROM Executions ORDER BY Timestamp DESC LIMIT 2")
        .unwrap();
    assert_eq!(result.len(), 2);
    assert_eq!(result.value(0, "TxnId"), Some(&Value::Int(9)));
    assert_eq!(result.columns().len(), 5);
}

#[test]
fn null_handling_in_filters() {
    let engine = paper_tables();
    let with_user = engine
        .execute("SELECT EventId FROM ForumEvents WHERE UserId IS NOT NULL")
        .unwrap();
    assert_eq!(with_user.len(), 4);
    let without_user = engine
        .execute("SELECT EventId FROM ForumEvents WHERE UserId IS NULL")
        .unwrap();
    assert_eq!(without_user.len(), 2);
    // Equality against NULL matches nothing.
    let eq_null = engine
        .execute("SELECT EventId FROM ForumEvents WHERE UserId = NULL")
        .unwrap();
    assert!(eq_null.is_empty());
}

#[test]
fn in_list_and_not() {
    let engine = paper_tables();
    let result = engine
        .execute("SELECT TxnId FROM Executions WHERE ReqId IN ('R1', 'R2') ORDER BY TxnId")
        .unwrap();
    assert_eq!(result.len(), 4);
    let result = engine
        .execute("SELECT TxnId FROM Executions WHERE ReqId NOT IN ('R1', 'R2')")
        .unwrap();
    assert_eq!(result.len(), 1);
    let result = engine
        .execute("SELECT TxnId FROM Executions WHERE NOT HandlerName = 'subscribeUser'")
        .unwrap();
    assert_eq!(result.len(), 1);
}

#[test]
fn case_insensitive_table_and_column_resolution() {
    let engine = paper_tables();
    let result = engine
        .execute("select reqid from executions where handlername = 'fetchSubscribers'")
        .unwrap();
    assert_eq!(result.len(), 1);
    assert_eq!(result.rows()[0][0], Value::Text("R3".into()));
}

#[test]
fn time_travel_queries_see_past_states() {
    let engine = paper_tables();
    let db = engine.database().clone();
    let before = db.current_ts();
    let mut txn = db.begin();
    txn.insert("Executions", row![100i64, 50i64, "newHandler", "R9", "m"])
        .unwrap();
    txn.commit().unwrap();

    let now = engine
        .execute("SELECT COUNT(*) AS n FROM Executions")
        .unwrap();
    assert_eq!(now.value(0, "n"), Some(&Value::Int(6)));
    let past = engine
        .execute_as_of("SELECT COUNT(*) AS n FROM Executions", before)
        .unwrap();
    assert_eq!(past.value(0, "n"), Some(&Value::Int(5)));
}

#[test]
fn errors_for_unknown_tables_and_columns() {
    let engine = paper_tables();
    assert!(matches!(
        engine.execute("SELECT a FROM Missing").unwrap_err(),
        QueryError::Plan { .. }
    ));
    assert!(matches!(
        engine.execute("SELECT nope FROM Executions").unwrap_err(),
        QueryError::Execution { .. } | QueryError::Plan { .. }
    ));
    assert!(matches!(
        engine
            .execute("SELECT TxnId FROM Executions WHERE nope = 1")
            .unwrap_err(),
        QueryError::Plan { .. }
    ));
    assert!(engine.execute("SELECT").is_err());
}

#[test]
fn cross_join_without_condition_is_a_cross_product() {
    let engine = paper_tables();
    let result = engine
        .execute("SELECT COUNT(*) AS n FROM Executions as E, ForumEvents as F")
        .unwrap();
    assert_eq!(result.value(0, "n"), Some(&Value::Int(5 * 6)));
}

#[test]
fn order_by_multiple_keys() {
    let engine = paper_tables();
    let result = engine
        .execute("SELECT ReqId, TxnId FROM Executions ORDER BY ReqId ASC, TxnId DESC")
        .unwrap();
    let reqs: Vec<String> = result
        .column_values("ReqId")
        .into_iter()
        .map(|v| v.to_string())
        .collect();
    assert_eq!(reqs, vec!["R1", "R1", "R2", "R2", "R3"]);
    // Within R1: TxnId descending.
    assert_eq!(result.value(0, "TxnId"), Some(&Value::Int(4)));
    assert_eq!(result.value(1, "TxnId"), Some(&Value::Int(1)));
}

#[test]
fn order_by_limit_streams_the_range_index_and_matches_the_sort_path() {
    // `ORDER BY ts LIMIT k` over the range-indexed column takes the
    // ordered-probe fast path (top-k off the index, no full sort); it
    // must return exactly what the generic sort path produces, ties
    // included. Values are inserted shuffled with duplicates so index
    // order, insertion order and primary-key order all differ.
    let db = Database::new();
    db.create_table(
        "events",
        Schema::builder()
            .column("id", DataType::Int)
            .column("kind", DataType::Text)
            .column("ts", DataType::Int)
            .primary_key(&["id"])
            .build()
            .unwrap(),
    )
    .unwrap();
    db.create_range_index("events", "ts").unwrap();
    let mut txn = db.begin();
    for (i, ts) in [7i64, 3, 9, 3, 1, 9, 5, 3, 8, 2, 6, 4, 9, 0, 5]
        .iter()
        .enumerate()
    {
        let kind = format!("K{}", i % 3);
        txn.insert("events", row![i as i64, kind, *ts]).unwrap();
    }
    txn.commit().unwrap();

    // The storage layer confirms it can serve this order from the index.
    assert!(db
        .scan_ordered_as_of(
            "events",
            &trod_db::Predicate::True,
            "ts",
            false,
            5,
            db.current_ts()
        )
        .unwrap()
        .is_some());

    let engine = QueryEngine::new(db);
    for sql_limited in [
        "SELECT id, ts FROM events ORDER BY ts LIMIT 5",
        "SELECT id, ts FROM events ORDER BY ts DESC LIMIT 5",
        "SELECT id, ts FROM events WHERE kind = 'K1' ORDER BY ts LIMIT 3",
        "SELECT id, ts FROM events WHERE ts >= 3 AND ts <= 8 ORDER BY ts DESC LIMIT 4",
        // The WHERE clause cannot lower (column-vs-column), so this one
        // exercises the fallback path — output must still agree.
        "SELECT id, ts FROM events WHERE ts > id ORDER BY ts LIMIT 4",
        // ORDER BY a column with no range index: fallback again.
        "SELECT id, kind FROM events ORDER BY kind LIMIT 4",
    ] {
        let limited = engine.execute(sql_limited).unwrap();
        let (base, limit) = sql_limited.rsplit_once(" LIMIT ").unwrap();
        let full = engine.execute(base).unwrap();
        let expected: Vec<_> = full
            .rows()
            .iter()
            .take(limit.parse::<usize>().unwrap())
            .cloned()
            .collect();
        assert_eq!(limited.rows(), &expected[..], "query: {sql_limited}");
    }
}

#[test]
fn where_predicates_are_pushed_into_the_scan_planner() {
    // An indexed table large enough that the planner prefers probes; the
    // query layer lowers the WHERE clause into a storage predicate, so
    // these queries must never fall back to scan-everything-then-filter
    // semantics — and must return exactly the unindexed answer.
    let db = Database::new();
    db.create_table(
        "events",
        Schema::builder()
            .column("id", DataType::Int)
            .column("kind", DataType::Text)
            .column("ts", DataType::Int)
            .primary_key(&["id"])
            .build()
            .unwrap(),
    )
    .unwrap();
    db.create_index("events", "kind").unwrap();
    db.create_range_index("events", "ts").unwrap();
    let mut txn = db.begin();
    for i in 0..500i64 {
        let kind = format!("K{}", i % 5);
        txn.insert("events", row![i, kind, i]).unwrap();
    }
    txn.commit().unwrap();

    // The lowered predicates drive the planner onto index paths.
    let table = db.table("events").unwrap();
    assert!(table
        .plan_scan(&trod_db::Predicate::eq("kind", "K3"))
        .uses_index());
    assert!(table
        .plan_scan(&trod_db::Predicate::ge("ts", 490i64))
        .uses_index());

    let engine = QueryEngine::new(db);
    let eq = engine
        .execute("SELECT id FROM events WHERE kind = 'K3' ORDER BY id")
        .unwrap();
    assert_eq!(eq.len(), 100);
    let range = engine
        .execute("SELECT id FROM events WHERE ts >= 490 AND ts < 495 ORDER BY id")
        .unwrap();
    assert_eq!(range.len(), 5);
    assert_eq!(range.rows()[0][0], Value::Int(490));
    let in_list = engine
        .execute("SELECT id FROM events WHERE kind IN ('K0', 'K4') ORDER BY id")
        .unwrap();
    assert_eq!(in_list.len(), 200);
    // Literal-first comparisons mirror correctly through lowering.
    let flipped = engine
        .execute("SELECT id FROM events WHERE 495 <= ts")
        .unwrap();
    assert_eq!(flipped.len(), 5);
}

#[test]
fn filter_only_columns_are_pushed_down_not_materialised() {
    // `kind` appears only in the WHERE clause: the predicate is pushed
    // into the scan and the column never reaches the projected output.
    let engine = paper_tables();
    let result = engine
        .execute("SELECT TxnId FROM ForumEvents WHERE Type = 'Insert' ORDER BY TxnId")
        .unwrap();
    assert_eq!(result.len(), 2);
    assert_eq!(result.columns(), &["TxnId".to_string()]);
    // Joins still resolve keys that the select list dropped.
    let joined = engine
        .execute(
            "SELECT ReqId FROM Executions as E JOIN ForumEvents as F ON E.TxnId = F.TxnId \
             WHERE F.Type = 'Insert' AND F.UserId = 'U1' ORDER BY ReqId",
        )
        .unwrap();
    assert_eq!(joined.len(), 2);
}

#[test]
fn ambiguous_unqualified_columns_bind_to_the_first_table_not_the_pushdown_table() {
    // Both tables have an `x` column. In `WHERE b.z = 1 OR x = 5` the
    // conjunct can only be evaluated once `b` is loaded, but the
    // unqualified `x` still binds to `a.x` (first table in the joined
    // relation) — pushdown must not capture it as `b.x`.
    let db = Database::new();
    db.create_table(
        "a",
        Schema::builder()
            .column("id", DataType::Int)
            .column("x", DataType::Int)
            .primary_key(&["id"])
            .build()
            .unwrap(),
    )
    .unwrap();
    db.create_table(
        "b",
        Schema::builder()
            .column("bid", DataType::Int)
            .column("z", DataType::Int)
            .column("x", DataType::Int)
            .primary_key(&["bid"])
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut txn = db.begin();
    txn.insert("a", row![1i64, 5i64]).unwrap();
    txn.insert("b", row![1i64, 0i64, 7i64]).unwrap();
    txn.commit().unwrap();
    let engine = QueryEngine::new(db);

    // a.x = 5 makes the disjunction true for the single joined row.
    let result = engine
        .execute("SELECT id, bid FROM a, b WHERE b.z = 1 OR x = 5")
        .unwrap();
    assert_eq!(result.len(), 1);
    // The same shape binding to b.x when a cannot supply the name.
    let result = engine
        .execute("SELECT id, bid FROM a, b WHERE b.z = 1 OR z = 0")
        .unwrap();
    assert_eq!(result.len(), 1);
    // And a case where the disjunction is genuinely false.
    let result = engine
        .execute("SELECT id, bid FROM a, b WHERE b.z = 1 OR x = 6")
        .unwrap();
    assert_eq!(result.len(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// SQL answers are identical with and without indexes for arbitrary
    /// data and WHERE shapes — i.e. predicate pushdown and the scan
    /// planner never change a declarative query's result.
    #[test]
    fn indexed_and_unindexed_queries_agree(
        values in prop::collection::vec((0i64..50, 0i64..8), 1..120),
        lo in 0i64..50,
        width in 0i64..25,
        pick in 0i64..8
    ) {
        let make_db = |indexed: bool| {
            let db = Database::new();
            db.create_table(
                "t",
                Schema::builder()
                    .column("id", DataType::Int)
                    .column("v", DataType::Int)
                    .column("g", DataType::Int)
                    .primary_key(&["id"])
                    .build()
                    .unwrap(),
            )
            .unwrap();
            if indexed {
                db.create_index("t", "g").unwrap();
                db.create_range_index("t", "v").unwrap();
            }
            let mut txn = db.begin();
            for (i, (v, g)) in values.iter().enumerate() {
                txn.insert("t", row![i as i64, *v, *g]).unwrap();
            }
            txn.commit().unwrap();
            QueryEngine::new(db)
        };
        let indexed = make_db(true);
        let plain = make_db(false);
        let hi = lo + width;
        for sql in [
            format!("SELECT id FROM t WHERE v >= {lo} AND v < {hi} ORDER BY id"),
            format!("SELECT id FROM t WHERE g = {pick} ORDER BY id"),
            format!("SELECT id FROM t WHERE g IN ({pick}, {}) ORDER BY id", (pick + 1) % 8),
            format!("SELECT id FROM t WHERE g = {pick} OR v >= {hi} ORDER BY id"),
            format!("SELECT id FROM t WHERE NOT v < {lo} ORDER BY id"),
            format!("SELECT id FROM t WHERE g = {pick} AND v >= {lo} ORDER BY id"),
        ] {
            prop_assert_eq!(
                indexed.execute(&sql).unwrap(),
                plain.execute(&sql).unwrap(),
                "diverged for {}",
                sql
            );
        }
    }

    /// Filtering with SQL equals filtering with the storage engine's
    /// native predicates for arbitrary integer data and thresholds.
    #[test]
    fn sql_filter_matches_native_predicate(
        values in prop::collection::vec(0i64..100, 1..80),
        threshold in 0i64..100
    ) {
        let db = Database::new();
        db.create_table(
            "nums",
            Schema::builder()
                .column("id", DataType::Int)
                .column("v", DataType::Int)
                .primary_key(&["id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut txn = db.begin();
        for (i, v) in values.iter().enumerate() {
            txn.insert("nums", row![i as i64, *v]).unwrap();
        }
        txn.commit().unwrap();

        let native = db
            .scan_latest("nums", &trod_db::Predicate::ge("v", threshold))
            .unwrap()
            .len();
        let engine = QueryEngine::new(db);
        let sql = engine
            .execute(&format!("SELECT id FROM nums WHERE v >= {threshold}"))
            .unwrap()
            .len();
        prop_assert_eq!(native, sql);
    }

    /// ORDER BY really sorts, for arbitrary data.
    #[test]
    fn order_by_sorts(values in prop::collection::vec(-1000i64..1000, 1..60)) {
        let db = Database::new();
        db.create_table(
            "nums",
            Schema::builder()
                .column("id", DataType::Int)
                .column("v", DataType::Int)
                .primary_key(&["id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut txn = db.begin();
        for (i, v) in values.iter().enumerate() {
            txn.insert("nums", row![i as i64, *v]).unwrap();
        }
        txn.commit().unwrap();
        let engine = QueryEngine::new(db);
        let result = engine.execute("SELECT v FROM nums ORDER BY v ASC").unwrap();
        let got: Vec<i64> = result
            .column_values("v")
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        let mut expected = values.clone();
        expected.sort();
        prop_assert_eq!(got, expected);
    }

    /// COUNT(*) equals the row count for arbitrary GROUP BY cardinality.
    #[test]
    fn group_by_counts_sum_to_total(groups in prop::collection::vec(0i64..10, 1..100)) {
        let db = Database::new();
        db.create_table(
            "g",
            Schema::builder()
                .column("id", DataType::Int)
                .column("grp", DataType::Int)
                .primary_key(&["id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut txn = db.begin();
        for (i, g) in groups.iter().enumerate() {
            txn.insert("g", row![i as i64, *g]).unwrap();
        }
        txn.commit().unwrap();
        let engine = QueryEngine::new(db);
        let per_group = engine
            .execute("SELECT grp, COUNT(*) AS n FROM g GROUP BY grp")
            .unwrap();
        let total: i64 = per_group
            .column_values("n")
            .iter()
            .map(|v| v.as_int().unwrap())
            .sum();
        prop_assert_eq!(total, groups.len() as i64);
    }
}
