//! Query results.

use std::fmt;

use trod_db::Value;

/// The result of executing a SELECT statement: named columns and rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Creates a result set. Every row must have `columns.len()` values.
    pub fn new(columns: Vec<String>, rows: Vec<Vec<Value>>) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == columns.len()));
        ResultSet { columns, rows }
    }

    /// An empty result with the given columns.
    pub fn empty(columns: Vec<String>) -> Self {
        ResultSet {
            columns,
            rows: Vec::new(),
        }
    }

    /// Output column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column by name (case-insensitive).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
    }

    /// The value at (row, column-name), if both exist.
    pub fn value(&self, row: usize, column: &str) -> Option<&Value> {
        let col = self.column_index(column)?;
        self.rows.get(row).and_then(|r| r.get(col))
    }

    /// Extracts one column as a vector of values.
    pub fn column_values(&self, column: &str) -> Vec<Value> {
        match self.column_index(column) {
            Some(idx) => self.rows.iter().map(|r| r[idx].clone()).collect(),
            None => Vec::new(),
        }
    }

    /// Renders the result as an ASCII table (used by the `report` binary
    /// to print the paper's Table 1 / Table 2).
    pub fn to_table_string(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let sep = |widths: &[usize]| {
            let mut s = String::from("+");
            for w in widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s.push('\n');
            s
        };
        let mut out = String::new();
        out.push_str(&sep(&widths));
        out.push('|');
        for (c, w) in self.columns.iter().zip(&widths) {
            out.push_str(&format!(" {c:<w$} |"));
        }
        out.push('\n');
        out.push_str(&sep(&widths));
        for row in &rendered {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {cell:<w$} |"));
            }
            out.push('\n');
        }
        out.push_str(&sep(&widths));
        out
    }
}

impl fmt::Display for ResultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ResultSet {
        ResultSet::new(
            vec!["TxnId".into(), "HandlerName".into()],
            vec![
                vec![Value::Int(1), Value::Text("subscribeUser".into())],
                vec![Value::Int(2), Value::Text("fetchSubscribers".into())],
            ],
        )
    }

    #[test]
    fn accessors() {
        let rs = sample();
        assert_eq!(rs.len(), 2);
        assert!(!rs.is_empty());
        assert_eq!(rs.column_index("txnid"), Some(0));
        assert_eq!(rs.column_index("missing"), None);
        assert_eq!(
            rs.value(0, "HandlerName"),
            Some(&Value::Text("subscribeUser".into()))
        );
        assert_eq!(rs.value(5, "HandlerName"), None);
        assert_eq!(
            rs.column_values("TxnId"),
            vec![Value::Int(1), Value::Int(2)]
        );
        assert!(rs.column_values("nope").is_empty());
    }

    #[test]
    fn table_rendering_contains_headers_and_cells() {
        let rs = sample();
        let s = rs.to_table_string();
        assert!(s.contains("TxnId"));
        assert!(s.contains("subscribeUser"));
        assert!(s.lines().count() >= 6);
        assert_eq!(format!("{rs}"), s);
    }

    #[test]
    fn empty_result() {
        let rs = ResultSet::empty(vec!["a".into()]);
        assert!(rs.is_empty());
        assert_eq!(rs.columns(), &["a".to_string()]);
    }
}
