//! Abstract syntax tree for the supported SQL subset.

use std::fmt;

use trod_db::Value;

/// Comparison operators in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Eq => "=",
            BinOp::NotEq => "!=",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
        };
        f.write_str(s)
    }
}

/// A scalar or boolean expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A possibly qualified column reference (`E.TxnId` or `Timestamp`).
    Column {
        qualifier: Option<String>,
        name: String,
    },
    /// A literal value.
    Literal(Value),
    /// Binary comparison.
    Compare {
        left: Box<Expr>,
        op: BinOp,
        right: Box<Expr>,
    },
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    IsNull(Box<Expr>),
    IsNotNull(Box<Expr>),
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for an unqualified column reference.
    pub fn column(name: impl Into<String>) -> Self {
        Expr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Convenience constructor for a qualified column reference.
    pub fn qualified(qualifier: impl Into<String>, name: impl Into<String>) -> Self {
        Expr::Column {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }

    /// Splits a conjunction into its conjuncts (`a AND b AND c` → 3 exprs).
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        self.collect_conjuncts(&mut out);
        out
    }

    fn collect_conjuncts<'a>(&'a self, out: &mut Vec<&'a Expr>) {
        match self {
            Expr::And(a, b) => {
                a.collect_conjuncts(out);
                b.collect_conjuncts(out);
            }
            other => out.push(other),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => write!(f, "{name}"),
            },
            Expr::Literal(v) => match v {
                Value::Text(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::Compare { left, op, right } => write!(f, "{left} {op} {right}"),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(e) => write!(f, "NOT ({e})"),
            Expr::IsNull(e) => write!(f, "{e} IS NULL"),
            Expr::IsNotNull(e) => write!(f, "{e} IS NOT NULL"),
            Expr::InList { expr, list } => {
                write!(f, "{expr} IN (")?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        };
        f.write_str(s)
    }
}

/// A single item in the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `SELECT *`
    Wildcard,
    /// A plain expression with an optional alias.
    Expr { expr: Expr, alias: Option<String> },
    /// An aggregate call; `arg == None` means `COUNT(*)`.
    Aggregate {
        func: AggFunc,
        arg: Option<Expr>,
        alias: Option<String>,
    },
}

impl SelectItem {
    /// The output column name for this item.
    pub fn output_name(&self) -> String {
        match self {
            SelectItem::Wildcard => "*".to_string(),
            SelectItem::Expr { expr, alias } => alias.clone().unwrap_or_else(|| expr.to_string()),
            SelectItem::Aggregate { func, arg, alias } => alias.clone().unwrap_or_else(|| {
                let arg = arg
                    .as_ref()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|| "*".to_string());
                format!("{func}({arg})")
            }),
        }
    }
}

/// A table reference in the FROM clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is referred to by in column qualifiers.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// An explicit `JOIN ... ON ...` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub table: TableRef,
    pub on: Expr,
}

/// An ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    pub expr: Expr,
    pub descending: bool,
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub items: Vec<SelectItem>,
    /// Comma-separated FROM tables (the paper's `FROM A as X, B as Y`).
    pub from: Vec<TableRef>,
    /// Optional `ON <expr>` directly after the FROM list — the join
    /// condition syntax the paper's example queries use.
    pub from_on: Option<Expr>,
    /// Explicit `JOIN ... ON ...` clauses.
    pub joins: Vec<Join>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub order_by: Vec<OrderKey>,
    pub limit: Option<usize>,
}

impl SelectStmt {
    /// True if the statement uses aggregation (aggregates or GROUP BY).
    pub fn is_aggregate(&self) -> bool {
        !self.group_by.is_empty()
            || self
                .items
                .iter()
                .any(|i| matches!(i, SelectItem::Aggregate { .. }))
    }

    /// All table references, FROM tables first then JOINed tables.
    pub fn all_tables(&self) -> Vec<&TableRef> {
        self.from
            .iter()
            .chain(self.joins.iter().map(|j| &j.table))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_splitting() {
        let e = Expr::And(
            Box::new(Expr::And(
                Box::new(Expr::column("a")),
                Box::new(Expr::column("b")),
            )),
            Box::new(Expr::column("c")),
        );
        assert_eq!(e.conjuncts().len(), 3);
        assert_eq!(Expr::column("x").conjuncts().len(), 1);
    }

    #[test]
    fn select_item_output_names() {
        assert_eq!(
            SelectItem::Expr {
                expr: Expr::qualified("E", "TxnId"),
                alias: None
            }
            .output_name(),
            "E.TxnId"
        );
        assert_eq!(
            SelectItem::Expr {
                expr: Expr::column("a"),
                alias: Some("renamed".into())
            }
            .output_name(),
            "renamed"
        );
        assert_eq!(
            SelectItem::Aggregate {
                func: AggFunc::Count,
                arg: None,
                alias: None
            }
            .output_name(),
            "COUNT(*)"
        );
    }

    #[test]
    fn table_ref_binding_name() {
        let t = TableRef {
            table: "Executions".into(),
            alias: Some("E".into()),
        };
        assert_eq!(t.binding_name(), "E");
        let t = TableRef {
            table: "Executions".into(),
            alias: None,
        };
        assert_eq!(t.binding_name(), "Executions");
    }

    #[test]
    fn display_of_expressions() {
        let e = Expr::Compare {
            left: Box::new(Expr::qualified("F", "UserId")),
            op: BinOp::Eq,
            right: Box::new(Expr::Literal(Value::Text("U1".into()))),
        };
        assert_eq!(e.to_string(), "F.UserId = 'U1'");
    }
}
