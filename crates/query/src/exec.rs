//! Query execution.
//!
//! The executor is intentionally simple — relations are vectors of rows —
//! but it plans equi-joins as hash joins, which is what keeps the paper's
//! declarative-debugging query (a join of `Executions` and a per-table
//! event table on `TxnId`) fast enough to sweep to millions of provenance
//! events in benchmark E2.
//!
//! Two pushdowns keep the storage boundary cheap:
//!
//! * **Predicate pushdown.** WHERE / ON conjuncts that reference a single
//!   table and compare columns against literals are lowered to a storage
//!   [`Predicate`] and handed to [`Database::scan_as_of`], where the scan
//!   planner can serve them from an index instead of walking the table
//!   (see the read-path docs on `trod_db::database`). Lowered conjuncts
//!   are consumed — never re-evaluated in the executor — and lowering is
//!   exact: a conjunct that cannot be expressed with identical semantics
//!   (column-vs-column compares, expressions) stays behind as an executor
//!   filter.
//! * **Projection pushdown.** Only the columns the rest of the statement
//!   can still reference (select list, ORDER BY, GROUP BY, unlowered
//!   conjuncts, join keys) are copied out of the shared storage rows when
//!   a relation is materialised; a column consumed entirely by a
//!   pushed-down predicate is never copied at all.

use std::collections::HashMap;

use trod_db::{CmpOp, Database, Predicate, Schema, Ts, Value};

use crate::ast::{AggFunc, BinOp, Expr, SelectItem, SelectStmt};
use crate::error::{QueryError, QueryResultT};
use crate::result::ResultSet;

/// Options controlling execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryOptions {
    /// Execute against the state as of this commit timestamp instead of
    /// the latest committed state.
    pub as_of: Option<Ts>,
}

/// One bound column of an intermediate relation.
#[derive(Debug, Clone)]
struct ColBinding {
    /// The table binding (alias or table name) this column came from.
    qualifier: String,
    /// The column name.
    name: String,
}

/// An intermediate relation during execution.
#[derive(Debug, Clone)]
struct Relation {
    cols: Vec<ColBinding>,
    rows: Vec<Vec<Value>>,
}

impl Relation {
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Option<usize> {
        self.cols.iter().position(|c| {
            c.name.eq_ignore_ascii_case(name)
                && qualifier
                    .map(|q| c.qualifier.eq_ignore_ascii_case(q))
                    .unwrap_or(true)
        })
    }

    /// True if the expression only references columns present in this
    /// relation.
    fn can_resolve(&self, expr: &Expr) -> bool {
        match expr {
            Expr::Column { qualifier, name } => self.resolve(qualifier.as_deref(), name).is_some(),
            Expr::Literal(_) => true,
            Expr::Compare { left, right, .. } => self.can_resolve(left) && self.can_resolve(right),
            Expr::And(a, b) | Expr::Or(a, b) => self.can_resolve(a) && self.can_resolve(b),
            Expr::Not(e) | Expr::IsNull(e) | Expr::IsNotNull(e) => self.can_resolve(e),
            Expr::InList { expr, list } => {
                self.can_resolve(expr) && list.iter().all(|e| self.can_resolve(e))
            }
        }
    }
}

/// Executes a parsed statement against a database.
pub fn execute(db: &Database, stmt: &SelectStmt, opts: QueryOptions) -> QueryResultT<ResultSet> {
    let mut pending: Vec<Expr> = Vec::new();
    if let Some(on) = &stmt.from_on {
        pending.extend(on.conjuncts().into_iter().cloned());
    }
    for join in &stmt.joins {
        pending.extend(join.on.conjuncts().into_iter().cloned());
    }
    if let Some(w) = &stmt.where_clause {
        pending.extend(w.conjuncts().into_iter().cloned());
    }

    // Build the joined relation, table by table. Every table is read at
    // ONE snapshot — the explicit `as_of`, or the published clock sampled
    // once up front — so a multi-table query can never observe a torn
    // state (table A after a concurrent commit, table B before it). This
    // matches the session surface's one-snapshot-per-transaction rule.
    let read_ts = opts.as_of.unwrap_or_else(|| db.current_ts());
    let tables = stmt.all_tables();
    if tables.is_empty() {
        return Err(QueryError::plan("query must reference at least one table"));
    }
    let proj = ProjectionNeeds::of(stmt);
    // Resolve every table's schema up front: predicate lowering must bind
    // an *unqualified* column name exactly as the executor would — to the
    // first table in load order that has the column — which takes the
    // whole catalog to decide, not just the table being loaded.
    let catalog: Vec<Binding> = tables
        .iter()
        .map(|t| {
            let actual = resolve_table_name(db, &t.table)?;
            let schema = db.schema_of(&actual)?;
            Ok(Binding {
                binding: t.binding_name().to_string(),
                actual,
                schema,
            })
        })
        .collect::<QueryResultT<_>>()?;
    // Ordered-probe pushdown: a single-table `ORDER BY <indexed column>
    // LIMIT k` whose WHERE clause lowers entirely into the scan streams
    // the top k rows straight off the value-ordered range index instead
    // of materialising, sorting and truncating the whole table.
    if let Some(rel) = try_ordered_probe(db, stmt, &catalog, read_ts, &mut pending, &proj)? {
        return project(&rel, stmt);
    }
    let mut rel = load_table(db, &catalog, 0, read_ts, &mut pending, &proj)?;
    apply_resolvable(&mut rel, &mut pending)?;
    for idx in 1..catalog.len() {
        let right = load_table(db, &catalog, idx, read_ts, &mut pending, &proj)?;
        rel = join_relations(rel, right, &mut pending)?;
        apply_resolvable(&mut rel, &mut pending)?;
    }
    if let Some(unresolved) = pending.first() {
        return Err(QueryError::plan(format!(
            "expression references unknown column: {unresolved}"
        )));
    }

    if stmt.is_aggregate() {
        let mut out = aggregate(&rel, stmt)?;
        sort_output(&mut out, stmt)?;
        if let Some(limit) = stmt.limit {
            out = ResultSet::new(
                out.columns().to_vec(),
                out.rows().iter().take(limit).cloned().collect(),
            );
        }
        return Ok(out);
    }

    // ORDER BY evaluates against the full relation so it can reference
    // columns that are not projected.
    if !stmt.order_by.is_empty() {
        let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = rel
            .rows
            .iter()
            .map(|row| {
                let keys = stmt
                    .order_by
                    .iter()
                    .map(|k| eval(&rel, row, &k.expr))
                    .collect::<QueryResultT<Vec<Value>>>()?;
                Ok((keys, row.clone()))
            })
            .collect::<QueryResultT<_>>()?;
        keyed.sort_by(|(ka, _), (kb, _)| {
            for (i, key) in stmt.order_by.iter().enumerate() {
                let ord = ka[i].total_cmp(&kb[i]);
                let ord = if key.descending { ord.reverse() } else { ord };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        rel.rows = keyed.into_iter().map(|(_, r)| r).collect();
    }
    if let Some(limit) = stmt.limit {
        rel.rows.truncate(limit);
    }
    project(&rel, stmt)
}

/// Column references a statement can still evaluate after its relations
/// are materialised — everything that bounds projection pushdown except
/// the pending conjuncts, which [`load_table`] checks live (they shrink
/// as predicates are lowered into scans).
struct ProjectionNeeds {
    /// `SELECT *` appears: every column of every table is needed.
    wildcard: bool,
    /// `(qualifier, column)` references, case-preserved.
    refs: Vec<(Option<String>, String)>,
}

impl ProjectionNeeds {
    fn of(stmt: &SelectStmt) -> Self {
        let mut needs = ProjectionNeeds {
            wildcard: false,
            refs: Vec::new(),
        };
        for item in &stmt.items {
            match item {
                SelectItem::Wildcard => needs.wildcard = true,
                SelectItem::Expr { expr, .. } => needs.collect(expr),
                SelectItem::Aggregate { arg, .. } => {
                    if let Some(arg) = arg {
                        needs.collect(arg);
                    }
                }
            }
        }
        for key in &stmt.order_by {
            needs.collect(&key.expr);
        }
        for expr in &stmt.group_by {
            needs.collect(expr);
        }
        needs
    }

    fn collect(&mut self, expr: &Expr) {
        match expr {
            Expr::Column { qualifier, name } => {
                self.refs.push((qualifier.clone(), name.clone()));
            }
            Expr::Literal(_) => {}
            Expr::Compare { left, right, .. } => {
                self.collect(left);
                self.collect(right);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                self.collect(a);
                self.collect(b);
            }
            Expr::Not(e) | Expr::IsNull(e) | Expr::IsNotNull(e) => self.collect(e),
            Expr::InList { expr, list } => {
                self.collect(expr);
                for e in list {
                    self.collect(e);
                }
            }
        }
    }

    /// True if a reference may name `column` of the table bound as
    /// `binding`.
    fn needs(&self, binding: &str, column: &str) -> bool {
        self.wildcard
            || self
                .refs
                .iter()
                .any(|(q, n)| ref_matches(q.as_deref(), n, binding, column))
    }
}

/// True if a `(qualifier, name)` column reference may resolve to `column`
/// of the table bound as `binding`: executor resolution is
/// case-insensitive, and an unqualified name can resolve into any table.
/// The one matching rule both projection-pushdown sites share.
fn ref_matches(qualifier: Option<&str>, name: &str, binding: &str, column: &str) -> bool {
    name.eq_ignore_ascii_case(column)
        && qualifier
            .map(|q| q.eq_ignore_ascii_case(binding))
            .unwrap_or(true)
}

/// One FROM/JOIN table with its binding name and resolved schema; the
/// full ordered list is the statement's catalog, which predicate lowering
/// consults to bind unqualified column names the way the executor does.
struct Binding {
    binding: String,
    actual: String,
    schema: Schema,
}

/// Case-insensitive table resolution so the paper's literal queries work
/// regardless of naming convention.
fn resolve_table_name(db: &Database, table: &str) -> QueryResultT<String> {
    db.table_names()
        .into_iter()
        .find(|t| t.eq_ignore_ascii_case(table))
        .ok_or_else(|| QueryError::plan(format!("no such table `{table}`")))
}

/// Materialises the catalog's `idx`-th table as a relation: lowers every
/// pending conjunct the table can answer by itself into a storage
/// [`Predicate`] pushed into the scan (consuming the conjunct), then
/// copies only the columns the rest of the statement can still reference.
fn load_table(
    db: &Database,
    catalog: &[Binding],
    idx: usize,
    read_ts: Ts,
    pending: &mut Vec<Expr>,
    proj: &ProjectionNeeds,
) -> QueryResultT<Relation> {
    let Binding {
        binding,
        actual,
        schema,
    } = &catalog[idx];

    // Predicate pushdown. Conjuncts are attempted in load order and
    // consumed on success; `lower_conjunct` binds each column reference
    // exactly as the executor's joined-relation resolution would, so a
    // consumed conjunct filters the same rows it would have filtered.
    let mut lowered = Predicate::True;
    let mut remaining = Vec::new();
    for expr in pending.drain(..) {
        match lower_conjunct(&expr, catalog, idx) {
            Some(pred) => {
                lowered = match lowered {
                    Predicate::True => pred,
                    combined => combined.and(pred),
                };
            }
            None => remaining.push(expr),
        }
    }
    *pending = remaining;

    // Projection pushdown: a column is copied only if the select list,
    // ORDER BY, GROUP BY or a still-pending conjunct can reference it.
    let keep: Vec<usize> = schema
        .columns()
        .iter()
        .enumerate()
        .filter(|(_, c)| {
            proj.needs(binding, &c.name)
                || pending.iter().any(|e| expr_references(e, binding, &c.name))
        })
        .map(|(i, _)| i)
        .collect();
    let cols = keep
        .iter()
        .map(|&i| ColBinding {
            qualifier: binding.clone(),
            name: schema.columns()[i].name.clone(),
        })
        .collect();

    let scanned = db.scan_as_of(actual, &lowered, read_ts)?;
    // The executor materialises relations of owned values (projections and
    // joins rewrite them), so this is the one place the shared rows are
    // copied out of the storage engine.
    let rows = scanned
        .into_iter()
        .map(|(_, r)| keep.iter().map(|&i| r[i].clone()).collect())
        .collect();
    Ok(Relation { cols, rows })
}

/// Attempts the ordered-probe fast path: a single-table, non-aggregate
/// statement with exactly one `ORDER BY <column>` key and a LIMIT, whose
/// WHERE clause lowers entirely into the scan, can stream its top-k rows
/// off a value-ordered range index ([`Database::scan_ordered_as_of`]) —
/// O(k) in the result size instead of scan + sort + truncate.
///
/// Returns `Ok(None)` — leaving `pending` untouched so the generic path
/// proceeds normally — when any gate fails or the storage layer cannot
/// serve the order from an index. The gates are exact, not heuristic:
/// predicate lowering is all-or-nothing because a conjunct the scan
/// cannot evaluate would have to filter *after* the index walk, which
/// breaks the "first k matching rows" contract, and the ORDER BY key
/// must bind to this table's schema the same way the executor would
/// resolve it. On success the storage result is exactly what the
/// executor's stable sort + truncate would have produced.
fn try_ordered_probe(
    db: &Database,
    stmt: &SelectStmt,
    catalog: &[Binding],
    read_ts: Ts,
    pending: &mut Vec<Expr>,
    proj: &ProjectionNeeds,
) -> QueryResultT<Option<Relation>> {
    if catalog.len() != 1 || stmt.is_aggregate() {
        return Ok(None);
    }
    let Some(limit) = stmt.limit else {
        return Ok(None);
    };
    let [key] = stmt.order_by.as_slice() else {
        return Ok(None);
    };
    let Some(order_col) = local_column(&key.expr, catalog, 0) else {
        return Ok(None);
    };
    let mut lowered = Predicate::True;
    for expr in pending.iter() {
        match lower_conjunct(expr, catalog, 0) {
            Some(pred) => {
                lowered = match lowered {
                    Predicate::True => pred,
                    combined => combined.and(pred),
                };
            }
            None => return Ok(None),
        }
    }
    let Binding {
        binding,
        actual,
        schema,
    } = &catalog[0];
    let Some(scanned) =
        db.scan_ordered_as_of(actual, &lowered, &order_col, key.descending, limit, read_ts)?
    else {
        return Ok(None);
    };
    pending.clear();
    // Projection pushdown, as in `load_table`; every conjunct was
    // consumed by the scan, so only the statement's own references
    // bound which columns are copied.
    let keep: Vec<usize> = schema
        .columns()
        .iter()
        .enumerate()
        .filter(|(_, c)| proj.needs(binding, &c.name))
        .map(|(i, _)| i)
        .collect();
    let cols = keep
        .iter()
        .map(|&i| ColBinding {
            qualifier: binding.clone(),
            name: schema.columns()[i].name.clone(),
        })
        .collect();
    let rows = scanned
        .into_iter()
        .map(|(_, r)| keep.iter().map(|&i| r[i].clone()).collect())
        .collect();
    Ok(Some(Relation { cols, rows }))
}

/// True if `expr` contains a column reference that may resolve to
/// `column` of the table bound as `binding`.
fn expr_references(expr: &Expr, binding: &str, column: &str) -> bool {
    match expr {
        Expr::Column { qualifier, name } => {
            ref_matches(qualifier.as_deref(), name, binding, column)
        }
        Expr::Literal(_) => false,
        Expr::Compare { left, right, .. } => {
            expr_references(left, binding, column) || expr_references(right, binding, column)
        }
        Expr::And(a, b) | Expr::Or(a, b) => {
            expr_references(a, binding, column) || expr_references(b, binding, column)
        }
        Expr::Not(e) | Expr::IsNull(e) | Expr::IsNotNull(e) => expr_references(e, binding, column),
        Expr::InList { expr, list } => {
            expr_references(expr, binding, column)
                || list.iter().any(|e| expr_references(e, binding, column))
        }
    }
}

/// Lowers one conjunct to a storage [`Predicate`] over the catalog's
/// `idx`-th table, or returns `None` if it cannot be expressed with
/// identical semantics (a reference binds to another table, it compares
/// two columns, or it uses an expression the storage predicate language
/// lacks).
///
/// The executor and the storage engine agree on comparison semantics —
/// NULL comparisons are false, `IN` uses SQL equality, values order by
/// `Value::total_cmp` — so a lowered conjunct filters exactly the rows
/// the executor's own evaluation would have kept.
fn lower_conjunct(expr: &Expr, catalog: &[Binding], idx: usize) -> Option<Predicate> {
    match expr {
        Expr::Compare { left, op, right } => {
            if let (Some(column), Some(value)) = (local_column(left, catalog, idx), literal(right))
            {
                Some(Predicate::Compare {
                    column,
                    op: cmp_op(*op),
                    value: value.clone(),
                })
            } else if let (Some(value), Some(column)) =
                (literal(left), local_column(right, catalog, idx))
            {
                // `5 < col` reads as `col > 5`.
                Some(Predicate::Compare {
                    column,
                    op: flip(cmp_op(*op)),
                    value: value.clone(),
                })
            } else {
                None
            }
        }
        Expr::And(a, b) => {
            Some(lower_conjunct(a, catalog, idx)?.and(lower_conjunct(b, catalog, idx)?))
        }
        Expr::Or(a, b) => {
            Some(lower_conjunct(a, catalog, idx)?.or(lower_conjunct(b, catalog, idx)?))
        }
        Expr::Not(e) => Some(lower_conjunct(e, catalog, idx)?.negate()),
        Expr::IsNull(e) => Some(Predicate::IsNull(local_column(e, catalog, idx)?)),
        Expr::IsNotNull(e) => Some(Predicate::IsNotNull(local_column(e, catalog, idx)?)),
        Expr::InList { expr, list } => {
            let column = local_column(expr, catalog, idx)?;
            let values = list
                .iter()
                .map(|e| literal(e).cloned())
                .collect::<Option<Vec<Value>>>()?;
            Some(Predicate::InList { column, values })
        }
        // Bare columns/literals in boolean position have executor-specific
        // truthiness; leave them to the executor.
        Expr::Column { .. } | Expr::Literal(_) => None,
    }
}

/// Resolves `expr` as a column of the catalog's `idx`-th table, returning
/// the schema-cased column name (storage predicates resolve names
/// case-sensitively; the SQL layer is case-insensitive).
///
/// An *unqualified* name resolves the way the executor's joined-relation
/// lookup does — to the first table in load order whose schema has the
/// column — so it only lowers here if that first table IS this one. A
/// name that binds to an earlier table must not be captured by a later
/// table that happens to share it (the conjunct stays with the executor,
/// which applies it against the join).
fn local_column(expr: &Expr, catalog: &[Binding], idx: usize) -> Option<String> {
    let Expr::Column { qualifier, name } = expr else {
        return None;
    };
    let has_column = |b: &Binding| {
        b.schema
            .columns()
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
            .map(|c| c.name.clone())
    };
    if let Some(q) = qualifier {
        if !q.eq_ignore_ascii_case(&catalog[idx].binding) {
            return None;
        }
    } else if catalog[..idx].iter().any(|b| has_column(b).is_some()) {
        return None;
    }
    has_column(&catalog[idx])
}

fn literal(expr: &Expr) -> Option<&Value> {
    match expr {
        Expr::Literal(v) => Some(v),
        _ => None,
    }
}

fn cmp_op(op: BinOp) -> CmpOp {
    match op {
        BinOp::Eq => CmpOp::Eq,
        BinOp::NotEq => CmpOp::Ne,
        BinOp::Lt => CmpOp::Lt,
        BinOp::LtEq => CmpOp::Le,
        BinOp::Gt => CmpOp::Gt,
        BinOp::GtEq => CmpOp::Ge,
    }
}

/// Mirrors a comparison across its operands (`a op b` ⇔ `b flip(op) a`).
fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// Applies (and removes) every pending conjunct that the relation can
/// already evaluate.
fn apply_resolvable(rel: &mut Relation, pending: &mut Vec<Expr>) -> QueryResultT<()> {
    let mut remaining = Vec::new();
    for expr in pending.drain(..) {
        if rel.can_resolve(&expr) {
            let rows = std::mem::take(&mut rel.rows);
            let mut kept = Vec::with_capacity(rows.len());
            for row in rows {
                if truthy(&eval(rel, &row, &expr)?) {
                    kept.push(row);
                }
            }
            rel.rows = kept;
        } else {
            remaining.push(expr);
        }
    }
    *pending = remaining;
    Ok(())
}

/// Joins two relations. Equi-join conjuncts connecting the two sides are
/// removed from `pending` and used as hash-join keys; if none exist the
/// join degenerates to a cross product (filtered later by `pending`).
fn join_relations(
    left: Relation,
    right: Relation,
    pending: &mut Vec<Expr>,
) -> QueryResultT<Relation> {
    let mut left_keys: Vec<usize> = Vec::new();
    let mut right_keys: Vec<usize> = Vec::new();
    let mut remaining = Vec::new();
    for expr in pending.drain(..) {
        if let Expr::Compare {
            left: l,
            op: BinOp::Eq,
            right: r,
        } = &expr
        {
            if let (
                Expr::Column {
                    qualifier: ql,
                    name: nl,
                },
                Expr::Column {
                    qualifier: qr,
                    name: nr,
                },
            ) = (l.as_ref(), r.as_ref())
            {
                let l_in_left = left.resolve(ql.as_deref(), nl);
                let r_in_right = right.resolve(qr.as_deref(), nr);
                let l_in_right = right.resolve(ql.as_deref(), nl);
                let r_in_left = left.resolve(qr.as_deref(), nr);
                if let (Some(li), Some(ri)) = (l_in_left, r_in_right) {
                    left_keys.push(li);
                    right_keys.push(ri);
                    continue;
                }
                if let (Some(li), Some(ri)) = (r_in_left, l_in_right) {
                    left_keys.push(li);
                    right_keys.push(ri);
                    continue;
                }
            }
        }
        remaining.push(expr);
    }
    *pending = remaining;

    let cols: Vec<ColBinding> = left.cols.iter().chain(right.cols.iter()).cloned().collect();
    let mut rows = Vec::new();
    if left_keys.is_empty() {
        // Cross product.
        for l in &left.rows {
            for r in &right.rows {
                let mut joined = l.clone();
                joined.extend(r.iter().cloned());
                rows.push(joined);
            }
        }
    } else {
        // Hash join: build on the right side, probe with the left.
        let mut table: HashMap<Vec<Value>, Vec<&Vec<Value>>> = HashMap::new();
        for r in &right.rows {
            let key: Vec<Value> = right_keys.iter().map(|&i| r[i].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            table.entry(key).or_default().push(r);
        }
        for l in &left.rows {
            let key: Vec<Value> = left_keys.iter().map(|&i| l[i].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            if let Some(matches) = table.get(&key) {
                for r in matches {
                    let mut joined = l.clone();
                    joined.extend(r.iter().cloned());
                    rows.push(joined);
                }
            }
        }
    }
    Ok(Relation { cols, rows })
}

/// Evaluates an expression against a row of a relation.
fn eval(rel: &Relation, row: &[Value], expr: &Expr) -> QueryResultT<Value> {
    match expr {
        Expr::Column { qualifier, name } => {
            let idx = rel
                .resolve(qualifier.as_deref(), name)
                .ok_or_else(|| QueryError::exec(format!("unknown column `{expr}`")))?;
            Ok(row[idx].clone())
        }
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Compare { left, op, right } => {
            let l = eval(rel, row, left)?;
            let r = eval(rel, row, right)?;
            if l.is_null() || r.is_null() {
                return Ok(Value::Bool(false));
            }
            let ord = l.total_cmp(&r);
            let b = match op {
                BinOp::Eq => ord.is_eq(),
                BinOp::NotEq => ord.is_ne(),
                BinOp::Lt => ord.is_lt(),
                BinOp::LtEq => ord.is_le(),
                BinOp::Gt => ord.is_gt(),
                BinOp::GtEq => ord.is_ge(),
            };
            Ok(Value::Bool(b))
        }
        Expr::And(a, b) => Ok(Value::Bool(
            truthy(&eval(rel, row, a)?) && truthy(&eval(rel, row, b)?),
        )),
        Expr::Or(a, b) => Ok(Value::Bool(
            truthy(&eval(rel, row, a)?) || truthy(&eval(rel, row, b)?),
        )),
        Expr::Not(e) => Ok(Value::Bool(!truthy(&eval(rel, row, e)?))),
        Expr::IsNull(e) => Ok(Value::Bool(eval(rel, row, e)?.is_null())),
        Expr::IsNotNull(e) => Ok(Value::Bool(!eval(rel, row, e)?.is_null())),
        Expr::InList { expr, list } => {
            let v = eval(rel, row, expr)?;
            if v.is_null() {
                return Ok(Value::Bool(false));
            }
            for item in list {
                let iv = eval(rel, row, item)?;
                if iv.sql_eq(&v) {
                    return Ok(Value::Bool(true));
                }
            }
            Ok(Value::Bool(false))
        }
    }
}

fn truthy(v: &Value) -> bool {
    matches!(v, Value::Bool(true))
}

/// Projects the final relation through the SELECT list (non-aggregate).
fn project(rel: &Relation, stmt: &SelectStmt) -> QueryResultT<ResultSet> {
    let mut columns = Vec::new();
    let mut exprs: Vec<Option<Expr>> = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Wildcard => {
                for (i, col) in rel.cols.iter().enumerate() {
                    let ambiguous = rel
                        .cols
                        .iter()
                        .filter(|c| c.name.eq_ignore_ascii_case(&col.name))
                        .count()
                        > 1;
                    let name = if ambiguous {
                        format!("{}.{}", col.qualifier, col.name)
                    } else {
                        col.name.clone()
                    };
                    columns.push(name);
                    exprs.push(Some(Expr::Column {
                        qualifier: Some(rel.cols[i].qualifier.clone()),
                        name: rel.cols[i].name.clone(),
                    }));
                }
            }
            SelectItem::Expr { expr, .. } => {
                columns.push(item.output_name());
                exprs.push(Some(expr.clone()));
            }
            SelectItem::Aggregate { .. } => {
                return Err(QueryError::plan(
                    "aggregate used without aggregation context",
                ))
            }
        }
    }
    let mut rows = Vec::with_capacity(rel.rows.len());
    for row in &rel.rows {
        let mut out = Vec::with_capacity(exprs.len());
        for expr in exprs.iter().flatten() {
            out.push(eval(rel, row, expr)?);
        }
        rows.push(out);
    }
    Ok(ResultSet::new(columns, rows))
}

/// Computes GROUP BY groups and aggregates.
fn aggregate(rel: &Relation, stmt: &SelectStmt) -> QueryResultT<ResultSet> {
    // Group rows.
    let mut groups: Vec<(Vec<Value>, Vec<&Vec<Value>>)> = Vec::new();
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    for row in &rel.rows {
        let key: Vec<Value> = stmt
            .group_by
            .iter()
            .map(|e| eval(rel, row, e))
            .collect::<QueryResultT<_>>()?;
        match index.get(&key) {
            Some(&i) => groups[i].1.push(row),
            None => {
                index.insert(key.clone(), groups.len());
                groups.push((key, vec![row]));
            }
        }
    }
    // A query with aggregates but no GROUP BY has exactly one group, even
    // over an empty input.
    if stmt.group_by.is_empty() && groups.is_empty() {
        groups.push((Vec::new(), Vec::new()));
    }

    let columns: Vec<String> = stmt.items.iter().map(|i| i.output_name()).collect();
    let mut rows = Vec::with_capacity(groups.len());
    for (_, members) in &groups {
        let mut out = Vec::with_capacity(stmt.items.len());
        for item in &stmt.items {
            let v = match item {
                SelectItem::Wildcard => {
                    return Err(QueryError::plan(
                        "SELECT * cannot be combined with aggregation",
                    ))
                }
                SelectItem::Expr { expr, .. } => match members.first() {
                    Some(first) => eval(rel, first, expr)?,
                    None => Value::Null,
                },
                SelectItem::Aggregate { func, arg, .. } => {
                    eval_aggregate(rel, members, *func, arg.as_ref())?
                }
            };
            out.push(v);
        }
        rows.push(out);
    }
    Ok(ResultSet::new(columns, rows))
}

fn eval_aggregate(
    rel: &Relation,
    members: &[&Vec<Value>],
    func: AggFunc,
    arg: Option<&Expr>,
) -> QueryResultT<Value> {
    let values: Vec<Value> = match arg {
        None => members.iter().map(|_| Value::Int(1)).collect(),
        Some(expr) => members
            .iter()
            .map(|row| eval(rel, row, expr))
            .collect::<QueryResultT<_>>()?,
    };
    let non_null: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
    Ok(match func {
        AggFunc::Count => Value::Int(non_null.len() as i64),
        AggFunc::Min => non_null
            .iter()
            .min_by(|a, b| a.total_cmp(b))
            .cloned()
            .cloned()
            .unwrap_or(Value::Null),
        AggFunc::Max => non_null
            .iter()
            .max_by(|a, b| a.total_cmp(b))
            .cloned()
            .cloned()
            .unwrap_or(Value::Null),
        AggFunc::Sum => {
            if non_null.is_empty() {
                Value::Null
            } else if non_null
                .iter()
                .all(|v| matches!(v, Value::Int(_) | Value::Timestamp(_)))
            {
                Value::Int(non_null.iter().map(|v| v.as_int().unwrap_or(0)).sum())
            } else {
                Value::Float(non_null.iter().map(|v| v.as_float().unwrap_or(0.0)).sum())
            }
        }
        AggFunc::Avg => {
            if non_null.is_empty() {
                Value::Null
            } else {
                let sum: f64 = non_null.iter().map(|v| v.as_float().unwrap_or(0.0)).sum();
                Value::Float(sum / non_null.len() as f64)
            }
        }
    })
}

/// Sorts aggregate output rows by ORDER BY keys referencing output column
/// names (e.g. `ORDER BY n DESC` where `n` is an aggregate alias).
fn sort_output(out: &mut ResultSet, stmt: &SelectStmt) -> QueryResultT<()> {
    if stmt.order_by.is_empty() {
        return Ok(());
    }
    let mut key_indices = Vec::new();
    for key in &stmt.order_by {
        let name = match &key.expr {
            Expr::Column { name, .. } => name.clone(),
            other => other.to_string(),
        };
        let idx = out.column_index(&name).ok_or_else(|| {
            QueryError::plan(format!("ORDER BY column `{name}` is not in the output"))
        })?;
        key_indices.push((idx, key.descending));
    }
    let mut rows = out.rows().to_vec();
    rows.sort_by(|a, b| {
        for (idx, desc) in &key_indices {
            let ord = a[*idx].total_cmp(&b[*idx]);
            let ord = if *desc { ord.reverse() } else { ord };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    *out = ResultSet::new(out.columns().to_vec(), rows);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use trod_db::DataType;

    fn schema() -> Schema {
        Schema::builder()
            .column("TxnId", DataType::Int)
            .column("ReqId", DataType::Text)
            .nullable("Score", DataType::Float)
            .primary_key(&["TxnId"])
            .build()
            .unwrap()
    }

    /// A single-table catalog bound as `E`.
    fn cat() -> Vec<Binding> {
        vec![Binding {
            binding: "E".into(),
            actual: "Executions".into(),
            schema: schema(),
        }]
    }

    fn col(name: &str) -> Expr {
        Expr::column(name)
    }

    fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    fn cmp(l: Expr, op: BinOp, r: Expr) -> Expr {
        Expr::Compare {
            left: Box::new(l),
            op,
            right: Box::new(r),
        }
    }

    #[test]
    fn lowers_column_literal_comparisons_in_both_orientations() {
        let p = lower_conjunct(&cmp(col("TxnId"), BinOp::Lt, lit(5i64)), &cat(), 0).unwrap();
        assert_eq!(p, Predicate::lt("TxnId", 5i64));
        // Literal-first comparisons mirror the operator.
        let p = lower_conjunct(&cmp(lit(5i64), BinOp::Lt, col("TxnId")), &cat(), 0).unwrap();
        assert_eq!(p, Predicate::gt("TxnId", 5i64));
        // Case-insensitive SQL names resolve to the schema-cased column.
        let p = lower_conjunct(&cmp(col("reqid"), BinOp::Eq, lit("R1")), &cat(), 0).unwrap();
        assert_eq!(p, Predicate::eq("ReqId", "R1"));
        // Qualified references must name this binding.
        let q = cmp(Expr::qualified("E", "TxnId"), BinOp::GtEq, lit(2i64));
        assert_eq!(
            lower_conjunct(&q, &cat(), 0),
            Some(Predicate::ge("TxnId", 2i64))
        );
        let other = cmp(Expr::qualified("F", "TxnId"), BinOp::GtEq, lit(2i64));
        assert_eq!(lower_conjunct(&other, &cat(), 0), None);
    }

    #[test]
    fn lowers_boolean_structure_null_tests_and_in_lists() {
        let e = Expr::Or(
            Box::new(cmp(col("TxnId"), BinOp::Eq, lit(1i64))),
            Box::new(Expr::Not(Box::new(Expr::IsNull(Box::new(col("Score")))))),
        );
        let p = lower_conjunct(&e, &cat(), 0).unwrap();
        assert_eq!(
            p,
            Predicate::eq("TxnId", 1i64).or(Predicate::IsNull("Score".into()).negate())
        );
        let e = Expr::InList {
            expr: Box::new(col("ReqId")),
            list: vec![lit("R1"), lit("R2")],
        };
        let p = lower_conjunct(&e, &cat(), 0).unwrap();
        assert_eq!(
            p,
            Predicate::in_list(
                "ReqId",
                vec![Value::Text("R1".into()), Value::Text("R2".into())]
            )
        );
    }

    #[test]
    fn refuses_conjuncts_it_cannot_express_exactly() {
        // Column-vs-column compares stay in the executor.
        let e = cmp(col("TxnId"), BinOp::Eq, col("Score"));
        assert_eq!(lower_conjunct(&e, &cat(), 0), None);
        // Unknown columns are not lowered (the executor reports them).
        let e = cmp(col("Missing"), BinOp::Eq, lit(1i64));
        assert_eq!(lower_conjunct(&e, &cat(), 0), None);
        // IN over non-literal elements stays behind.
        let e = Expr::InList {
            expr: Box::new(col("ReqId")),
            list: vec![col("ReqId")],
        };
        assert_eq!(lower_conjunct(&e, &cat(), 0), None);
        // A partially-lowerable AND is all-or-nothing: the executor keeps
        // the whole conjunct rather than re-splitting it.
        let e = Expr::And(
            Box::new(cmp(col("TxnId"), BinOp::Eq, lit(1i64))),
            Box::new(cmp(col("TxnId"), BinOp::Eq, col("Score"))),
        );
        assert_eq!(lower_conjunct(&e, &cat(), 0), None);
        // Bare boolean-position columns/literals keep executor truthiness.
        assert_eq!(lower_conjunct(&col("ReqId"), &cat(), 0), None);
        assert_eq!(lower_conjunct(&lit(true), &cat(), 0), None);
    }

    #[test]
    fn unqualified_names_bind_to_the_first_table_that_has_them() {
        // Catalog: E(TxnId, ReqId, Score) then F(EventId, Score). The
        // executor resolves an unqualified `Score` against the joined
        // relation left-to-right, i.e. to E.Score — so it must not lower
        // into F's scan even though F has a Score column too.
        let f_schema = Schema::builder()
            .column("EventId", DataType::Int)
            .column("Score", DataType::Float)
            .primary_key(&["EventId"])
            .build()
            .unwrap();
        let catalog = vec![
            cat().pop().unwrap(),
            Binding {
                binding: "F".into(),
                actual: "Events".into(),
                schema: f_schema,
            },
        ];
        let unqualified = cmp(col("Score"), BinOp::Gt, lit(1.0f64));
        assert_eq!(
            lower_conjunct(&unqualified, &catalog, 0),
            Some(Predicate::gt("Score", 1.0f64)),
            "binds to E, the first table with the column"
        );
        assert_eq!(
            lower_conjunct(&unqualified, &catalog, 1),
            None,
            "must not be captured by F"
        );
        // Qualified references pick their table explicitly.
        let qualified = cmp(Expr::qualified("F", "Score"), BinOp::Gt, lit(1.0f64));
        assert_eq!(lower_conjunct(&qualified, &catalog, 0), None);
        assert_eq!(
            lower_conjunct(&qualified, &catalog, 1),
            Some(Predicate::gt("Score", 1.0f64))
        );
        // F's own column lowers into F: no earlier table shadows it.
        let event = cmp(col("EventId"), BinOp::Eq, lit(3i64));
        assert_eq!(
            lower_conjunct(&event, &catalog, 1),
            Some(Predicate::eq("EventId", 3i64))
        );
    }

    #[test]
    fn projection_needs_tracks_select_order_group_references() {
        let stmt = crate::parse(
            "SELECT ReqId FROM Executions WHERE TxnId > 1 GROUP BY ReqId ORDER BY ReqId",
        )
        .unwrap();
        let needs = ProjectionNeeds::of(&stmt);
        assert!(!needs.wildcard);
        assert!(needs.needs("Executions", "ReqId"));
        // WHERE conjuncts are tracked live by load_table, not here: once
        // lowered into the scan, TxnId need not be materialised at all.
        assert!(!needs.needs("Executions", "TxnId"));
        let stmt = crate::parse("SELECT * FROM Executions").unwrap();
        assert!(ProjectionNeeds::of(&stmt).wildcard);
    }
}
