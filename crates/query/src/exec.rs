//! Query execution.
//!
//! The executor is intentionally simple — relations are vectors of rows —
//! but it plans equi-joins as hash joins, which is what keeps the paper's
//! declarative-debugging query (a join of `Executions` and a per-table
//! event table on `TxnId`) fast enough to sweep to millions of provenance
//! events in benchmark E2.

use std::collections::HashMap;

use trod_db::{Database, Predicate, Ts, Value};

use crate::ast::{AggFunc, BinOp, Expr, SelectItem, SelectStmt, TableRef};
use crate::error::{QueryError, QueryResultT};
use crate::result::ResultSet;

/// Options controlling execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryOptions {
    /// Execute against the state as of this commit timestamp instead of
    /// the latest committed state.
    pub as_of: Option<Ts>,
}

/// One bound column of an intermediate relation.
#[derive(Debug, Clone)]
struct ColBinding {
    /// The table binding (alias or table name) this column came from.
    qualifier: String,
    /// The column name.
    name: String,
}

/// An intermediate relation during execution.
#[derive(Debug, Clone)]
struct Relation {
    cols: Vec<ColBinding>,
    rows: Vec<Vec<Value>>,
}

impl Relation {
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Option<usize> {
        self.cols.iter().position(|c| {
            c.name.eq_ignore_ascii_case(name)
                && qualifier
                    .map(|q| c.qualifier.eq_ignore_ascii_case(q))
                    .unwrap_or(true)
        })
    }

    /// True if the expression only references columns present in this
    /// relation.
    fn can_resolve(&self, expr: &Expr) -> bool {
        match expr {
            Expr::Column { qualifier, name } => self.resolve(qualifier.as_deref(), name).is_some(),
            Expr::Literal(_) => true,
            Expr::Compare { left, right, .. } => self.can_resolve(left) && self.can_resolve(right),
            Expr::And(a, b) | Expr::Or(a, b) => self.can_resolve(a) && self.can_resolve(b),
            Expr::Not(e) | Expr::IsNull(e) | Expr::IsNotNull(e) => self.can_resolve(e),
            Expr::InList { expr, list } => {
                self.can_resolve(expr) && list.iter().all(|e| self.can_resolve(e))
            }
        }
    }
}

/// Executes a parsed statement against a database.
pub fn execute(db: &Database, stmt: &SelectStmt, opts: QueryOptions) -> QueryResultT<ResultSet> {
    let mut pending: Vec<Expr> = Vec::new();
    if let Some(on) = &stmt.from_on {
        pending.extend(on.conjuncts().into_iter().cloned());
    }
    for join in &stmt.joins {
        pending.extend(join.on.conjuncts().into_iter().cloned());
    }
    if let Some(w) = &stmt.where_clause {
        pending.extend(w.conjuncts().into_iter().cloned());
    }

    // Build the joined relation, table by table. Every table is read at
    // ONE snapshot — the explicit `as_of`, or the published clock sampled
    // once up front — so a multi-table query can never observe a torn
    // state (table A after a concurrent commit, table B before it). This
    // matches the session surface's one-snapshot-per-transaction rule.
    let read_ts = opts.as_of.unwrap_or_else(|| db.current_ts());
    let tables = stmt.all_tables();
    if tables.is_empty() {
        return Err(QueryError::plan("query must reference at least one table"));
    }
    let mut rel = load_table(db, tables[0], read_ts)?;
    apply_resolvable(&mut rel, &mut pending)?;
    for table in &tables[1..] {
        let right = load_table(db, table, read_ts)?;
        rel = join_relations(rel, right, &mut pending)?;
        apply_resolvable(&mut rel, &mut pending)?;
    }
    if let Some(unresolved) = pending.first() {
        return Err(QueryError::plan(format!(
            "expression references unknown column: {unresolved}"
        )));
    }

    if stmt.is_aggregate() {
        let mut out = aggregate(&rel, stmt)?;
        sort_output(&mut out, stmt)?;
        if let Some(limit) = stmt.limit {
            out = ResultSet::new(
                out.columns().to_vec(),
                out.rows().iter().take(limit).cloned().collect(),
            );
        }
        return Ok(out);
    }

    // ORDER BY evaluates against the full relation so it can reference
    // columns that are not projected.
    if !stmt.order_by.is_empty() {
        let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = rel
            .rows
            .iter()
            .map(|row| {
                let keys = stmt
                    .order_by
                    .iter()
                    .map(|k| eval(&rel, row, &k.expr))
                    .collect::<QueryResultT<Vec<Value>>>()?;
                Ok((keys, row.clone()))
            })
            .collect::<QueryResultT<_>>()?;
        keyed.sort_by(|(ka, _), (kb, _)| {
            for (i, key) in stmt.order_by.iter().enumerate() {
                let ord = ka[i].total_cmp(&kb[i]);
                let ord = if key.descending { ord.reverse() } else { ord };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        rel.rows = keyed.into_iter().map(|(_, r)| r).collect();
    }
    if let Some(limit) = stmt.limit {
        rel.rows.truncate(limit);
    }
    project(&rel, stmt)
}

fn load_table(db: &Database, table: &TableRef, read_ts: Ts) -> QueryResultT<Relation> {
    // Case-insensitive table resolution so the paper's literal queries
    // work regardless of naming convention.
    let actual = db
        .table_names()
        .into_iter()
        .find(|t| t.eq_ignore_ascii_case(&table.table))
        .ok_or_else(|| QueryError::plan(format!("no such table `{}`", table.table)))?;
    let schema = db.schema_of(&actual)?;
    let binding = table.binding_name().to_string();
    let cols = schema
        .columns()
        .iter()
        .map(|c| ColBinding {
            qualifier: binding.clone(),
            name: c.name.clone(),
        })
        .collect();
    let scanned = db.scan_as_of(&actual, &Predicate::True, read_ts)?;
    // The executor materialises relations of owned values (projections and
    // joins rewrite them), so this is the one place the shared rows are
    // copied out of the storage engine.
    let rows = scanned
        .into_iter()
        .map(|(_, r)| std::sync::Arc::unwrap_or_clone(r).into_values())
        .collect();
    Ok(Relation { cols, rows })
}

/// Applies (and removes) every pending conjunct that the relation can
/// already evaluate.
fn apply_resolvable(rel: &mut Relation, pending: &mut Vec<Expr>) -> QueryResultT<()> {
    let mut remaining = Vec::new();
    for expr in pending.drain(..) {
        if rel.can_resolve(&expr) {
            let rows = std::mem::take(&mut rel.rows);
            let mut kept = Vec::with_capacity(rows.len());
            for row in rows {
                if truthy(&eval(rel, &row, &expr)?) {
                    kept.push(row);
                }
            }
            rel.rows = kept;
        } else {
            remaining.push(expr);
        }
    }
    *pending = remaining;
    Ok(())
}

/// Joins two relations. Equi-join conjuncts connecting the two sides are
/// removed from `pending` and used as hash-join keys; if none exist the
/// join degenerates to a cross product (filtered later by `pending`).
fn join_relations(
    left: Relation,
    right: Relation,
    pending: &mut Vec<Expr>,
) -> QueryResultT<Relation> {
    let mut left_keys: Vec<usize> = Vec::new();
    let mut right_keys: Vec<usize> = Vec::new();
    let mut remaining = Vec::new();
    for expr in pending.drain(..) {
        if let Expr::Compare {
            left: l,
            op: BinOp::Eq,
            right: r,
        } = &expr
        {
            if let (
                Expr::Column {
                    qualifier: ql,
                    name: nl,
                },
                Expr::Column {
                    qualifier: qr,
                    name: nr,
                },
            ) = (l.as_ref(), r.as_ref())
            {
                let l_in_left = left.resolve(ql.as_deref(), nl);
                let r_in_right = right.resolve(qr.as_deref(), nr);
                let l_in_right = right.resolve(ql.as_deref(), nl);
                let r_in_left = left.resolve(qr.as_deref(), nr);
                if let (Some(li), Some(ri)) = (l_in_left, r_in_right) {
                    left_keys.push(li);
                    right_keys.push(ri);
                    continue;
                }
                if let (Some(li), Some(ri)) = (r_in_left, l_in_right) {
                    left_keys.push(li);
                    right_keys.push(ri);
                    continue;
                }
            }
        }
        remaining.push(expr);
    }
    *pending = remaining;

    let cols: Vec<ColBinding> = left.cols.iter().chain(right.cols.iter()).cloned().collect();
    let mut rows = Vec::new();
    if left_keys.is_empty() {
        // Cross product.
        for l in &left.rows {
            for r in &right.rows {
                let mut joined = l.clone();
                joined.extend(r.iter().cloned());
                rows.push(joined);
            }
        }
    } else {
        // Hash join: build on the right side, probe with the left.
        let mut table: HashMap<Vec<Value>, Vec<&Vec<Value>>> = HashMap::new();
        for r in &right.rows {
            let key: Vec<Value> = right_keys.iter().map(|&i| r[i].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            table.entry(key).or_default().push(r);
        }
        for l in &left.rows {
            let key: Vec<Value> = left_keys.iter().map(|&i| l[i].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            if let Some(matches) = table.get(&key) {
                for r in matches {
                    let mut joined = l.clone();
                    joined.extend(r.iter().cloned());
                    rows.push(joined);
                }
            }
        }
    }
    Ok(Relation { cols, rows })
}

/// Evaluates an expression against a row of a relation.
fn eval(rel: &Relation, row: &[Value], expr: &Expr) -> QueryResultT<Value> {
    match expr {
        Expr::Column { qualifier, name } => {
            let idx = rel
                .resolve(qualifier.as_deref(), name)
                .ok_or_else(|| QueryError::exec(format!("unknown column `{expr}`")))?;
            Ok(row[idx].clone())
        }
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Compare { left, op, right } => {
            let l = eval(rel, row, left)?;
            let r = eval(rel, row, right)?;
            if l.is_null() || r.is_null() {
                return Ok(Value::Bool(false));
            }
            let ord = l.total_cmp(&r);
            let b = match op {
                BinOp::Eq => ord.is_eq(),
                BinOp::NotEq => ord.is_ne(),
                BinOp::Lt => ord.is_lt(),
                BinOp::LtEq => ord.is_le(),
                BinOp::Gt => ord.is_gt(),
                BinOp::GtEq => ord.is_ge(),
            };
            Ok(Value::Bool(b))
        }
        Expr::And(a, b) => Ok(Value::Bool(
            truthy(&eval(rel, row, a)?) && truthy(&eval(rel, row, b)?),
        )),
        Expr::Or(a, b) => Ok(Value::Bool(
            truthy(&eval(rel, row, a)?) || truthy(&eval(rel, row, b)?),
        )),
        Expr::Not(e) => Ok(Value::Bool(!truthy(&eval(rel, row, e)?))),
        Expr::IsNull(e) => Ok(Value::Bool(eval(rel, row, e)?.is_null())),
        Expr::IsNotNull(e) => Ok(Value::Bool(!eval(rel, row, e)?.is_null())),
        Expr::InList { expr, list } => {
            let v = eval(rel, row, expr)?;
            if v.is_null() {
                return Ok(Value::Bool(false));
            }
            for item in list {
                let iv = eval(rel, row, item)?;
                if iv.sql_eq(&v) {
                    return Ok(Value::Bool(true));
                }
            }
            Ok(Value::Bool(false))
        }
    }
}

fn truthy(v: &Value) -> bool {
    matches!(v, Value::Bool(true))
}

/// Projects the final relation through the SELECT list (non-aggregate).
fn project(rel: &Relation, stmt: &SelectStmt) -> QueryResultT<ResultSet> {
    let mut columns = Vec::new();
    let mut exprs: Vec<Option<Expr>> = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Wildcard => {
                for (i, col) in rel.cols.iter().enumerate() {
                    let ambiguous = rel
                        .cols
                        .iter()
                        .filter(|c| c.name.eq_ignore_ascii_case(&col.name))
                        .count()
                        > 1;
                    let name = if ambiguous {
                        format!("{}.{}", col.qualifier, col.name)
                    } else {
                        col.name.clone()
                    };
                    columns.push(name);
                    exprs.push(Some(Expr::Column {
                        qualifier: Some(rel.cols[i].qualifier.clone()),
                        name: rel.cols[i].name.clone(),
                    }));
                }
            }
            SelectItem::Expr { expr, .. } => {
                columns.push(item.output_name());
                exprs.push(Some(expr.clone()));
            }
            SelectItem::Aggregate { .. } => {
                return Err(QueryError::plan(
                    "aggregate used without aggregation context",
                ))
            }
        }
    }
    let mut rows = Vec::with_capacity(rel.rows.len());
    for row in &rel.rows {
        let mut out = Vec::with_capacity(exprs.len());
        for expr in exprs.iter().flatten() {
            out.push(eval(rel, row, expr)?);
        }
        rows.push(out);
    }
    Ok(ResultSet::new(columns, rows))
}

/// Computes GROUP BY groups and aggregates.
fn aggregate(rel: &Relation, stmt: &SelectStmt) -> QueryResultT<ResultSet> {
    // Group rows.
    let mut groups: Vec<(Vec<Value>, Vec<&Vec<Value>>)> = Vec::new();
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    for row in &rel.rows {
        let key: Vec<Value> = stmt
            .group_by
            .iter()
            .map(|e| eval(rel, row, e))
            .collect::<QueryResultT<_>>()?;
        match index.get(&key) {
            Some(&i) => groups[i].1.push(row),
            None => {
                index.insert(key.clone(), groups.len());
                groups.push((key, vec![row]));
            }
        }
    }
    // A query with aggregates but no GROUP BY has exactly one group, even
    // over an empty input.
    if stmt.group_by.is_empty() && groups.is_empty() {
        groups.push((Vec::new(), Vec::new()));
    }

    let columns: Vec<String> = stmt.items.iter().map(|i| i.output_name()).collect();
    let mut rows = Vec::with_capacity(groups.len());
    for (_, members) in &groups {
        let mut out = Vec::with_capacity(stmt.items.len());
        for item in &stmt.items {
            let v = match item {
                SelectItem::Wildcard => {
                    return Err(QueryError::plan(
                        "SELECT * cannot be combined with aggregation",
                    ))
                }
                SelectItem::Expr { expr, .. } => match members.first() {
                    Some(first) => eval(rel, first, expr)?,
                    None => Value::Null,
                },
                SelectItem::Aggregate { func, arg, .. } => {
                    eval_aggregate(rel, members, *func, arg.as_ref())?
                }
            };
            out.push(v);
        }
        rows.push(out);
    }
    Ok(ResultSet::new(columns, rows))
}

fn eval_aggregate(
    rel: &Relation,
    members: &[&Vec<Value>],
    func: AggFunc,
    arg: Option<&Expr>,
) -> QueryResultT<Value> {
    let values: Vec<Value> = match arg {
        None => members.iter().map(|_| Value::Int(1)).collect(),
        Some(expr) => members
            .iter()
            .map(|row| eval(rel, row, expr))
            .collect::<QueryResultT<_>>()?,
    };
    let non_null: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
    Ok(match func {
        AggFunc::Count => Value::Int(non_null.len() as i64),
        AggFunc::Min => non_null
            .iter()
            .min_by(|a, b| a.total_cmp(b))
            .cloned()
            .cloned()
            .unwrap_or(Value::Null),
        AggFunc::Max => non_null
            .iter()
            .max_by(|a, b| a.total_cmp(b))
            .cloned()
            .cloned()
            .unwrap_or(Value::Null),
        AggFunc::Sum => {
            if non_null.is_empty() {
                Value::Null
            } else if non_null
                .iter()
                .all(|v| matches!(v, Value::Int(_) | Value::Timestamp(_)))
            {
                Value::Int(non_null.iter().map(|v| v.as_int().unwrap_or(0)).sum())
            } else {
                Value::Float(non_null.iter().map(|v| v.as_float().unwrap_or(0.0)).sum())
            }
        }
        AggFunc::Avg => {
            if non_null.is_empty() {
                Value::Null
            } else {
                let sum: f64 = non_null.iter().map(|v| v.as_float().unwrap_or(0.0)).sum();
                Value::Float(sum / non_null.len() as f64)
            }
        }
    })
}

/// Sorts aggregate output rows by ORDER BY keys referencing output column
/// names (e.g. `ORDER BY n DESC` where `n` is an aggregate alias).
fn sort_output(out: &mut ResultSet, stmt: &SelectStmt) -> QueryResultT<()> {
    if stmt.order_by.is_empty() {
        return Ok(());
    }
    let mut key_indices = Vec::new();
    for key in &stmt.order_by {
        let name = match &key.expr {
            Expr::Column { name, .. } => name.clone(),
            other => other.to_string(),
        };
        let idx = out.column_index(&name).ok_or_else(|| {
            QueryError::plan(format!("ORDER BY column `{name}` is not in the output"))
        })?;
        key_indices.push((idx, key.descending));
    }
    let mut rows = out.rows().to_vec();
    rows.sort_by(|a, b| {
        for (idx, desc) in &key_indices {
            let ord = a[*idx].total_cmp(&b[*idx]);
            let ord = if *desc { ord.reverse() } else { ord };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    *out = ResultSet::new(out.columns().to_vec(), rows);
    Ok(())
}
