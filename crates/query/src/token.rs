//! SQL tokenizer.

use crate::error::{QueryError, QueryResultT};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (keywords are recognized case-insensitively
    /// by the parser; the lexer preserves the original text).
    Ident(String),
    /// String literal, single quotes, with '' as the escape for a quote.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    Comma,
    Dot,
    LParen,
    RParen,
    Star,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Semicolon,
}

impl Token {
    /// True if this token is the given keyword (case-insensitive).
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes a SQL string.
pub fn tokenize(sql: &str) -> QueryResultT<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_ascii_whitespace() => i += 1,
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    return Err(QueryError::Lex {
                        position: i,
                        message: "expected `=` after `!`".into(),
                    });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::LtEq);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let (s, next) = lex_string(sql, i)?;
                tokens.push(Token::Str(s));
                i = next;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            c if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())) =>
            {
                let (tok, next) = lex_number(sql, i)?;
                tokens.push(tok);
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(sql[start..i].to_string()));
            }
            other => {
                return Err(QueryError::Lex {
                    position: i,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(tokens)
}

fn lex_string(sql: &str, start: usize) -> QueryResultT<(String, usize)> {
    let bytes = sql.as_bytes();
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == b'\'' {
            if bytes.get(i + 1) == Some(&b'\'') {
                out.push('\'');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    Err(QueryError::Lex {
        position: start,
        message: "unterminated string literal".into(),
    })
}

fn lex_number(sql: &str, start: usize) -> QueryResultT<(Token, usize)> {
    let bytes = sql.as_bytes();
    let mut i = start;
    if bytes[i] == b'-' {
        i += 1;
    }
    let mut is_float = false;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_digit() {
            i += 1;
        } else if c == '.' && !is_float && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) {
            is_float = true;
            i += 1;
        } else {
            break;
        }
    }
    let text = &sql[start..i];
    let tok = if is_float {
        Token::Float(text.parse().map_err(|_| QueryError::Lex {
            position: start,
            message: format!("invalid float `{text}`"),
        })?)
    } else {
        Token::Int(text.parse().map_err(|_| QueryError::Lex {
            position: start,
            message: format!("invalid integer `{text}`"),
        })?)
    };
    Ok((tok, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_the_papers_query() {
        let sql = "SELECT Timestamp, ReqId, HandlerName \
                   FROM Executions as E, ForumEvents as F \
                   ON E.TxnId = F.TxnId \
                   WHERE F.UserId = 'U1' AND F.Forum = 'F2' AND F.Type = 'Insert' \
                   ORDER BY Timestamp ASC;";
        let tokens = tokenize(sql).unwrap();
        assert!(tokens.iter().any(|t| t.is_keyword("SELECT")));
        assert!(tokens
            .iter()
            .any(|t| matches!(t, Token::Str(s) if s == "U1")));
        assert_eq!(*tokens.last().unwrap(), Token::Semicolon);
    }

    #[test]
    fn numbers_and_operators() {
        let tokens = tokenize("a >= 10 AND b < 2.5 AND c != -3 OR d <> 4").unwrap();
        assert!(tokens.contains(&Token::GtEq));
        assert!(tokens.contains(&Token::Int(10)));
        assert!(tokens.contains(&Token::Float(2.5)));
        assert!(tokens.contains(&Token::Int(-3)));
        assert_eq!(tokens.iter().filter(|t| **t == Token::NotEq).count(), 2);
    }

    #[test]
    fn string_escapes() {
        let tokens = tokenize("'it''s fine'").unwrap();
        assert_eq!(tokens, vec![Token::Str("it's fine".into())]);
    }

    #[test]
    fn comments_are_skipped() {
        let tokens = tokenize("SELECT a -- trailing comment\nFROM t").unwrap();
        assert_eq!(tokens.len(), 4);
    }

    #[test]
    fn lex_errors_carry_positions() {
        let err = tokenize("SELECT @").unwrap_err();
        assert!(matches!(err, QueryError::Lex { position: 7, .. }));
        let err = tokenize("'unterminated").unwrap_err();
        assert!(matches!(err, QueryError::Lex { .. }));
        let err = tokenize("a ! b").unwrap_err();
        assert!(matches!(err, QueryError::Lex { .. }));
    }

    #[test]
    fn dotted_identifiers_tokenize_as_parts() {
        let tokens = tokenize("E.TxnId").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("E".into()),
                Token::Dot,
                Token::Ident("TxnId".into())
            ]
        );
    }
}
