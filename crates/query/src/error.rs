//! Query-layer errors.

use std::fmt;

use trod_db::DbError;

/// Errors produced while lexing, parsing, planning or executing SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The SQL text could not be tokenized.
    Lex { position: usize, message: String },
    /// The token stream could not be parsed.
    Parse { message: String },
    /// A referenced table or column does not exist, or an expression is
    /// not valid in its position.
    Plan { message: String },
    /// A runtime failure during execution (type errors, etc.).
    Execution { message: String },
    /// An underlying storage-engine error.
    Storage(DbError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { position, message } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            QueryError::Parse { message } => write!(f, "parse error: {message}"),
            QueryError::Plan { message } => write!(f, "planning error: {message}"),
            QueryError::Execution { message } => write!(f, "execution error: {message}"),
            QueryError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<DbError> for QueryError {
    fn from(e: DbError) -> Self {
        QueryError::Storage(e)
    }
}

impl QueryError {
    pub(crate) fn parse(message: impl Into<String>) -> Self {
        QueryError::Parse {
            message: message.into(),
        }
    }

    pub(crate) fn plan(message: impl Into<String>) -> Self {
        QueryError::Plan {
            message: message.into(),
        }
    }

    pub(crate) fn exec(message: impl Into<String>) -> Self {
        QueryError::Execution {
            message: message.into(),
        }
    }
}

/// Convenience alias.
pub type QueryResultT<T> = Result<T, QueryError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = QueryError::Lex {
            position: 4,
            message: "bad char".into(),
        };
        assert!(e.to_string().contains("byte 4"));
        let e = QueryError::from(DbError::NoSuchTable("x".into()));
        assert!(e.to_string().contains("x"));
    }
}
