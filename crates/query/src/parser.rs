//! Recursive-descent parser for the supported SQL subset.
//!
//! Grammar (informal):
//!
//! ```text
//! select   := SELECT items FROM table (',' table)* [ON expr]
//!             (JOIN table ON expr)*
//!             [WHERE expr] [GROUP BY exprs] [ORDER BY key (',' key)*]
//!             [LIMIT int] [';']
//! items    := '*' | item (',' item)*
//! item     := agg '(' ('*' | expr) ')' [AS ident] | expr [AS ident]
//! expr     := or_expr
//! or_expr  := and_expr (OR and_expr)*
//! and_expr := not_expr (AND not_expr)*
//! not_expr := NOT not_expr | predicate
//! predicate:= primary [cmp primary | IS [NOT] NULL | [NOT] IN '(' literals ')']
//! primary  := literal | column | '(' expr ')'
//! column   := ident ['.' ident]
//! ```

use trod_db::Value;

use crate::ast::{AggFunc, BinOp, Expr, Join, OrderKey, SelectItem, SelectStmt, TableRef};
use crate::error::{QueryError, QueryResultT};
use crate::token::{tokenize, Token};

/// Parses a single SELECT statement.
pub fn parse(sql: &str) -> QueryResultT<SelectStmt> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser { tokens, pos: 0 };
    let stmt = parser.parse_select()?;
    parser.expect_end()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_keyword(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> QueryResultT<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(QueryError::parse(format!(
                "expected keyword `{kw}`, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Token) -> QueryResultT<()> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(QueryError::parse(format!(
                "expected {tok:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_ident(&mut self) -> QueryResultT<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(QueryError::parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn expect_end(&mut self) -> QueryResultT<()> {
        self.eat(&Token::Semicolon);
        if let Some(t) = self.peek() {
            return Err(QueryError::parse(format!(
                "unexpected trailing token {t:?}"
            )));
        }
        Ok(())
    }

    fn parse_select(&mut self) -> QueryResultT<SelectStmt> {
        self.expect_keyword("SELECT")?;
        let items = self.parse_select_items()?;
        self.expect_keyword("FROM")?;
        let mut from = vec![self.parse_table_ref()?];
        while self.eat(&Token::Comma) {
            from.push(self.parse_table_ref()?);
        }
        let from_on = if self.eat_keyword("ON") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut joins = Vec::new();
        loop {
            // INNER JOIN / JOIN.
            if self.eat_keyword("INNER") {
                self.expect_keyword("JOIN")?;
            } else if !self.eat_keyword("JOIN") {
                break;
            }
            let table = self.parse_table_ref()?;
            self.expect_keyword("ON")?;
            let on = self.parse_expr()?;
            joins.push(Join { table, on });
        }
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.parse_expr()?);
            while self.eat(&Token::Comma) {
                group_by.push(self.parse_expr()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let descending = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                order_by.push(OrderKey { expr, descending });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(QueryError::parse(format!(
                        "expected a non-negative integer after LIMIT, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(SelectStmt {
            items,
            from,
            from_on,
            joins,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn parse_select_items(&mut self) -> QueryResultT<Vec<SelectItem>> {
        if self.eat(&Token::Star) {
            return Ok(vec![SelectItem::Wildcard]);
        }
        let mut items = vec![self.parse_select_item()?];
        while self.eat(&Token::Comma) {
            items.push(self.parse_select_item()?);
        }
        Ok(items)
    }

    fn parse_select_item(&mut self) -> QueryResultT<SelectItem> {
        // Aggregate?
        if let Some(Token::Ident(name)) = self.peek() {
            let func = match name.to_ascii_uppercase().as_str() {
                "COUNT" => Some(AggFunc::Count),
                "SUM" => Some(AggFunc::Sum),
                "MIN" => Some(AggFunc::Min),
                "MAX" => Some(AggFunc::Max),
                "AVG" => Some(AggFunc::Avg),
                _ => None,
            };
            if let Some(func) = func {
                if self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
                    self.pos += 2; // consume name and '('
                    let arg = if self.eat(&Token::Star) {
                        None
                    } else {
                        Some(self.parse_expr()?)
                    };
                    self.expect(&Token::RParen)?;
                    let alias = self.parse_alias()?;
                    return Ok(SelectItem::Aggregate { func, arg, alias });
                }
            }
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_alias(&mut self) -> QueryResultT<Option<String>> {
        if self.eat_keyword("AS") {
            Ok(Some(self.expect_ident()?))
        } else {
            Ok(None)
        }
    }

    fn parse_table_ref(&mut self) -> QueryResultT<TableRef> {
        let table = self.expect_ident()?;
        // `AS alias` or a bare alias identifier (but not a keyword that
        // starts the next clause).
        let alias = if self.eat_keyword("AS") {
            Some(self.expect_ident()?)
        } else if let Some(Token::Ident(next)) = self.peek() {
            const CLAUSE_KEYWORDS: [&str; 9] = [
                "ON", "JOIN", "INNER", "WHERE", "GROUP", "ORDER", "LIMIT", "AS", "ASC",
            ];
            if CLAUSE_KEYWORDS
                .iter()
                .any(|kw| next.eq_ignore_ascii_case(kw))
            {
                None
            } else {
                Some(self.expect_ident()?)
            }
        } else {
            None
        };
        Ok(TableRef { table, alias })
    }

    fn parse_expr(&mut self) -> QueryResultT<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> QueryResultT<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("OR") {
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> QueryResultT<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("AND") {
            let right = self.parse_not()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> QueryResultT<Expr> {
        if self.eat_keyword("NOT") {
            let inner = self.parse_not()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.parse_predicate()
    }

    fn parse_predicate(&mut self) -> QueryResultT<Expr> {
        let left = self.parse_primary()?;
        // IS [NOT] NULL
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(if negated {
                Expr::IsNotNull(Box::new(left))
            } else {
                Expr::IsNull(Box::new(left))
            });
        }
        // [NOT] IN (...)
        let negated_in = if self.peek().is_some_and(|t| t.is_keyword("NOT"))
            && self
                .tokens
                .get(self.pos + 1)
                .is_some_and(|t| t.is_keyword("IN"))
        {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.eat_keyword("IN") {
            self.expect(&Token::LParen)?;
            let mut list = vec![self.parse_primary()?];
            while self.eat(&Token::Comma) {
                list.push(self.parse_primary()?);
            }
            self.expect(&Token::RParen)?;
            let expr = Expr::InList {
                expr: Box::new(left),
                list,
            };
            return Ok(if negated_in {
                Expr::Not(Box::new(expr))
            } else {
                expr
            });
        }
        // Comparison.
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::NotEq) => Some(BinOp::NotEq),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::LtEq) => Some(BinOp::LtEq),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::GtEq) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_primary()?;
            return Ok(Expr::Compare {
                left: Box::new(left),
                op,
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn parse_primary(&mut self) -> QueryResultT<Expr> {
        match self.next() {
            Some(Token::Int(v)) => Ok(Expr::Literal(Value::Int(v))),
            Some(Token::Float(v)) => Ok(Expr::Literal(Value::Float(v))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::Text(s))),
            Some(Token::LParen) => {
                let inner = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Some(Token::Ident(name)) => {
                if name.eq_ignore_ascii_case("NULL") {
                    return Ok(Expr::Literal(Value::Null));
                }
                if name.eq_ignore_ascii_case("TRUE") {
                    return Ok(Expr::Literal(Value::Bool(true)));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    return Ok(Expr::Literal(Value::Bool(false)));
                }
                if self.eat(&Token::Dot) {
                    let column = self.expect_ident()?;
                    Ok(Expr::Column {
                        qualifier: Some(name),
                        name: column,
                    })
                } else {
                    Ok(Expr::Column {
                        qualifier: None,
                        name,
                    })
                }
            }
            other => Err(QueryError::parse(format!(
                "expected expression, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_declarative_debugging_query() {
        let sql = "SELECT Timestamp, ReqId, HandlerName \
                   FROM Executions as E, ForumEvents as F \
                   ON E.TxnId = F.TxnId \
                   WHERE F.UserId = 'U1' AND F.Forum = 'F2' AND F.Type = 'Insert' \
                   ORDER BY Timestamp ASC;";
        let stmt = parse(sql).unwrap();
        assert_eq!(stmt.items.len(), 3);
        assert_eq!(stmt.from.len(), 2);
        assert_eq!(stmt.from[0].binding_name(), "E");
        assert_eq!(stmt.from[1].binding_name(), "F");
        assert!(stmt.from_on.is_some());
        let where_conjuncts = stmt.where_clause.as_ref().unwrap().conjuncts().len();
        assert_eq!(where_conjuncts, 3);
        assert_eq!(stmt.order_by.len(), 1);
        assert!(!stmt.order_by[0].descending);
    }

    #[test]
    fn parses_the_papers_access_control_query() {
        let sql = "SELECT Timestamp, ReqId, HandlerName \
                   FROM Executions as E, ProfileEvents as P \
                   ON E.TxnId = P.TxnId \
                   WHERE P.UserName != P.UpdatedBy AND P.Type = 'Update'";
        let stmt = parse(sql).unwrap();
        assert_eq!(stmt.from[1].table, "ProfileEvents");
        assert!(stmt.where_clause.is_some());
    }

    #[test]
    fn parses_explicit_joins_group_by_and_limit() {
        let sql = "SELECT HandlerName, COUNT(*) AS n FROM Executions \
                   JOIN ForumEvents ON Executions.TxnId = ForumEvents.TxnId \
                   WHERE ForumEvents.Type = 'Insert' \
                   GROUP BY HandlerName ORDER BY n DESC LIMIT 10";
        let stmt = parse(sql).unwrap();
        assert_eq!(stmt.joins.len(), 1);
        assert!(stmt.is_aggregate());
        assert_eq!(stmt.group_by.len(), 1);
        assert_eq!(stmt.limit, Some(10));
        assert!(stmt.order_by[0].descending);
        assert_eq!(stmt.items[1].output_name(), "n");
    }

    #[test]
    fn parses_wildcard_and_aggregates_without_group_by() {
        let stmt = parse("SELECT * FROM t").unwrap();
        assert_eq!(stmt.items, vec![SelectItem::Wildcard]);
        let stmt = parse("SELECT COUNT(*), MAX(ts) FROM t WHERE a IN (1, 2, 3)").unwrap();
        assert!(stmt.is_aggregate());
        assert_eq!(stmt.items.len(), 2);
    }

    #[test]
    fn parses_is_null_not_in_and_parentheses() {
        let stmt =
            parse("SELECT a FROM t WHERE (a IS NULL OR b IS NOT NULL) AND c NOT IN (1,2)").unwrap();
        let w = stmt.where_clause.unwrap();
        assert_eq!(w.conjuncts().len(), 2);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT a t").is_err());
        assert!(parse("SELECT a FROM t WHERE").is_err());
        assert!(parse("SELECT a FROM t LIMIT x").is_err());
        assert!(parse("SELECT a FROM t extra junk here").is_err());
        assert!(parse("UPDATE t SET a = 1").is_err());
    }

    #[test]
    fn bare_table_aliases_without_as() {
        let stmt = parse("SELECT e.a FROM Executions e WHERE e.a = 1").unwrap();
        assert_eq!(stmt.from[0].binding_name(), "e");
    }

    #[test]
    fn inner_join_keyword_accepted() {
        let stmt = parse("SELECT a FROM t INNER JOIN u ON t.id = u.id").unwrap();
        assert_eq!(stmt.joins.len(), 1);
    }
}
