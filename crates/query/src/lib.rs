//! # trod-query
//!
//! A small SQL engine over [`trod_db`] tables: tokenizer, recursive-descent
//! parser, and an executor with hash equi-joins, filters, aggregates,
//! ordering and limits.
//!
//! It exists so that TROD's *declarative debugging* (paper §3.3/§3.4) can
//! run the paper's literal SQL queries against the provenance database —
//! for example the query that locates the requests which inserted the
//! duplicated Moodle forum subscriptions:
//!
//! ```
//! use trod_db::{Database, DataType, Schema, row};
//! use trod_query::QueryEngine;
//!
//! let db = Database::new();
//! db.create_table(
//!     "Executions",
//!     Schema::builder()
//!         .column("TxnId", DataType::Int)
//!         .column("Timestamp", DataType::Int)
//!         .column("HandlerName", DataType::Text)
//!         .column("ReqId", DataType::Text)
//!         .primary_key(&["TxnId"])
//!         .build()
//!         .unwrap(),
//! )
//! .unwrap();
//! let mut txn = db.begin();
//! txn.insert("Executions", row![1i64, 100i64, "subscribeUser", "R1"]).unwrap();
//! txn.insert("Executions", row![2i64, 101i64, "subscribeUser", "R2"]).unwrap();
//! txn.commit().unwrap();
//!
//! let engine = QueryEngine::new(db);
//! let result = engine
//!     .execute("SELECT ReqId FROM Executions WHERE HandlerName = 'subscribeUser' ORDER BY Timestamp ASC")
//!     .unwrap();
//! assert_eq!(result.len(), 2);
//! ```

pub mod ast;
pub mod error;
pub mod exec;
pub mod parser;
pub mod result;
pub mod token;

pub use ast::{AggFunc, BinOp, Expr, Join, OrderKey, SelectItem, SelectStmt, TableRef};
pub use error::{QueryError, QueryResultT};
pub use exec::QueryOptions;
pub use result::ResultSet;

use trod_db::{Database, Ts};

/// Convenience wrapper binding a database to the parser and executor.
#[derive(Debug, Clone)]
pub struct QueryEngine {
    db: Database,
}

impl QueryEngine {
    /// Creates an engine over `db`.
    pub fn new(db: Database) -> Self {
        QueryEngine { db }
    }

    /// The underlying database handle.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Parses and executes `sql` against the latest committed state.
    pub fn execute(&self, sql: &str) -> QueryResultT<ResultSet> {
        let stmt = parser::parse(sql)?;
        exec::execute(&self.db, &stmt, QueryOptions::default())
    }

    /// Parses and executes `sql` against the state as of `ts`.
    pub fn execute_as_of(&self, sql: &str, ts: Ts) -> QueryResultT<ResultSet> {
        let stmt = parser::parse(sql)?;
        exec::execute(&self.db, &stmt, QueryOptions { as_of: Some(ts) })
    }

    /// Executes an already parsed statement.
    pub fn execute_stmt(&self, stmt: &SelectStmt, opts: QueryOptions) -> QueryResultT<ResultSet> {
        exec::execute(&self.db, stmt, opts)
    }
}

/// Parses a SELECT statement without executing it.
pub fn parse(sql: &str) -> QueryResultT<SelectStmt> {
    parser::parse(sql)
}
