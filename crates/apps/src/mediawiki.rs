//! The MediaWiki page-edit application (paper §4.1).
//!
//! Re-implements the transactional shape of two real MediaWiki bugs:
//!
//! * **MW-44325** — concurrent edits of the same page can create
//!   duplicated site-URL links because the page object and the `SiteLink`
//!   table are updated non-atomically (check in one transaction, insert in
//!   another).
//! * **MW-39225** — the page-edit handler reads the page in one
//!   transaction and writes the new revision/size in another; a concurrent
//!   edit between the two makes the recorded "article size change" wrong
//!   (a lost update on the size/revision counters).
//!
//! As with the Moodle application, both the buggy and the fixed handler
//! registries are provided.

use trod_db::{row, DataType, Database, Key, Predicate, Schema, Value};
use trod_provenance::ProvenanceStore;
use trod_runtime::{point_label, Args, HandlerError, HandlerRegistry};

/// Pages table: title, content, size and revision counter.
pub const PAGES_TABLE: &str = "pages";
/// Site links table: the table MW-44325 pollutes with duplicates.
pub const SITE_LINKS_TABLE: &str = "site_links";
/// Edit history table: records the size delta of every edit (MW-39225).
pub const REVISIONS_TABLE: &str = "revisions";

/// Creates the MediaWiki schema in a fresh database.
pub fn mediawiki_db() -> Database {
    let db = Database::new();
    create_schema(&db);
    db
}

/// Creates the MediaWiki tables on an existing database.
pub fn create_schema(db: &Database) {
    db.create_table(
        PAGES_TABLE,
        Schema::builder()
            .column("title", DataType::Text)
            .column("content", DataType::Text)
            .column("size", DataType::Int)
            .column("revision", DataType::Int)
            .primary_key(&["title"])
            .build()
            .expect("static schema"),
    )
    .expect("fresh database");
    db.create_table(
        SITE_LINKS_TABLE,
        Schema::builder()
            .column("link_id", DataType::Text)
            .column("page", DataType::Text)
            .column("url", DataType::Text)
            .primary_key(&["link_id"])
            .build()
            .expect("static schema"),
    )
    .expect("fresh database");
    db.create_index(SITE_LINKS_TABLE, "page").expect("index");
    db.create_table(
        REVISIONS_TABLE,
        Schema::builder()
            .column("rev_id", DataType::Text)
            .column("page", DataType::Text)
            .column("size_delta", DataType::Int)
            .column("new_size", DataType::Int)
            .primary_key(&["rev_id"])
            .build()
            .expect("static schema"),
    )
    .expect("fresh database");
}

/// Creates a provenance store with the MediaWiki tables registered
/// (`site_links` → `SiteLinkEvents`, etc.).
pub fn provenance_for(db: &Database) -> ProvenanceStore {
    ProvenanceStore::for_application(db).expect("fresh provenance store")
}

fn require_str(args: &Args, name: &str) -> Result<String, HandlerError> {
    args.get_str(name)
        .map(|s| s.to_string())
        .ok_or_else(|| HandlerError::BadArgument(format!("missing `{name}`")))
}

/// The buggy handler registry.
pub fn registry() -> HandlerRegistry {
    let mut registry = HandlerRegistry::new();

    registry.register_fn("createPage", |ctx, args| {
        let title = require_str(args, "title")?;
        let content = args.get_str("content").unwrap_or("").to_string();
        let mut txn = ctx.txn("func:createPage");
        let size = content.len() as i64;
        txn.insert(PAGES_TABLE, row![title, content, size, 1i64])?;
        txn.commit()?;
        Ok(Value::Int(size))
    });

    // editPage, buggy (MW-39225 shape): read in one transaction, write the
    // new content/size/revision in a second transaction using the stale
    // read, and record the (possibly wrong) size delta.
    registry.register_fn("editPage", |ctx, args| {
        let title = require_str(args, "title")?;
        let content = require_str(args, "content")?;
        let rev_id = require_str(args, "rev_id")?;

        ctx.sync_point("pre-read");
        let mut read = ctx.txn("func:readPage");
        let key = Key::single(title.clone());
        let page = read
            .get(PAGES_TABLE, &key)?
            .ok_or_else(|| HandlerError::App(format!("no such page {title}")))?;
        read.commit()?;
        ctx.sync_point("post-read");
        let old_size = page[2].as_int().unwrap_or(0);
        let old_revision = page[3].as_int().unwrap_or(0);

        ctx.sync_point("pre-write");
        let new_size = content.len() as i64;
        let mut write = ctx.txn("func:writePage");
        write.update(
            PAGES_TABLE,
            &key,
            row![title.clone(), content, new_size, old_revision + 1],
        )?;
        write.insert(
            REVISIONS_TABLE,
            row![rev_id, title.clone(), new_size - old_size, new_size],
        )?;
        write.commit()?;
        ctx.sync_point("post-write");
        Ok(Value::Int(new_size - old_size))
    });

    // addSiteLink, buggy (MW-44325 shape): existence check and insert in
    // two transactions, so concurrent edits create duplicated URL links.
    registry.register_fn("addSiteLink", |ctx, args| {
        let link_id = require_str(args, "link_id")?;
        let page = require_str(args, "page")?;
        let url = require_str(args, "url")?;

        ctx.sync_point("pre-check");
        let mut check = ctx.txn("func:checkSiteLink");
        let exists = check.exists(
            SITE_LINKS_TABLE,
            &Predicate::eq("page", &page as &str).and(Predicate::eq("url", &url as &str)),
        )?;
        check.commit()?;
        ctx.sync_point("post-check");
        if exists {
            return Ok(Value::Bool(false));
        }

        ctx.sync_point("pre-insert");
        let mut insert = ctx.txn("func:insertSiteLink");
        insert.insert(SITE_LINKS_TABLE, row![link_id, page, url])?;
        insert.commit()?;
        ctx.sync_point("post-insert");
        Ok(Value::Bool(true))
    });

    registry.register_fn("getPage", |ctx, args| {
        let title = require_str(args, "title")?;
        let mut txn = ctx.txn("func:getPage");
        let page = txn.get(PAGES_TABLE, &Key::single(title.clone()))?;
        txn.commit()?;
        match page {
            Some(p) => Ok(Value::Text(format!(
                "size={},revision={}",
                p[2].as_int().unwrap_or(0),
                p[3].as_int().unwrap_or(0)
            ))),
            None => Err(HandlerError::App(format!("no such page {title}"))),
        }
    });

    registry.register_fn("listSiteLinks", |ctx, args| {
        let page = require_str(args, "page")?;
        let mut txn = ctx.txn("func:listSiteLinks");
        let links = txn.scan(SITE_LINKS_TABLE, &Predicate::eq("page", &page as &str))?;
        txn.commit()?;
        let mut urls: Vec<String> = links
            .iter()
            .map(|(_, r)| r[2].as_text().unwrap_or("").to_string())
            .collect();
        urls.sort();
        let before = urls.len();
        urls.dedup();
        if urls.len() != before {
            return Err(HandlerError::App(format!(
                "duplicate site links detected for page {page}"
            )));
        }
        Ok(Value::Text(urls.join(",")))
    });

    registry
}

/// The fixed registry: `editPage` and `addSiteLink` each use a single
/// serializable transaction.
pub fn patched_registry() -> HandlerRegistry {
    registry()
        .with_replacement_fn("editPage", |ctx, args| {
            let title = require_str(args, "title")?;
            let content = require_str(args, "content")?;
            let rev_id = require_str(args, "rev_id")?;
            let mut txn =
                ctx.txn_with("func:editPageAtomic", trod_db::IsolationLevel::Serializable);
            let key = Key::single(title.clone());
            let page = txn
                .get(PAGES_TABLE, &key)?
                .ok_or_else(|| HandlerError::App(format!("no such page {title}")))?;
            let old_size = page[2].as_int().unwrap_or(0);
            let old_revision = page[3].as_int().unwrap_or(0);
            let new_size = content.len() as i64;
            txn.update(
                PAGES_TABLE,
                &key,
                row![title.clone(), content, new_size, old_revision + 1],
            )?;
            txn.insert(
                REVISIONS_TABLE,
                row![rev_id, title.clone(), new_size - old_size, new_size],
            )?;
            txn.commit()?;
            Ok(Value::Int(new_size - old_size))
        })
        .with_replacement_fn("addSiteLink", |ctx, args| {
            let link_id = require_str(args, "link_id")?;
            let page = require_str(args, "page")?;
            let url = require_str(args, "url")?;
            let mut txn = ctx.txn_with(
                "func:addSiteLinkAtomic",
                trod_db::IsolationLevel::Serializable,
            );
            let exists = txn.exists(
                SITE_LINKS_TABLE,
                &Predicate::eq("page", &page as &str).and(Predicate::eq("url", &url as &str)),
            )?;
            if exists {
                txn.commit()?;
                return Ok(Value::Bool(false));
            }
            txn.insert(SITE_LINKS_TABLE, row![link_id, page, url])?;
            txn.commit()?;
            Ok(Value::Bool(true))
        })
}

/// Arguments for an `editPage` request.
pub fn edit_args(rev_id: &str, title: &str, content: &str) -> Args {
    Args::new()
        .with("rev_id", rev_id)
        .with("title", title)
        .with("content", content)
}

/// Arguments for an `addSiteLink` request.
pub fn sitelink_args(link_id: &str, page: &str, url: &str) -> Args {
    Args::new()
        .with("link_id", link_id)
        .with("page", page)
        .with("url", url)
}

/// The scheduler script that forces the MW-44325 interleaving between two
/// `addSiteLink` requests (both check, then both insert).
pub fn sitelink_race_script(first_req: &str, second_req: &str) -> Vec<String> {
    vec![
        point_label(first_req, "pre-check"),
        point_label(first_req, "post-check"),
        point_label(second_req, "pre-check"),
        point_label(second_req, "post-check"),
        point_label(second_req, "pre-insert"),
        point_label(second_req, "post-insert"),
        point_label(first_req, "pre-insert"),
        point_label(first_req, "post-insert"),
    ]
}

/// The scheduler script that forces the MW-39225 interleaving between two
/// `editPage` requests: both read the page, then both write, so the second
/// writer's size delta is computed from a stale size.
pub fn edit_race_script(first_req: &str, second_req: &str) -> Vec<String> {
    vec![
        point_label(first_req, "pre-read"),
        point_label(first_req, "post-read"),
        point_label(second_req, "pre-read"),
        point_label(second_req, "post-read"),
        point_label(first_req, "pre-write"),
        point_label(first_req, "post-write"),
        point_label(second_req, "pre-write"),
        point_label(second_req, "post-write"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use trod_db::IsolationLevel;
    use trod_runtime::{Runtime, Scheduler};

    fn racy_runtime(script: Vec<String>, registry: HandlerRegistry) -> Runtime {
        Runtime::builder(mediawiki_db(), registry)
            .default_isolation(IsolationLevel::ReadCommitted)
            .scheduler(Arc::new(Scheduler::scripted(script)))
            .request_prefix("AUX-")
            .build()
    }

    fn run_pair(runtime: &Runtime, reqs: [(&str, &str, Args); 2]) {
        std::thread::scope(|scope| {
            for (req_id, handler, args) in reqs {
                let req_id = req_id.to_string();
                let handler = handler.to_string();
                scope.spawn(move || runtime.handle_request_with_id(&req_id, &handler, args));
            }
        });
    }

    #[test]
    fn sitelink_race_creates_duplicates_and_listing_detects_them() {
        let runtime = racy_runtime(sitelink_race_script("E1", "E2"), registry());
        runtime.must_handle(
            "createPage",
            Args::new().with("title", "P").with("content", "x"),
        );
        run_pair(
            &runtime,
            [
                (
                    "E1",
                    "addSiteLink",
                    sitelink_args("L1", "P", "https://w.org"),
                ),
                (
                    "E2",
                    "addSiteLink",
                    sitelink_args("L2", "P", "https://w.org"),
                ),
            ],
        );
        let links = runtime
            .database()
            .scan_latest(SITE_LINKS_TABLE, &Predicate::eq("page", "P"))
            .unwrap();
        assert_eq!(links.len(), 2, "duplicate site links must exist");
        let listing = runtime.handle_request("listSiteLinks", Args::new().with("page", "P"));
        assert!(matches!(listing.output, Err(HandlerError::App(_))));
    }

    #[test]
    fn patched_sitelink_handler_prevents_duplicates() {
        let runtime = Runtime::builder(mediawiki_db(), patched_registry())
            .default_isolation(IsolationLevel::Serializable)
            .build();
        runtime.must_handle(
            "createPage",
            Args::new().with("title", "P").with("content", "x"),
        );
        run_pair(
            &runtime,
            [
                (
                    "E1",
                    "addSiteLink",
                    sitelink_args("L1", "P", "https://w.org"),
                ),
                (
                    "E2",
                    "addSiteLink",
                    sitelink_args("L2", "P", "https://w.org"),
                ),
            ],
        );
        let links = runtime
            .database()
            .scan_latest(SITE_LINKS_TABLE, &Predicate::eq("page", "P"))
            .unwrap();
        assert_eq!(links.len(), 1);
        assert!(runtime
            .handle_request("listSiteLinks", Args::new().with("page", "P"))
            .is_ok());
    }

    #[test]
    fn edit_race_produces_wrong_size_history() {
        let runtime = racy_runtime(edit_race_script("E1", "E2"), registry());
        runtime.must_handle(
            "createPage",
            Args::new().with("title", "Art").with("content", "12345"),
        );
        run_pair(
            &runtime,
            [
                ("E1", "editPage", edit_args("rev-a", "Art", "1234567890")),
                ("E2", "editPage", edit_args("rev-b", "Art", "12")),
            ],
        );
        // The sum of recorded size deltas should equal the final size
        // minus the original size (5). Under the race, both editors
        // compute their delta against the original size, so the recorded
        // history is inconsistent with the actual final size.
        let revisions = runtime
            .database()
            .scan_latest(REVISIONS_TABLE, &Predicate::True)
            .unwrap();
        let delta_sum: i64 = revisions
            .iter()
            .map(|(_, r)| r[2].as_int().unwrap_or(0))
            .sum();
        let final_size = runtime
            .database()
            .get_latest(PAGES_TABLE, &Key::single("Art"))
            .unwrap()
            .unwrap()[2]
            .as_int()
            .unwrap();
        assert_ne!(
            delta_sum,
            final_size - 5,
            "the buggy handler records inconsistent size deltas"
        );
    }

    #[test]
    fn patched_edit_handler_keeps_history_consistent() {
        let runtime = Runtime::builder(mediawiki_db(), patched_registry())
            .default_isolation(IsolationLevel::Serializable)
            .build();
        runtime.must_handle(
            "createPage",
            Args::new().with("title", "Art").with("content", "12345"),
        );
        // Run the two edits concurrently; one may need to retry, which the
        // test performs (the patched handler surfaces the conflict).
        let outcomes = std::thread::scope(|scope| {
            let r = &runtime;
            let a = scope.spawn(move || {
                r.handle_request_with_id("E1", "editPage", edit_args("rev-a", "Art", "1234567890"))
            });
            let b = scope.spawn(move || {
                r.handle_request_with_id("E2", "editPage", edit_args("rev-b", "Art", "12"))
            });
            vec![a.join().unwrap(), b.join().unwrap()]
        });
        for (i, outcome) in outcomes.iter().enumerate() {
            if !outcome.is_ok() {
                // Retry the losing edit once, as the real application would.
                let retry = runtime.handle_request(
                    "editPage",
                    edit_args(&format!("rev-retry-{i}"), "Art", "12"),
                );
                assert!(retry.is_ok());
            }
        }
        let revisions = runtime
            .database()
            .scan_latest(REVISIONS_TABLE, &Predicate::True)
            .unwrap();
        let delta_sum: i64 = revisions
            .iter()
            .map(|(_, r)| r[2].as_int().unwrap_or(0))
            .sum();
        let final_size = runtime
            .database()
            .get_latest(PAGES_TABLE, &Key::single("Art"))
            .unwrap()
            .unwrap()[2]
            .as_int()
            .unwrap();
        assert_eq!(delta_sum, final_size - 5);
    }

    #[test]
    fn get_page_reports_size_and_revision() {
        let runtime = Runtime::new(mediawiki_db(), registry());
        runtime.must_handle(
            "createPage",
            Args::new().with("title", "T").with("content", "abc"),
        );
        let info = runtime.must_handle("getPage", Args::new().with("title", "T"));
        assert_eq!(info, Value::Text("size=3,revision=1".into()));
        let missing = runtime.handle_request("getPage", Args::new().with("title", "missing"));
        assert!(!missing.is_ok());
    }
}
