//! A user-profile service with security bugs (paper §4.2).
//!
//! Two scenarios from the paper's security case study are reproduced:
//!
//! * **User-Profiles access-control violations** — the buggy
//!   `updateProfile` handler never checks that the authenticated caller is
//!   the profile owner, so any request can modify any profile. TROD's
//!   provenance query (the paper's second SQL example) finds every
//!   violating request after the fact.
//! * **Data exfiltration through workflows** — a compromised handler
//!   copies sensitive profile data into a staging table; a second,
//!   seemingly legitimate workflow later reads the staging table and sends
//!   its contents to an external service. Following the data through
//!   TROD's workflow traces reveals the exfiltration chain.

use trod_db::{row, DataType, Database, Key, Predicate, Schema, Value};
use trod_provenance::ProvenanceStore;
use trod_runtime::{Args, HandlerError, HandlerRegistry};

/// User profiles (the sensitive table).
pub const PROFILES_TABLE: &str = "profiles";
/// Staging table abused by the exfiltration workflow.
pub const STAGING_TABLE: &str = "staging";
/// The provenance event-table name used for `profiles`, matching the
/// paper's `ProfileEvents` example.
pub const PROFILE_EVENTS_TABLE: &str = "ProfileEvents";

/// Creates the profile-service schema in a fresh database.
pub fn profiles_db() -> Database {
    let db = Database::new();
    create_schema(&db);
    db
}

/// Creates the profile-service tables on an existing database.
pub fn create_schema(db: &Database) {
    db.create_table(
        PROFILES_TABLE,
        Schema::builder()
            .column("user_name", DataType::Text)
            .column("email", DataType::Text)
            .column("bio", DataType::Text)
            .column("updated_by", DataType::Text)
            .primary_key(&["user_name"])
            .build()
            .expect("static schema"),
    )
    .expect("fresh database");
    db.create_table(
        STAGING_TABLE,
        Schema::builder()
            .column("entry_id", DataType::Text)
            .column("payload", DataType::Text)
            .primary_key(&["entry_id"])
            .build()
            .expect("static schema"),
    )
    .expect("fresh database");
}

/// Creates a provenance store using the paper's `ProfileEvents` name.
pub fn provenance_for(db: &Database) -> ProvenanceStore {
    let store = ProvenanceStore::new();
    store
        .register_table_as(
            PROFILES_TABLE,
            PROFILE_EVENTS_TABLE,
            &db.schema_of(PROFILES_TABLE).expect("schema exists"),
        )
        .expect("fresh provenance store");
    store
        .register_table(
            STAGING_TABLE,
            &db.schema_of(STAGING_TABLE).expect("schema exists"),
        )
        .expect("fresh provenance store");
    store
}

fn require_str(args: &Args, name: &str) -> Result<String, HandlerError> {
    args.get_str(name)
        .map(|s| s.to_string())
        .ok_or_else(|| HandlerError::BadArgument(format!("missing `{name}`")))
}

/// The profile-service handler registry (with the access-control bug and
/// the exfiltration workflow present).
pub fn registry() -> HandlerRegistry {
    let mut registry = HandlerRegistry::new();

    registry.register_fn("createProfile", |ctx, args| {
        let user = require_str(args, "user_name")?;
        let email = require_str(args, "email")?;
        let mut txn = ctx.txn("func:createProfile");
        txn.insert(PROFILES_TABLE, row![user.clone(), email, "", user.clone()])?;
        txn.commit()?;
        Ok(Value::Bool(true))
    });

    // BUGGY: does not check that `caller` is the profile owner.
    registry.register_fn("updateProfile", |ctx, args| {
        let user = require_str(args, "user_name")?;
        let caller = require_str(args, "caller")?;
        let bio = require_str(args, "bio")?;
        let mut txn = ctx.txn("func:updateProfile");
        let key = Key::single(user.clone());
        let profile = txn
            .get(PROFILES_TABLE, &key)?
            .ok_or_else(|| HandlerError::App(format!("no such profile {user}")))?;
        let email = profile[1].as_text().unwrap_or("").to_string();
        txn.update(PROFILES_TABLE, &key, row![user, email, bio, caller])?;
        txn.commit()?;
        Ok(Value::Bool(true))
    });

    registry.register_fn("viewProfile", |ctx, args| {
        let user = require_str(args, "user_name")?;
        let mut txn = ctx.txn("func:viewProfile");
        let profile = txn.get(PROFILES_TABLE, &Key::single(user.clone()))?;
        txn.commit()?;
        match profile {
            Some(p) => Ok(Value::Text(format!(
                "{}|{}",
                p[1].as_text().unwrap_or(""),
                p[2].as_text().unwrap_or("")
            ))),
            None => Err(HandlerError::App(format!("no such profile {user}"))),
        }
    });

    // Step 1 of the exfiltration chain: a compromised handler harvests
    // sensitive data into the staging table.
    registry.register_fn("harvestProfiles", |ctx, args| {
        let batch = require_str(args, "batch")?;
        let mut txn = ctx.txn("func:harvestProfiles");
        let profiles = txn.scan(PROFILES_TABLE, &Predicate::True)?;
        let payload: Vec<String> = profiles
            .iter()
            .map(|(_, p)| {
                format!(
                    "{}:{}",
                    p[0].as_text().unwrap_or(""),
                    p[1].as_text().unwrap_or("")
                )
            })
            .collect();
        txn.insert(STAGING_TABLE, row![batch, payload.join(";")])?;
        txn.commit()?;
        Ok(Value::Int(profiles.len() as i64))
    });

    // Step 2: a seemingly legitimate sync workflow reads the staging table
    // and ships its contents to an external endpoint.
    registry.register_fn("syncStaging", |ctx, args| {
        let batch = require_str(args, "batch")?;
        let mut txn = ctx.txn("func:syncStaging");
        let entry = txn.get(STAGING_TABLE, &Key::single(batch.clone()))?;
        txn.commit()?;
        match entry {
            Some(row) => {
                let payload = row[1].as_text().unwrap_or("").to_string();
                ctx.external_call("analytics-endpoint", &payload);
                Ok(Value::Bool(true))
            }
            None => Err(HandlerError::App(format!("no staged batch {batch}"))),
        }
    });

    registry
}

/// The fixed registry: `updateProfile` enforces the User-Profiles pattern.
pub fn patched_registry() -> HandlerRegistry {
    registry().with_replacement_fn("updateProfile", |ctx, args| {
        let user = require_str(args, "user_name")?;
        let caller = require_str(args, "caller")?;
        if user != caller {
            return Err(HandlerError::App(format!(
                "access denied: {caller} may not update the profile of {user}"
            )));
        }
        let bio = require_str(args, "bio")?;
        let mut txn = ctx.txn("func:updateProfileChecked");
        let key = Key::single(user.clone());
        let profile = txn
            .get(PROFILES_TABLE, &key)?
            .ok_or_else(|| HandlerError::App(format!("no such profile {user}")))?;
        let email = profile[1].as_text().unwrap_or("").to_string();
        txn.update(PROFILES_TABLE, &key, row![user, email, bio, caller])?;
        txn.commit()?;
        Ok(Value::Bool(true))
    })
}

/// Arguments for an `updateProfile` request.
pub fn update_args(user: &str, caller: &str, bio: &str) -> Args {
    Args::new()
        .with("user_name", user)
        .with("caller", caller)
        .with("bio", bio)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trod_runtime::Runtime;

    fn seeded_runtime(registry: HandlerRegistry) -> Runtime {
        let runtime = Runtime::new(profiles_db(), registry);
        for (user, email) in [("alice", "a@x.org"), ("bob", "b@x.org")] {
            runtime.must_handle(
                "createProfile",
                Args::new().with("user_name", user).with("email", email),
            );
        }
        runtime
    }

    #[test]
    fn buggy_handler_allows_cross_user_updates() {
        let runtime = seeded_runtime(registry());
        // Mallory updates alice's profile — the bug.
        let result =
            runtime.handle_request("updateProfile", update_args("alice", "mallory", "pwned"));
        assert!(result.is_ok());
        let profile = runtime.must_handle("viewProfile", Args::new().with("user_name", "alice"));
        assert_eq!(profile, Value::Text("a@x.org|pwned".into()));
    }

    #[test]
    fn patched_handler_denies_cross_user_updates_but_allows_self_updates() {
        let runtime = seeded_runtime(patched_registry());
        let denied =
            runtime.handle_request("updateProfile", update_args("alice", "mallory", "pwned"));
        assert!(matches!(denied.output, Err(HandlerError::App(_))));
        let allowed = runtime.handle_request("updateProfile", update_args("alice", "alice", "hi"));
        assert!(allowed.is_ok());
    }

    #[test]
    fn exfiltration_chain_moves_data_to_an_external_endpoint() {
        let runtime = seeded_runtime(registry());
        let harvested = runtime.must_handle("harvestProfiles", Args::new().with("batch", "B1"));
        assert_eq!(harvested, Value::Int(2));
        runtime.must_handle("syncStaging", Args::new().with("batch", "B1"));
        let calls = runtime.external_log().calls_to("analytics-endpoint");
        assert_eq!(calls.len(), 1);
        assert!(calls[0].payload.contains("alice:a@x.org"));
    }
}
