//! Workload generators for the benchmark harness.
//!
//! The paper's §3.7 numbers come from running "popular microservices
//! benchmarks" under always-on tracing. This module generates comparable
//! synthetic request streams for the shop and Moodle applications:
//! configurable request counts, key skew and conflict rates, with a fixed
//! seed so benchmark runs are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use trod_runtime::Args;

use crate::moodle;
use crate::shop;

/// Configuration for a generated workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Number of requests to generate.
    pub requests: usize,
    /// Number of distinct users issuing requests.
    pub users: usize,
    /// Number of distinct items/forums requests target.
    pub items: usize,
    /// Fraction (0.0–1.0) of requests that target a single hot item,
    /// creating read/write conflicts.
    pub conflict_rate: f64,
    /// RNG seed, so runs are reproducible.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            requests: 1_000,
            users: 100,
            items: 50,
            conflict_rate: 0.1,
            seed: 42,
        }
    }
}

impl WorkloadConfig {
    /// A small configuration for quick tests.
    pub fn small() -> Self {
        WorkloadConfig {
            requests: 50,
            users: 10,
            items: 5,
            conflict_rate: 0.2,
            seed: 7,
        }
    }
}

fn pick_item(rng: &mut StdRng, cfg: &WorkloadConfig) -> usize {
    if rng.gen_bool(cfg.conflict_rate.clamp(0.0, 1.0)) {
        0 // the hot item
    } else {
        rng.gen_range(0..cfg.items.max(1))
    }
}

/// Generates a stream of shop `checkout` requests (plus occasional
/// `getOrder` look-ups), as `(handler, args)` pairs ready for
/// [`trod_runtime::Runtime::run_concurrent`].
pub fn shop_workload(cfg: &WorkloadConfig) -> Vec<(String, Args)> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.requests);
    for i in 0..cfg.requests {
        let customer = format!("user-{}", rng.gen_range(0..cfg.users.max(1)));
        let item = format!("item-{}", pick_item(&mut rng, cfg));
        if i % 10 == 9 && i > 0 {
            // Every tenth request reads an earlier order.
            let earlier = rng.gen_range(0..i);
            out.push((
                "getOrder".to_string(),
                Args::new().with("order_id", format!("order-{earlier}")),
            ));
        } else {
            out.push((
                "checkout".to_string(),
                shop::checkout_args(&format!("order-{i}"), &customer, &item, 1),
            ));
        }
    }
    out
}

/// Generates a pure `checkout` stream (no read requests), used when the
/// benchmark wants every request to follow the same workflow shape.
pub fn checkout_only(cfg: &WorkloadConfig) -> Vec<(String, Args)> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.requests)
        .map(|i| {
            let customer = format!("user-{}", rng.gen_range(0..cfg.users.max(1)));
            let item = format!("item-{}", pick_item(&mut rng, cfg));
            (
                "checkout".to_string(),
                shop::checkout_args(&format!("order-{i}"), &customer, &item, 1),
            )
        })
        .collect()
}

/// Generates a stream of Moodle subscribe/fetch requests. A configurable
/// fraction of subscriptions target the same (user, forum) pair so that
/// racy interleavings are possible under concurrent execution.
pub fn moodle_workload(cfg: &WorkloadConfig) -> Vec<(String, Args)> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.requests);
    for i in 0..cfg.requests {
        let forum = format!("F{}", pick_item(&mut rng, cfg));
        if i % 5 == 4 {
            out.push(("fetchSubscribers".to_string(), moodle::fetch_args(&forum)));
        } else {
            let user = if rng.gen_bool(cfg.conflict_rate.clamp(0.0, 1.0)) {
                "U0".to_string()
            } else {
                format!("U{}", rng.gen_range(0..cfg.users.max(1)))
            };
            out.push((
                "subscribeUser".to_string(),
                moodle::subscribe_args(&format!("sub-{i}"), &user, &forum),
            ));
        }
    }
    out
}

/// Generates a stream of MediaWiki page create/edit/read requests.
/// Edits concentrate on a hot page at the configured conflict rate
/// (the MW-39225 stale-size shape needs concurrent edits of one page);
/// every fifth request is a `getPage` or `listSiteLinks` read.
pub fn mediawiki_workload(cfg: &WorkloadConfig) -> Vec<(String, Args)> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.requests);
    // Create the page pool first so edits and reads hit existing pages;
    // the creates count against the request budget like any other
    // request.
    let pool = cfg.items.max(1).min(cfg.requests);
    for k in 0..pool {
        out.push((
            "createPage".to_string(),
            Args::new()
                .with("title", format!("Page_{k}"))
                .with("content", format!("seed content {k}")),
        ));
    }
    for i in pool..cfg.requests {
        let page = format!("Page_{}", pick_item(&mut rng, cfg).min(pool - 1));
        match i % 10 {
            4 => out.push((
                "getPage".to_string(),
                Args::new().with("title", page.clone()),
            )),
            9 => out.push((
                "listSiteLinks".to_string(),
                Args::new().with("page", page.clone()),
            )),
            3 | 7 => out.push((
                "addSiteLink".to_string(),
                crate::mediawiki::sitelink_args(
                    &format!("link-{i}"),
                    &page,
                    &format!("https://example.org/{i}"),
                ),
            )),
            _ => out.push((
                "editPage".to_string(),
                crate::mediawiki::edit_args(
                    &format!("rev-{i}"),
                    &page,
                    &format!(
                        "content rev {i} by user-{}",
                        rng.gen_range(0..cfg.users.max(1))
                    ),
                ),
            )),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_reproducible_and_sized() {
        let cfg = WorkloadConfig::small();
        let a = shop_workload(&cfg);
        let b = shop_workload(&cfg);
        assert_eq!(a.len(), cfg.requests);
        assert_eq!(
            a.iter()
                .map(|(h, args)| (h.clone(), args.encode()))
                .collect::<Vec<_>>(),
            b.iter()
                .map(|(h, args)| (h.clone(), args.encode()))
                .collect::<Vec<_>>()
        );

        let m = moodle_workload(&cfg);
        assert_eq!(m.len(), cfg.requests);
        assert!(m.iter().any(|(h, _)| h == "fetchSubscribers"));
        assert!(m.iter().any(|(h, _)| h == "subscribeUser"));
    }

    #[test]
    fn different_seeds_differ() {
        let a = shop_workload(&WorkloadConfig {
            seed: 1,
            ..WorkloadConfig::small()
        });
        let b = shop_workload(&WorkloadConfig {
            seed: 2,
            ..WorkloadConfig::small()
        });
        let enc = |w: &Vec<(String, Args)>| {
            w.iter()
                .map(|(h, a)| format!("{h}:{}", a.encode()))
                .collect::<Vec<_>>()
        };
        assert_ne!(enc(&a), enc(&b));
    }

    #[test]
    fn conflict_rate_extremes_are_accepted() {
        let all_hot = WorkloadConfig {
            conflict_rate: 1.0,
            ..WorkloadConfig::small()
        };
        let w = shop_workload(&all_hot);
        assert!(w
            .iter()
            .filter(|(h, _)| h == "checkout")
            .all(|(_, args)| args.get_str("item") == Some("item-0")));
        let none_hot = WorkloadConfig {
            conflict_rate: 0.0,
            ..WorkloadConfig::small()
        };
        let _ = shop_workload(&none_hot);
    }

    #[test]
    fn mediawiki_workload_runs_against_the_mediawiki_app() {
        use crate::mediawiki;
        let db = mediawiki::mediawiki_db();
        let runtime = trod_runtime::Runtime::new(db, mediawiki::registry());
        let cfg = WorkloadConfig::small();
        let mut workload = mediawiki_workload(&cfg);
        assert_eq!(workload.len(), cfg.requests);
        assert!(workload.iter().any(|(h, _)| h == "editPage"));
        assert!(workload.iter().any(|(h, _)| h == "getPage"));
        // Serve the page-pool creates before racing the rest, mirroring
        // how a load generator warms up against a live server.
        let rest = workload.split_off(cfg.items.min(cfg.requests));
        let mut results = runtime.run_concurrent(workload, 4);
        results.extend(runtime.run_concurrent(rest, 4));
        assert_eq!(results.len(), cfg.requests);
        // Every page in the pool exists before any edit/read targets it,
        // so failures can only be retryable conflicts.
        assert!(results.iter().all(|r| match &r.output {
            Ok(_) => true,
            Err(e) => e.is_retryable(),
        }));
        assert!(results
            .iter()
            .filter(|r| r.handler == "editPage")
            .any(|r| r.is_ok()));
    }

    #[test]
    fn shop_workload_runs_against_the_shop_app() {
        let db = shop::shop_db();
        shop::seed_inventory(&db, 10, 1_000);
        let runtime = trod_runtime::Runtime::new(db, shop::registry());
        let cfg = WorkloadConfig::small();
        let results = runtime.run_concurrent(shop_workload(&cfg), 4);
        assert_eq!(results.len(), cfg.requests);
        // Checkouts either succeed or lose a serializable conflict on the
        // hot item; getOrder requests for not-yet-created orders may fail.
        let checkouts: Vec<_> = results.iter().filter(|r| r.handler == "checkout").collect();
        assert!(checkouts.iter().any(|r| r.is_ok()));
        assert!(checkouts.iter().all(|r| match &r.output {
            Ok(_) => true,
            Err(e) => e.is_retryable(),
        }));
    }
}
