//! # trod-apps
//!
//! The benchmark applications used throughout the TROD reproduction —
//! faithful re-implementations of the *transactional shape* of the
//! applications and bugs the paper discusses:
//!
//! * [`moodle`] — forum subscriptions with the MDL-59854 TOCTOU race and
//!   the MDL-60669 course-restore regression (paper §2, §3.3–3.6, §4.1).
//! * [`mediawiki`] — page edits and site links with the MW-44325
//!   duplicate-sitelink race and the MW-39225 wrong-article-size race
//!   (paper §4.1).
//! * [`shop`] — an e-commerce checkout microservice workflow used as the
//!   load-generating workload for the tracing-overhead and provenance
//!   benchmarks (paper §3.7).
//! * [`profiles`] — a user-profile service with an access-control bug and
//!   a data-exfiltration workflow (paper §4.2).
//! * [`workload`] — reproducible request-stream generators for the
//!   benchmark harness.
//!
//! Each application module exposes its schema builders, a buggy handler
//! registry, a patched registry where the paper discusses a fix, argument
//! constructors, and — for the concurrency bugs — scheduler scripts that
//! force the exact interleaving that triggers the bug.

pub mod mediawiki;
pub mod moodle;
pub mod profiles;
pub mod shop;
pub mod workload;

pub use workload::{checkout_only, moodle_workload, shop_workload, WorkloadConfig};
