//! An e-commerce microservice application.
//!
//! The paper motivates TROD with "modern distributed web applications such
//! as a travel reservation website or an e-commerce microservices
//! application" and measures tracing overhead on "popular microservices
//! benchmarks" (§3.7). This module provides that workload: a checkout
//! workflow in which a root handler invokes inventory, payment and order
//! handlers over RPC, so every request produces a multi-handler,
//! multi-transaction trace. It is the workload used by the tracing
//! overhead benchmark (experiment E1) and the provenance-scale benchmark
//! (experiment E2).

use trod_db::{row, DataType, Database, Key, Predicate, Schema, Value};
use trod_provenance::ProvenanceStore;
use trod_runtime::{Args, HandlerError, HandlerRegistry};

/// Inventory: per-item stock counts.
pub const INVENTORY_TABLE: &str = "inventory";
/// Orders placed by customers.
pub const ORDERS_TABLE: &str = "orders";
/// Payments charged for orders.
pub const PAYMENTS_TABLE: &str = "payments";
/// Key-value namespace holding per-customer cart sessions (used when the
/// runtime has a key-value store bound; see [`shop_kv`]). Checkout then
/// clears the customer's cart in the *same* atomic commit that confirms
/// the order — the paper's §5 polyglot-transaction shape.
pub const CARTS_NAMESPACE: &str = "carts";

/// Creates the key-value store the shop uses for cart sessions. Bind it
/// with `Runtime::builder(db, registry()).kv(shop_kv())` to turn the
/// checkout workflow polyglot; without it the handlers skip the cart
/// writes and behave exactly as before.
pub fn shop_kv() -> trod_kv::KvStore {
    let kv = trod_kv::KvStore::new();
    kv.create_namespace(CARTS_NAMESPACE)
        .expect("fresh key-value store");
    kv
}

/// Creates the shop schema in a fresh database.
pub fn shop_db() -> Database {
    let db = Database::new();
    create_schema(&db);
    db
}

/// Creates the shop schema with a given storage profile (used by the
/// tracing-overhead benchmark to model in-memory vs on-disk stores).
pub fn shop_db_with_profile(profile: trod_db::StorageProfile) -> Database {
    let db = Database::with_profile(profile);
    create_schema(&db);
    db
}

/// Creates the shop tables on an existing database.
pub fn create_schema(db: &Database) {
    db.create_table(
        INVENTORY_TABLE,
        Schema::builder()
            .column("item", DataType::Text)
            .column("stock", DataType::Int)
            .column("reserved", DataType::Int)
            .primary_key(&["item"])
            .build()
            .expect("static schema"),
    )
    .expect("fresh database");
    // Stock-level windows (low-stock sweeps, the `stock < 0` quality
    // invariant) are range scans; serve them from an ordered index.
    db.create_range_index(INVENTORY_TABLE, "stock")
        .expect("index");
    db.create_table(
        ORDERS_TABLE,
        Schema::builder()
            .column("order_id", DataType::Text)
            .column("customer", DataType::Text)
            .column("item", DataType::Text)
            .column("quantity", DataType::Int)
            .column("status", DataType::Text)
            .primary_key(&["order_id"])
            .build()
            .expect("static schema"),
    )
    .expect("fresh database");
    db.create_index(ORDERS_TABLE, "customer").expect("index");
    db.create_table(
        PAYMENTS_TABLE,
        Schema::builder()
            .column("payment_id", DataType::Text)
            .column("order_id", DataType::Text)
            .column("amount", DataType::Int)
            .primary_key(&["payment_id"])
            .build()
            .expect("static schema"),
    )
    .expect("fresh database");
}

/// Seeds the inventory with `items` items, each with `stock` units.
pub fn seed_inventory(db: &Database, items: usize, stock: i64) {
    let mut txn = db.begin();
    for i in 0..items {
        txn.insert(INVENTORY_TABLE, row![format!("item-{i}"), stock, 0i64])
            .expect("seeding a fresh inventory cannot conflict");
    }
    txn.commit()
        .expect("seeding a fresh inventory cannot conflict");
}

/// Creates a provenance store with all shop tables registered.
pub fn provenance_for(db: &Database) -> ProvenanceStore {
    ProvenanceStore::for_application(db).expect("fresh provenance store")
}

fn require_str(args: &Args, name: &str) -> Result<String, HandlerError> {
    args.get_str(name)
        .map(|s| s.to_string())
        .ok_or_else(|| HandlerError::BadArgument(format!("missing `{name}`")))
}

fn require_int(args: &Args, name: &str) -> Result<i64, HandlerError> {
    args.get_int(name)
        .ok_or_else(|| HandlerError::BadArgument(format!("missing `{name}`")))
}

/// The shop handler registry. `checkout` is the root workflow handler;
/// `reserveInventory`, `chargePayment` and `createOrder` are the
/// microservices it invokes over RPC.
pub fn registry() -> HandlerRegistry {
    let mut registry = HandlerRegistry::new();

    registry.register_fn("reserveInventory", |ctx, args| {
        let item = require_str(args, "item")?;
        let quantity = require_int(args, "quantity")?;
        let mut txn = ctx.txn("func:reserveInventory");
        let key = Key::single(item.clone());
        let inv = txn
            .get(INVENTORY_TABLE, &key)?
            .ok_or_else(|| HandlerError::App(format!("no such item {item}")))?;
        let stock = inv[1].as_int().unwrap_or(0);
        let reserved = inv[2].as_int().unwrap_or(0);
        if stock - reserved < quantity {
            txn.commit()?;
            return Err(HandlerError::App(format!("insufficient stock for {item}")));
        }
        txn.update(
            INVENTORY_TABLE,
            &key,
            row![item, stock, reserved + quantity],
        )?;
        txn.commit()?;
        Ok(Value::Bool(true))
    });

    registry.register_fn("chargePayment", |ctx, args| {
        let order_id = require_str(args, "order_id")?;
        let amount = require_int(args, "amount")?;
        let mut txn = ctx.txn("func:chargePayment");
        txn.insert(
            PAYMENTS_TABLE,
            row![format!("pay-{order_id}"), order_id.clone(), amount],
        )?;
        txn.commit()?;
        // The actual charge goes to an external (idempotent) provider.
        ctx.external_call(
            "payment-gateway",
            &format!("charge {order_id} amount={amount}"),
        );
        Ok(Value::Bool(true))
    });

    // Cart sessions live in the key-value store (when one is bound):
    // the paper's §5 shape, where per-user session state sits outside
    // the relational database but still commits transactionally. Without
    // a bound store the cart write is skipped (returning `false`), like
    // every other cart touch in this registry.
    registry.register_fn("addToCart", |ctx, args| {
        let customer = require_str(args, "customer")?;
        let item = require_str(args, "item")?;
        if !ctx.has_kv() {
            return Ok(Value::Bool(false));
        }
        let mut txn = ctx.txn("func:addToCart");
        txn.kv_put(CARTS_NAMESPACE, &format!("cart:{customer}"), &item)?;
        txn.commit()?;
        Ok(Value::Bool(true))
    });

    // The polyglot read path: what is in this customer's cart right now?
    // Traced kv reads are what make shop requests fully replayable —
    // the replay engine verifies them against the forked store.
    registry.register_fn("getCart", |ctx, args| {
        let customer = require_str(args, "customer")?;
        if !ctx.has_kv() {
            return Ok(Value::Null);
        }
        let mut txn = ctx.txn("func:getCart");
        let cart = txn.kv_get(CARTS_NAMESPACE, &format!("cart:{customer}"))?;
        txn.commit()?;
        Ok(cart.map(Value::Text).unwrap_or(Value::Null))
    });

    registry.register_fn("createOrder", |ctx, args| {
        let order_id = require_str(args, "order_id")?;
        let customer = require_str(args, "customer")?;
        let item = require_str(args, "item")?;
        let quantity = require_int(args, "quantity")?;
        let has_kv = ctx.has_kv();
        let mut txn = ctx.txn("func:createOrder");
        txn.insert(
            ORDERS_TABLE,
            row![order_id, customer.clone(), item, quantity, "confirmed"],
        )?;
        if has_kv {
            // Confirming the order and clearing the customer's cart is
            // ONE atomic commit across both stores.
            txn.kv_delete(CARTS_NAMESPACE, &format!("cart:{customer}"))?;
        }
        txn.commit()?;
        Ok(Value::Bool(true))
    });

    // The root workflow: reserve → charge → create order → e-mail receipt.
    registry.register_fn("checkout", |ctx, args| {
        let order_id = require_str(args, "order_id")?;
        let customer = require_str(args, "customer")?;
        let item = require_str(args, "item")?;
        let quantity = require_int(args, "quantity")?;

        ctx.call(
            "reserveInventory",
            Args::new()
                .with("item", item.as_str())
                .with("quantity", quantity),
        )?;
        ctx.call(
            "chargePayment",
            Args::new()
                .with("order_id", order_id.as_str())
                .with("amount", quantity * 10),
        )?;
        ctx.call(
            "createOrder",
            Args::new()
                .with("order_id", order_id.as_str())
                .with("customer", customer.as_str())
                .with("item", item.as_str())
                .with("quantity", quantity),
        )?;
        ctx.external_call("email", &format!("receipt for {order_id} to {customer}"));
        Ok(Value::Text(order_id))
    });

    registry.register_fn("getOrder", |ctx, args| {
        let order_id = require_str(args, "order_id")?;
        let mut txn = ctx.txn("func:getOrder");
        let order = txn.get(ORDERS_TABLE, &Key::single(order_id.clone()))?;
        txn.commit()?;
        match order {
            Some(o) => Ok(Value::Text(format!(
                "{}:{}:{}",
                o[1].as_text().unwrap_or(""),
                o[2].as_text().unwrap_or(""),
                o[4].as_text().unwrap_or("")
            ))),
            None => Err(HandlerError::App(format!("no such order {order_id}"))),
        }
    });

    registry.register_fn("listOrders", |ctx, args| {
        let customer = require_str(args, "customer")?;
        let mut txn = ctx.txn("func:listOrders");
        let orders = txn.scan(ORDERS_TABLE, &Predicate::eq("customer", &customer as &str))?;
        txn.commit()?;
        Ok(Value::Int(orders.len() as i64))
    });

    registry
}

/// Arguments for a `checkout` request.
pub fn checkout_args(order_id: &str, customer: &str, item: &str, quantity: i64) -> Args {
    Args::new()
        .with("order_id", order_id)
        .with("customer", customer)
        .with("item", item)
        .with("quantity", quantity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trod_runtime::Runtime;

    #[test]
    fn checkout_workflow_touches_all_services() {
        let db = shop_db();
        seed_inventory(&db, 3, 100);
        let runtime = Runtime::new(db, registry());

        let order = runtime.must_handle("checkout", checkout_args("O1", "alice", "item-1", 2));
        assert_eq!(order, Value::Text("O1".into()));

        let db = runtime.database();
        assert_eq!(
            db.scan_latest(ORDERS_TABLE, &Predicate::True)
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            db.scan_latest(PAYMENTS_TABLE, &Predicate::True)
                .unwrap()
                .len(),
            1
        );
        let inv = db
            .get_latest(INVENTORY_TABLE, &Key::single("item-1"))
            .unwrap()
            .unwrap();
        assert_eq!(inv[2].as_int(), Some(2));

        // Two external intents: payment gateway and e-mail receipt.
        assert_eq!(runtime.external_log().len(), 2);

        let info = runtime.must_handle("getOrder", Args::new().with("order_id", "O1"));
        assert_eq!(info, Value::Text("alice:item-1:confirmed".into()));
        let count = runtime.must_handle("listOrders", Args::new().with("customer", "alice"));
        assert_eq!(count, Value::Int(1));
    }

    #[test]
    fn polyglot_checkout_clears_the_cart_atomically() {
        let db = shop_db();
        seed_inventory(&db, 3, 100);
        let runtime = Runtime::builder(db, registry()).kv(shop_kv()).build();

        runtime.must_handle(
            "addToCart",
            Args::new().with("customer", "alice").with("item", "item-1"),
        );
        assert_eq!(
            runtime
                .kv_store()
                .unwrap()
                .get_latest(CARTS_NAMESPACE, "cart:alice")
                .unwrap(),
            Some("item-1".into())
        );

        assert_eq!(
            runtime.must_handle("getCart", Args::new().with("customer", "alice")),
            Value::Text("item-1".into())
        );

        runtime.must_handle("checkout", checkout_args("O1", "alice", "item-1", 2));
        // The cart was cleared in the same commit that confirmed the order.
        assert_eq!(
            runtime
                .kv_store()
                .unwrap()
                .get_latest(CARTS_NAMESPACE, "cart:alice")
                .unwrap(),
            None
        );
        assert_eq!(
            runtime.must_handle("getCart", Args::new().with("customer", "alice")),
            Value::Null
        );
        // That commit is one aligned-log entry spanning both stores.
        let aligned = runtime.session().aligned_log();
        assert!(aligned.iter().any(|c| c.spans_both_stores()));
    }

    #[test]
    fn checkout_fails_cleanly_when_out_of_stock() {
        let db = shop_db();
        seed_inventory(&db, 1, 1);
        let runtime = Runtime::new(db, registry());
        let result = runtime.handle_request("checkout", checkout_args("O1", "bob", "item-0", 5));
        assert!(matches!(result.output, Err(HandlerError::App(_))));
        // Nothing was ordered or charged.
        assert!(runtime
            .database()
            .scan_latest(ORDERS_TABLE, &Predicate::True)
            .unwrap()
            .is_empty());
        assert!(runtime
            .database()
            .scan_latest(PAYMENTS_TABLE, &Predicate::True)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn concurrent_checkouts_never_oversell() {
        let db = shop_db();
        seed_inventory(&db, 1, 10);
        let runtime = Runtime::new(db, registry());
        let requests: Vec<(String, Args)> = (0..20)
            .map(|i| {
                (
                    "checkout".to_string(),
                    checkout_args(&format!("O{i}"), "carol", "item-0", 1),
                )
            })
            .collect();
        let results = runtime.run_concurrent(requests, 6);
        let succeeded = results.iter().filter(|r| r.is_ok()).count();
        let inv = runtime
            .database()
            .get_latest(INVENTORY_TABLE, &Key::single("item-0"))
            .unwrap()
            .unwrap();
        let reserved = inv[2].as_int().unwrap();
        assert!(reserved <= 10, "reserved {reserved} exceeds stock");
        assert_eq!(
            runtime
                .database()
                .scan_latest(ORDERS_TABLE, &Predicate::True)
                .unwrap()
                .len(),
            succeeded
        );
    }
}
