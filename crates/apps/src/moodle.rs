//! The Moodle forum-subscription application (paper §2, §3.3–3.6, §4.1).
//!
//! Re-implements the transactional shape of the handlers involved in two
//! real Moodle bugs:
//!
//! * **MDL-59854** — `subscribeUser` checks for an existing subscription in
//!   one transaction and inserts in a second transaction (time-of-check to
//!   time-of-use). Two interleaved requests for the same (user, forum) both
//!   see "not subscribed" and both insert, producing duplicate
//!   subscriptions; the error only surfaces later when
//!   `fetchSubscribers` detects the duplicates.
//! * **MDL-60669** — the fix for the bug above did not consider
//!   subscriptions kept inside deleted courses; `restoreCourse` then fails
//!   when it re-materialises subscriptions containing duplicates.
//!
//! The buggy and patched handler registries are both provided so the
//! debugger's replay and retroactive features can be demonstrated exactly
//! as in the paper's Figure 3.

use trod_db::{row, DataType, Database, Key, Predicate, Schema, Value};
use trod_provenance::ProvenanceStore;
use trod_runtime::{point_label, Args, HandlerError, HandlerRegistry, Runtime, Scheduler};
use trod_trace::Tracer;

/// Table holding forum subscriptions: the table the bug corrupts.
pub const FORUM_SUB_TABLE: &str = "forum_sub";
/// Table mapping forums to courses (used by the course-restore scenario).
pub const FORUMS_TABLE: &str = "forums";
/// Table holding courses (used by the course-restore scenario).
pub const COURSES_TABLE: &str = "courses";
/// Table that `restoreCourse` re-materialises subscriptions into.
pub const RESTORED_SUB_TABLE: &str = "restored_sub";
/// The provenance event table name used for `forum_sub`, matching the
/// paper's Table 2.
pub const FORUM_EVENTS_TABLE: &str = "ForumEvents";

/// Creates the Moodle application schema in a fresh database.
pub fn moodle_db() -> Database {
    let db = Database::new();
    create_schema(&db);
    db
}

/// Creates the Moodle tables on an existing database.
pub fn create_schema(db: &Database) {
    db.create_table(
        FORUM_SUB_TABLE,
        Schema::builder()
            .column("sub_id", DataType::Text)
            .column("user_id", DataType::Text)
            .column("forum", DataType::Text)
            .primary_key(&["sub_id"])
            .build()
            .expect("static schema"),
    )
    .expect("fresh database");
    db.create_index(FORUM_SUB_TABLE, "forum").expect("index");
    db.create_table(
        FORUMS_TABLE,
        Schema::builder()
            .column("forum", DataType::Text)
            .column("course", DataType::Text)
            .primary_key(&["forum"])
            .build()
            .expect("static schema"),
    )
    .expect("fresh database");
    db.create_table(
        COURSES_TABLE,
        Schema::builder()
            .column("course", DataType::Text)
            .column("deleted", DataType::Bool)
            .primary_key(&["course"])
            .build()
            .expect("static schema"),
    )
    .expect("fresh database");
    db.create_table(
        RESTORED_SUB_TABLE,
        Schema::builder()
            .column("user_id", DataType::Text)
            .column("forum", DataType::Text)
            .primary_key(&["user_id", "forum"])
            .build()
            .expect("static schema"),
    )
    .expect("fresh database");
}

/// Creates a provenance store with the Moodle tables registered under the
/// names the paper uses (`forum_sub` → `ForumEvents`).
pub fn provenance_for(db: &Database) -> ProvenanceStore {
    let store = ProvenanceStore::new();
    store
        .register_table_as(
            FORUM_SUB_TABLE,
            FORUM_EVENTS_TABLE,
            &db.schema_of(FORUM_SUB_TABLE).expect("schema exists"),
        )
        .expect("fresh provenance store");
    for table in [FORUMS_TABLE, COURSES_TABLE, RESTORED_SUB_TABLE] {
        store
            .register_table(table, &db.schema_of(table).expect("schema exists"))
            .expect("fresh provenance store");
    }
    store
}

fn subscription_pred(user: &str, forum: &str) -> Predicate {
    Predicate::eq("user_id", user).and(Predicate::eq("forum", forum))
}

fn require_str(args: &Args, name: &str) -> Result<String, HandlerError> {
    args.get_str(name)
        .map(|s| s.to_string())
        .ok_or_else(|| HandlerError::BadArgument(format!("missing `{name}`")))
}

/// The buggy handler registry (MDL-59854 shape).
pub fn registry() -> HandlerRegistry {
    let mut registry = HandlerRegistry::new();

    // subscribeUser, buggy: check and insert are two separate transactions.
    registry.register_fn("subscribeUser", |ctx, args| {
        let user = require_str(args, "user_id")?;
        let forum = require_str(args, "forum")?;
        let sub_id = require_str(args, "sub_id")?;

        // 1st transaction: check whether the subscription already exists.
        ctx.sync_point("pre-check");
        let mut check = ctx.txn("func:isSubscribed");
        let already = check.exists(FORUM_SUB_TABLE, &subscription_pred(&user, &forum))?;
        check.commit()?;
        ctx.sync_point("post-check");
        if already {
            return Ok(Value::Bool(true));
        }

        // 2nd transaction: insert a subscription entry.
        ctx.sync_point("pre-insert");
        let mut insert = ctx.txn("func:DB.insert");
        insert.insert(FORUM_SUB_TABLE, row![sub_id, user, forum])?;
        insert.commit()?;
        ctx.sync_point("post-insert");
        Ok(Value::Bool(true))
    });

    registry.register_fn("fetchSubscribers", |ctx, args| {
        let forum = require_str(args, "forum")?;
        let mut txn = ctx.txn("func:DB.executeQuery");
        let rows = txn.scan(FORUM_SUB_TABLE, &Predicate::eq("forum", &forum as &str))?;
        txn.commit()?;
        let mut users: Vec<String> = rows
            .iter()
            .map(|(_, r)| r[1].as_text().unwrap_or("").to_string())
            .collect();
        users.sort();
        let before = users.len();
        users.dedup();
        if users.len() != before {
            // The error Moodle raises: duplicated values in column userId.
            return Err(HandlerError::App(format!(
                "duplicate subscribers detected for forum {forum}"
            )));
        }
        Ok(Value::Text(users.join(",")))
    });

    registry.register_fn("unsubscribeUser", |ctx, args| {
        let user = require_str(args, "user_id")?;
        let forum = require_str(args, "forum")?;
        let mut txn = ctx.txn("func:DB.delete");
        let removed = txn.delete_where(FORUM_SUB_TABLE, &subscription_pred(&user, &forum))?;
        txn.commit()?;
        Ok(Value::Int(removed as i64))
    });

    registry.register_fn("createForum", |ctx, args| {
        let forum = require_str(args, "forum")?;
        let course = require_str(args, "course")?;
        let mut txn = ctx.txn("func:createForum");
        if txn
            .get(COURSES_TABLE, &Key::single(course.clone()))?
            .is_none()
        {
            txn.insert(COURSES_TABLE, row![course.clone(), false])?;
        }
        txn.insert(FORUMS_TABLE, row![forum, course])?;
        txn.commit()?;
        Ok(Value::Bool(true))
    });

    registry.register_fn("deleteCourse", |ctx, args| {
        let course = require_str(args, "course")?;
        let mut txn = ctx.txn("func:deleteCourse");
        let key = Key::single(course.clone());
        match txn.get(COURSES_TABLE, &key)? {
            Some(_) => {
                txn.update(COURSES_TABLE, &key, row![course, true])?;
                txn.commit()?;
                Ok(Value::Bool(true))
            }
            None => Err(HandlerError::App(format!("no such course {course}"))),
        }
    });

    // restoreCourse (MDL-60669 shape): re-materialise the subscriptions of
    // every forum in the course; duplicated (user, forum) pairs left behind
    // by MDL-59854 make the restore fail.
    registry.register_fn("restoreCourse", |ctx, args| {
        let course = require_str(args, "course")?;
        let mut txn = ctx.txn("func:restoreCourse");
        let key = Key::single(course.clone());
        if txn.get(COURSES_TABLE, &key)?.is_none() {
            return Err(HandlerError::App(format!("no such course {course}")));
        }
        let forums = txn.scan(FORUMS_TABLE, &Predicate::eq("course", &course as &str))?;
        let mut restored = 0i64;
        for (_, forum_row) in forums {
            let forum = forum_row[0].as_text().unwrap_or("").to_string();
            // Restores are idempotent per forum: clear any previously
            // restored rows so only duplicates *within the source data*
            // can fail the restore (the MDL-60669 failure mode).
            txn.delete_where(RESTORED_SUB_TABLE, &Predicate::eq("forum", &forum as &str))?;
            let subs = txn.scan(FORUM_SUB_TABLE, &Predicate::eq("forum", &forum as &str))?;
            for (_, sub) in subs {
                let user = sub[1].as_text().unwrap_or("").to_string();
                txn.insert(RESTORED_SUB_TABLE, row![user, forum.clone()])
                    .map_err(|e| {
                        HandlerError::App(format!(
                            "course restore failed: duplicate subscription while restoring ({e})"
                        ))
                    })?;
                restored += 1;
            }
        }
        txn.update(COURSES_TABLE, &key, row![course, false])?;
        txn.commit()?;
        Ok(Value::Int(restored))
    });

    registry
}

/// The patched registry: `subscribeUser` wraps the check and the insert in
/// a single transaction (the fix suggested in the MDL-59854 discussion and
/// used in the paper's retroactive-programming walkthrough).
pub fn patched_registry() -> HandlerRegistry {
    registry().with_replacement_fn("subscribeUser", |ctx, args| {
        let user = require_str(args, "user_id")?;
        let forum = require_str(args, "forum")?;
        let sub_id = require_str(args, "sub_id")?;

        ctx.sync_point("pre-subscribe");
        let mut txn = ctx.txn("func:subscribeAtomic");
        let already = txn.exists(FORUM_SUB_TABLE, &subscription_pred(&user, &forum))?;
        if !already {
            txn.insert(
                FORUM_SUB_TABLE,
                row![sub_id.clone(), user.clone(), forum.clone()],
            )?;
        }
        // Retry once on a serialization conflict: with the atomic handler
        // the conflict is detected by the database instead of silently
        // creating a duplicate.
        match txn.commit() {
            Ok(_) => {}
            Err(e) if e.is_retryable() => {
                let mut retry = ctx.txn("func:subscribeAtomic.retry");
                let already = retry.exists(FORUM_SUB_TABLE, &subscription_pred(&user, &forum))?;
                if !already {
                    retry.insert(FORUM_SUB_TABLE, row![sub_id, user, forum])?;
                }
                retry.commit()?;
            }
            Err(e) => return Err(e.into()),
        }
        ctx.sync_point("post-subscribe");
        Ok(Value::Bool(true))
    })
}

/// Arguments for a `subscribeUser` request.
pub fn subscribe_args(sub_id: &str, user: &str, forum: &str) -> Args {
    Args::new()
        .with("sub_id", sub_id)
        .with("user_id", user)
        .with("forum", forum)
}

/// Arguments for a `fetchSubscribers` request.
pub fn fetch_args(forum: &str) -> Args {
    Args::new().with("forum", forum)
}

/// The scheduler script that forces the MDL-59854 interleaving between two
/// subscribe requests: both check first, then both insert (the second
/// request's insert lands between the first request's check and insert).
pub fn toctou_script(first_req: &str, second_req: &str) -> Vec<String> {
    vec![
        point_label(first_req, "pre-check"),
        point_label(first_req, "post-check"),
        point_label(second_req, "pre-check"),
        point_label(second_req, "post-check"),
        point_label(second_req, "pre-insert"),
        point_label(second_req, "post-insert"),
        point_label(first_req, "pre-insert"),
        point_label(first_req, "post-insert"),
    ]
}

/// Everything needed to reproduce the MDL-59854 scenario end to end.
pub struct ToctouScenario {
    /// The production runtime (buggy handlers, read-committed isolation,
    /// scripted scheduler).
    pub runtime: Runtime,
    /// The provenance store with paper-style table names.
    pub provenance: ProvenanceStore,
    /// The request id used for the first subscribe request (paper: R1).
    pub r1: String,
    /// The request id used for the second subscribe request (paper: R2).
    pub r2: String,
    /// The request id used for the fetch request (paper: R3).
    pub r3: String,
}

/// Builds the production environment of the paper's running example: the
/// buggy Moodle handlers, running at the isolation level under which the
/// original bug manifests, with a scripted scheduler that deterministically
/// produces the racy interleaving.
pub fn toctou_scenario() -> ToctouScenario {
    let db = moodle_db();
    let provenance = provenance_for(&db);
    let (r1, r2, r3) = ("R1".to_string(), "R2".to_string(), "R3".to_string());
    let scheduler = std::sync::Arc::new(Scheduler::scripted(toctou_script(&r1, &r2)));
    let runtime = Runtime::builder(db, registry())
        .default_isolation(trod_db::IsolationLevel::ReadCommitted)
        .scheduler(scheduler)
        .tracer(Tracer::new())
        // Auto-allocated ids must not collide with the scripted R1/R2/R3
        // labels, otherwise unrelated requests would block on the script.
        .request_prefix("AUX-")
        .build();
    ToctouScenario {
        runtime,
        provenance,
        r1,
        r2,
        r3,
    }
}

impl ToctouScenario {
    /// Runs the three requests of the paper's running example — two
    /// concurrent subscriptions of (U1, F2) and a subsequent fetch — and
    /// returns the fetch request's application error (if the bug
    /// manifested, which the scripted scheduler guarantees).
    pub fn run(&self) -> Option<String> {
        let r1 = self.r1.clone();
        let r2 = self.r2.clone();
        let runtime = &self.runtime;
        std::thread::scope(|scope| {
            let h1 = scope.spawn(move || {
                runtime.handle_request_with_id(
                    &r1,
                    "subscribeUser",
                    subscribe_args("S1", "U1", "F2"),
                )
            });
            let h2 = scope.spawn(move || {
                runtime.handle_request_with_id(
                    &r2,
                    "subscribeUser",
                    subscribe_args("S2", "U1", "F2"),
                )
            });
            let _ = h1.join().expect("subscribe request thread panicked");
            let _ = h2.join().expect("subscribe request thread panicked");
        });
        let fetch =
            self.runtime
                .handle_request_with_id(&self.r3, "fetchSubscribers", fetch_args("F2"));
        match fetch.output {
            Ok(_) => None,
            Err(e) => Some(e.to_string()),
        }
    }

    /// Flushes traces into the provenance store.
    pub fn sync_provenance(&self) -> usize {
        let events = self.runtime.tracer().drain();
        let n = events.len();
        self.provenance.ingest(events);
        n
    }

    /// Consumes the scenario and wraps it in a [`trod_core::Trod`]
    /// debugger handle (any still-buffered traces are flushed first).
    pub fn into_trod(self) -> trod_core::Trod {
        self.sync_provenance();
        trod_core::Trod::attach_with(self.runtime, self.provenance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trod_core::Invariant;

    #[test]
    fn toctou_scenario_reproduces_the_duplicate_and_the_late_error() {
        let scenario = toctou_scenario();
        let fetch_error = scenario.run();
        assert!(
            fetch_error.is_some(),
            "fetchSubscribers should report duplicates under the racy interleaving"
        );
        let db = scenario.runtime.database();
        let dups = db
            .scan_latest(FORUM_SUB_TABLE, &subscription_pred("U1", "F2"))
            .unwrap();
        assert_eq!(dups.len(), 2, "two duplicate subscription rows must exist");

        // Provenance captures all three requests.
        scenario.sync_provenance();
        assert_eq!(scenario.provenance.request_ids().len(), 3);
        let violations = Invariant::no_duplicates(FORUM_SUB_TABLE, &["user_id", "forum"]).check(db);
        assert_eq!(violations.len(), 1);
    }

    #[test]
    fn patched_handler_is_safe_even_under_the_racy_schedule() {
        let db = moodle_db();
        let r1 = "R1".to_string();
        let r2 = "R2".to_string();
        // The patched handler only has pre-/post-subscribe sync points, so
        // the TOCTOU script does not constrain it; run it concurrently
        // under serializable isolation.
        let runtime = Runtime::builder(db, patched_registry())
            .default_isolation(trod_db::IsolationLevel::Serializable)
            .build();
        let results = std::thread::scope(|scope| {
            let runtime = &runtime;
            let h1 = scope.spawn({
                let r1 = r1.clone();
                move || {
                    runtime.handle_request_with_id(
                        &r1,
                        "subscribeUser",
                        subscribe_args("S1", "U1", "F2"),
                    )
                }
            });
            let h2 = scope.spawn({
                let r2 = r2.clone();
                move || {
                    runtime.handle_request_with_id(
                        &r2,
                        "subscribeUser",
                        subscribe_args("S2", "U1", "F2"),
                    )
                }
            });
            vec![h1.join().unwrap(), h2.join().unwrap()]
        });
        assert!(results.iter().all(|r| r.is_ok()));
        let rows = runtime
            .database()
            .scan_latest(FORUM_SUB_TABLE, &subscription_pred("U1", "F2"))
            .unwrap();
        assert_eq!(rows.len(), 1, "exactly one subscription must exist");
        let fetch = runtime.handle_request("fetchSubscribers", fetch_args("F2"));
        assert!(fetch.is_ok());
    }

    #[test]
    fn course_restore_fails_when_duplicates_exist_and_succeeds_otherwise() {
        let scenario = toctou_scenario();
        // Set up the course/forum structure first.
        scenario.runtime.must_handle(
            "createForum",
            Args::new().with("forum", "F2").with("course", "C1"),
        );
        // Without duplicates, restore works.
        scenario
            .runtime
            .must_handle("subscribeUser", subscribe_args("S0", "U9", "F2"));
        scenario
            .runtime
            .must_handle("deleteCourse", Args::new().with("course", "C1"));
        let ok = scenario
            .runtime
            .handle_request("restoreCourse", Args::new().with("course", "C1"));
        assert!(ok.is_ok());

        // Now introduce the duplicates via the race and restore again.
        scenario.run();
        let failed = scenario
            .runtime
            .handle_request("restoreCourse", Args::new().with("course", "C1"));
        assert!(matches!(failed.output, Err(HandlerError::App(_))));
    }

    #[test]
    fn unsubscribe_and_fetch_roundtrip() {
        let db = moodle_db();
        let runtime = Runtime::new(db, registry());
        runtime.must_handle("subscribeUser", subscribe_args("S1", "U1", "F1"));
        runtime.must_handle("subscribeUser", subscribe_args("S2", "U2", "F1"));
        let subs = runtime.must_handle("fetchSubscribers", fetch_args("F1"));
        assert_eq!(subs, Value::Text("U1,U2".into()));
        let removed = runtime.must_handle(
            "unsubscribeUser",
            Args::new().with("user_id", "U1").with("forum", "F1"),
        );
        assert_eq!(removed, Value::Int(1));
        let subs = runtime.must_handle("fetchSubscribers", fetch_args("F1"));
        assert_eq!(subs, Value::Text("U2".into()));
    }
}
