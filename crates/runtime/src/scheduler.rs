//! Deterministic interleaving control.
//!
//! Concurrency bugs such as MDL-59854 only manifest under one specific
//! interleaving of transactions from concurrent requests ("you have to be
//! pretty fast and pretty lucky", paper §2). To reproduce them reliably —
//! in tests, in the benchmark workloads, and during retroactive
//! programming, which must *enumerate* interleavings (paper §3.6) —
//! request handlers mark named synchronization points
//! ([`crate::HandlerContext::sync_point`]), and the scheduler decides when
//! each point may proceed.
//!
//! Two modes exist:
//!
//! * **Passthrough** (production behaviour): sync points return
//!   immediately; the OS scheduler decides the interleaving.
//! * **Scripted**: the test or the retroactive engine provides an ordered
//!   list of point labels; each `sync_point(label)` blocks until that
//!   label is at the front of the script.

use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// The label of one synchronization point: `"<req_id>:<point>"`.
pub fn point_label(req_id: &str, point: &str) -> String {
    format!("{req_id}:{point}")
}

#[derive(Debug)]
enum Mode {
    Passthrough,
    Scripted {
        script: Vec<String>,
        position: usize,
        /// Labels that timed out waiting (script errors); recorded so
        /// tests can detect a bad script instead of hanging forever.
        violations: Vec<String>,
    },
}

/// Controls when named synchronization points may proceed.
#[derive(Debug)]
pub struct Scheduler {
    mode: Mutex<Mode>,
    cond: Condvar,
    timeout: Duration,
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::passthrough()
    }
}

impl Scheduler {
    /// A scheduler that never blocks (production mode).
    pub fn passthrough() -> Self {
        Scheduler {
            mode: Mutex::new(Mode::Passthrough),
            cond: Condvar::new(),
            timeout: Duration::from_secs(5),
        }
    }

    /// A scheduler that enforces the given order of point labels.
    pub fn scripted(script: Vec<String>) -> Self {
        Scheduler {
            mode: Mutex::new(Mode::Scripted {
                script,
                position: 0,
                violations: Vec::new(),
            }),
            cond: Condvar::new(),
            timeout: Duration::from_secs(5),
        }
    }

    /// Replaces the current script (resets progress).
    pub fn set_script(&self, script: Vec<String>) {
        *self.mode.lock() = Mode::Scripted {
            script,
            position: 0,
            violations: Vec::new(),
        };
        self.cond.notify_all();
    }

    /// Switches to passthrough mode, releasing any waiters.
    pub fn set_passthrough(&self) {
        *self.mode.lock() = Mode::Passthrough;
        self.cond.notify_all();
    }

    /// Blocks until the labelled point is allowed to proceed.
    ///
    /// Points whose label does not appear in the remaining script pass
    /// through immediately (they are unconstrained). Waiting is bounded by
    /// a timeout; on timeout the label is recorded as a violation and the
    /// point proceeds, so a buggy script degrades loudly instead of
    /// deadlocking the test suite.
    pub fn wait_for(&self, label: &str) {
        enum Action {
            Proceed,
            ProceedAndNotify,
            Wait,
        }
        let mut mode = self.mode.lock();
        loop {
            let action = match &mut *mode {
                Mode::Passthrough => Action::Proceed,
                Mode::Scripted {
                    script, position, ..
                } => {
                    if *position >= script.len() {
                        Action::Proceed
                    } else if !script[*position..].iter().any(|l| l == label) {
                        // Unconstrained point.
                        Action::Proceed
                    } else if script[*position] == label {
                        *position += 1;
                        Action::ProceedAndNotify
                    } else {
                        Action::Wait
                    }
                }
            };
            match action {
                Action::Proceed => return,
                Action::ProceedAndNotify => {
                    self.cond.notify_all();
                    return;
                }
                Action::Wait => {
                    let timed_out = self.cond.wait_for(&mut mode, self.timeout).timed_out();
                    if timed_out {
                        if let Mode::Scripted { violations, .. } = &mut *mode {
                            violations.push(label.to_string());
                        }
                        return;
                    }
                }
            }
        }
    }

    /// Labels that timed out waiting for their turn (empty in a correct
    /// scripted run).
    pub fn violations(&self) -> Vec<String> {
        match &*self.mode.lock() {
            Mode::Scripted { violations, .. } => violations.clone(),
            Mode::Passthrough => Vec::new(),
        }
    }

    /// True if the whole script has been consumed.
    pub fn script_complete(&self) -> bool {
        match &*self.mode.lock() {
            Mode::Scripted {
                script, position, ..
            } => *position >= script.len(),
            Mode::Passthrough => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn passthrough_never_blocks() {
        let s = Scheduler::passthrough();
        s.wait_for("anything");
        assert!(s.script_complete());
        assert!(s.violations().is_empty());
    }

    #[test]
    fn scripted_order_is_enforced_across_threads() {
        // Two "requests" each performing two steps. Every step is
        // bracketed by a `pre` and `post` point, which is the pattern the
        // benchmark applications use: a `pre` gate only opens after the
        // previous step's `post` gate has been passed, so the steps
        // themselves are totally ordered. The script forces the MDL-59854
        // interleaving: R1 check, R2 check, R2 insert, R1 insert.
        let steps = [
            ("R1", "check"),
            ("R2", "check"),
            ("R2", "insert"),
            ("R1", "insert"),
        ];
        let mut script = Vec::new();
        for (req, step) in steps {
            script.push(point_label(req, &format!("pre-{step}")));
            script.push(point_label(req, &format!("post-{step}")));
        }
        let sched = Arc::new(Scheduler::scripted(script));
        let order = Arc::new(Mutex::new(Vec::new()));

        let mut handles = Vec::new();
        for req in ["R1", "R2"] {
            let sched = sched.clone();
            let order = order.clone();
            handles.push(std::thread::spawn(move || {
                for step in ["check", "insert"] {
                    sched.wait_for(&point_label(req, &format!("pre-{step}")));
                    order.lock().push(format!("{req}:{step}"));
                    sched.wait_for(&point_label(req, &format!("post-{step}")));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let observed = order.lock().clone();
        assert_eq!(
            observed,
            vec!["R1:check", "R2:check", "R2:insert", "R1:insert"]
        );
        assert!(sched.script_complete());
        assert!(sched.violations().is_empty());
    }

    #[test]
    fn unscripted_points_pass_through() {
        let sched = Scheduler::scripted(vec![point_label("R1", "a")]);
        // A point never mentioned in the script does not block.
        sched.wait_for(&point_label("R9", "unrelated"));
        sched.wait_for(&point_label("R1", "a"));
        assert!(sched.script_complete());
    }

    #[test]
    fn switching_modes_releases_waiters() {
        let sched = Arc::new(Scheduler::scripted(vec![
            point_label("R1", "first"),
            point_label("R2", "second"),
        ]));
        let sched2 = sched.clone();
        let waiter = std::thread::spawn(move || {
            // This will have to wait: it is second in the script.
            sched2.wait_for(&point_label("R2", "second"));
            true
        });
        std::thread::sleep(Duration::from_millis(50));
        sched.set_passthrough();
        assert!(waiter.join().unwrap());
    }
}
