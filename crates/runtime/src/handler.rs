//! Request handlers and the handler registry.
//!
//! A handler is the unit of application logic in the paper's model: a
//! deterministic function that receives named arguments, accesses shared
//! state only through transactions obtained from its context, and may
//! invoke other handlers via RPC (forming a workflow). Registries are
//! immutable snapshots of "the code"; retroactive programming (paper
//! §3.6) re-executes old requests against a *different* registry in which
//! some handlers have been replaced by patched versions.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::args::Args;
use crate::context::HandlerContext;
use crate::error::HandlerResult;

/// A request handler.
pub trait Handler: Send + Sync {
    /// Executes the handler. All shared-state access must go through
    /// `ctx` (principles P1/P2); the return value must be a deterministic
    /// function of `args` and the database state (P3).
    fn invoke(&self, ctx: &mut HandlerContext<'_>, args: &Args) -> HandlerResult;
}

/// Wraps a closure as a [`Handler`].
pub struct FnHandler<F>(pub F);

impl<F> Handler for FnHandler<F>
where
    F: Fn(&mut HandlerContext<'_>, &Args) -> HandlerResult + Send + Sync,
{
    fn invoke(&self, ctx: &mut HandlerContext<'_>, args: &Args) -> HandlerResult {
        (self.0)(ctx, args)
    }
}

/// An immutable, cloneable map from handler name to handler.
#[derive(Clone, Default)]
pub struct HandlerRegistry {
    handlers: BTreeMap<String, Arc<dyn Handler>>,
}

impl HandlerRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        HandlerRegistry::default()
    }

    /// Registers a handler object.
    pub fn register(&mut self, name: impl Into<String>, handler: Arc<dyn Handler>) {
        self.handlers.insert(name.into(), handler);
    }

    /// Registers a closure handler.
    pub fn register_fn<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: Fn(&mut HandlerContext<'_>, &Args) -> HandlerResult + Send + Sync + 'static,
    {
        self.handlers.insert(name.into(), Arc::new(FnHandler(f)));
    }

    /// Builder-style registration.
    pub fn with_fn<F>(mut self, name: impl Into<String>, f: F) -> Self
    where
        F: Fn(&mut HandlerContext<'_>, &Args) -> HandlerResult + Send + Sync + 'static,
    {
        self.register_fn(name, f);
        self
    }

    /// Looks up a handler.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Handler>> {
        self.handlers.get(name).cloned()
    }

    /// Registered handler names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.handlers.keys().cloned().collect()
    }

    /// Number of registered handlers.
    pub fn len(&self) -> usize {
        self.handlers.len()
    }

    /// True if no handlers are registered.
    pub fn is_empty(&self) -> bool {
        self.handlers.is_empty()
    }

    /// Returns a new registry in which `name` is replaced by `handler`
    /// (the "modified code" of retroactive programming). The original
    /// registry is unchanged.
    pub fn with_replacement(&self, name: impl Into<String>, handler: Arc<dyn Handler>) -> Self {
        let mut clone = self.clone();
        clone.handlers.insert(name.into(), handler);
        clone
    }

    /// Returns a new registry in which `name` is replaced by a closure.
    pub fn with_replacement_fn<F>(&self, name: impl Into<String>, f: F) -> Self
    where
        F: Fn(&mut HandlerContext<'_>, &Args) -> HandlerResult + Send + Sync + 'static,
    {
        self.with_replacement(name, Arc::new(FnHandler(f)))
    }
}

impl std::fmt::Debug for HandlerRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HandlerRegistry")
            .field("handlers", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trod_db::Value;

    #[test]
    fn register_lookup_and_replace() {
        let registry = HandlerRegistry::new()
            .with_fn("ping", |_ctx, _args| Ok(Value::Text("pong".into())))
            .with_fn("add", |_ctx, args| {
                let a = args.get_int("a").unwrap_or(0);
                let b = args.get_int("b").unwrap_or(0);
                Ok(Value::Int(a + b))
            });
        assert_eq!(registry.len(), 2);
        assert!(!registry.is_empty());
        assert_eq!(
            registry.names(),
            vec!["add".to_string(), "ping".to_string()]
        );
        assert!(registry.get("ping").is_some());
        assert!(registry.get("missing").is_none());

        let patched =
            registry.with_replacement_fn("ping", |_ctx, _args| Ok(Value::Text("patched".into())));
        // The original is untouched; both registries resolve the handler.
        assert_eq!(registry.len(), 2);
        assert_eq!(patched.len(), 2);
        assert!(patched.get("ping").is_some());
    }
}
