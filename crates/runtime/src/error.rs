//! Runtime and handler errors.

use std::fmt;

use trod_db::{DbError, KvError, TrodError};

/// Errors surfaced by request handlers or the runtime itself.
#[derive(Debug, Clone, PartialEq)]
pub enum HandlerError {
    /// No handler with this name is registered.
    NoSuchHandler(String),
    /// An application-level failure (e.g. "duplicate subscribers found").
    /// These are the errors the paper's buggy handlers raise.
    App(String),
    /// A database error that the handler did not handle (including
    /// serialization failures that exhausted retries).
    Db(DbError),
    /// A key-value store error the handler did not handle.
    Kv(KvError),
    /// The handler's arguments were missing or of the wrong type.
    BadArgument(String),
}

impl fmt::Display for HandlerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HandlerError::NoSuchHandler(name) => write!(f, "no handler named `{name}`"),
            HandlerError::App(msg) => write!(f, "application error: {msg}"),
            HandlerError::Db(e) => write!(f, "database error: {e}"),
            HandlerError::Kv(e) => write!(f, "key-value store error: {e}"),
            HandlerError::BadArgument(msg) => write!(f, "bad argument: {msg}"),
        }
    }
}

impl std::error::Error for HandlerError {}

impl From<DbError> for HandlerError {
    fn from(e: DbError) -> Self {
        HandlerError::Db(e)
    }
}

impl From<KvError> for HandlerError {
    fn from(e: KvError) -> Self {
        HandlerError::Kv(e)
    }
}

impl From<TrodError> for HandlerError {
    fn from(e: TrodError) -> Self {
        match e {
            TrodError::Relational(e) => HandlerError::Db(e),
            TrodError::KeyValue(e) => HandlerError::Kv(e),
            // Durability failures keep their typed shape (and their
            // retryability) through the db-error wrapper.
            TrodError::Storage(e) => HandlerError::Db(DbError::Storage(e)),
        }
    }
}

impl HandlerError {
    /// True if the failure is a transient concurrency conflict (on either
    /// store) the request may retry.
    pub fn is_retryable(&self) -> bool {
        match self {
            HandlerError::Db(e) => e.is_retryable(),
            HandlerError::Kv(e) => e.is_retryable(),
            _ => false,
        }
    }
}

/// Result alias for handler invocations.
pub type HandlerResult = Result<trod_db::Value, HandlerError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = HandlerError::NoSuchHandler("x".into());
        assert!(e.to_string().contains("x"));
        let e: HandlerError = DbError::TransactionClosed.into();
        assert!(matches!(e, HandlerError::Db(_)));
        assert!(HandlerError::App("dup".into()).to_string().contains("dup"));
    }

    #[test]
    fn unified_errors_convert_per_store() {
        let e: HandlerError = TrodError::Relational(DbError::TransactionClosed).into();
        assert!(matches!(e, HandlerError::Db(_)));
        let e: HandlerError = TrodError::KeyValue(KvError::Conflict {
            namespace: "s".into(),
            key: "k".into(),
        })
        .into();
        assert!(matches!(e, HandlerError::Kv(_)));
        assert!(e.is_retryable());
        assert!(!HandlerError::App("x".into()).is_retryable());
    }
}
