//! Request arguments.
//!
//! Handler arguments are a small ordered map of named [`Value`]s. They
//! round-trip losslessly through a compact text encoding so that the
//! interposition layer can store them in the provenance database and the
//! retroactive engine can later re-execute the original requests with the
//! original arguments (paper §3.6).

use std::collections::BTreeMap;
use std::fmt;

use trod_db::Value;

/// Named, ordered request arguments.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Args {
    values: BTreeMap<String, Value>,
}

impl Args {
    /// Creates an empty argument map.
    pub fn new() -> Self {
        Args::default()
    }

    /// Builder-style insertion.
    pub fn with(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.values.insert(name.into(), value.into());
        self
    }

    /// Inserts an argument.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<Value>) {
        self.values.insert(name.into(), value.into());
    }

    /// Looks up an argument.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.values.get(name)
    }

    /// Looks up a text argument.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.values.get(name).and_then(Value::as_text)
    }

    /// Looks up an integer argument.
    pub fn get_int(&self, name: &str) -> Option<i64> {
        self.values.get(name).and_then(Value::as_int)
    }

    /// Looks up a boolean argument.
    pub fn get_bool(&self, name: &str) -> Option<bool> {
        self.values.get(name).and_then(Value::as_bool)
    }

    /// Number of arguments.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no arguments are present.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over (name, value) pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.values.iter()
    }

    /// Encodes the arguments as a single line of text. The encoding is
    /// deterministic (name order) so traces are stable.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for (i, (name, value)) in self.values.iter().enumerate() {
            if i > 0 {
                out.push('|');
            }
            out.push_str(&escape(name));
            out.push('=');
            match value {
                Value::Null => out.push_str("n:"),
                Value::Bool(b) => out.push_str(&format!("b:{b}")),
                Value::Int(v) => out.push_str(&format!("i:{v}")),
                Value::Float(v) => out.push_str(&format!("f:{v}")),
                Value::Timestamp(v) => out.push_str(&format!("t:{v}")),
                Value::Text(s) => {
                    out.push_str("s:");
                    out.push_str(&escape(s));
                }
                Value::Bytes(b) => {
                    out.push_str("x:");
                    for byte in b {
                        out.push_str(&format!("{byte:02x}"));
                    }
                }
            }
        }
        out
    }

    /// Decodes arguments previously produced by [`Args::encode`].
    pub fn decode(encoded: &str) -> Result<Self, String> {
        let mut args = Args::new();
        if encoded.is_empty() {
            return Ok(args);
        }
        for pair in encoded.split('|') {
            let (name, rest) = pair
                .split_once('=')
                .ok_or_else(|| format!("malformed argument pair `{pair}`"))?;
            let (tag, payload) = rest
                .split_once(':')
                .ok_or_else(|| format!("malformed argument value `{rest}`"))?;
            let value = match tag {
                "n" => Value::Null,
                "b" => Value::Bool(
                    payload
                        .parse()
                        .map_err(|_| format!("bad bool `{payload}`"))?,
                ),
                "i" => Value::Int(
                    payload
                        .parse()
                        .map_err(|_| format!("bad int `{payload}`"))?,
                ),
                "f" => Value::Float(
                    payload
                        .parse()
                        .map_err(|_| format!("bad float `{payload}`"))?,
                ),
                "t" => {
                    Value::Timestamp(payload.parse().map_err(|_| format!("bad ts `{payload}`"))?)
                }
                "s" => Value::Text(unescape(payload)?),
                "x" => {
                    let mut bytes = Vec::with_capacity(payload.len() / 2);
                    let chars: Vec<char> = payload.chars().collect();
                    for chunk in chars.chunks(2) {
                        let s: String = chunk.iter().collect();
                        bytes.push(
                            u8::from_str_radix(&s, 16)
                                .map_err(|_| format!("bad hex `{payload}`"))?,
                        );
                    }
                    Value::Bytes(bytes)
                }
                other => return Err(format!("unknown value tag `{other}`")),
            };
            args.values.insert(unescape(name)?, value);
        }
        Ok(args)
    }
}

impl fmt::Display for Args {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.encode())
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            '|' => out.push_str("%7C"),
            '=' => out.push_str("%3D"),
            ':' => out.push_str("%3A"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if i + 3 > bytes.len() {
                return Err(format!("truncated escape in `{s}`"));
            }
            let hex = std::str::from_utf8(&bytes[i + 1..i + 3])
                .map_err(|_| format!("bad escape in `{s}`"))?;
            let code = u8::from_str_radix(hex, 16).map_err(|_| format!("bad escape in `{s}`"))?;
            out.push(code as char);
            i += 3;
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_accessors() {
        let args = Args::new()
            .with("user", "U1")
            .with("count", 3i64)
            .with("flag", true);
        assert_eq!(args.get_str("user"), Some("U1"));
        assert_eq!(args.get_int("count"), Some(3));
        assert_eq!(args.get_bool("flag"), Some(true));
        assert_eq!(args.get("missing"), None);
        assert_eq!(args.len(), 3);
        assert!(!args.is_empty());
    }

    #[test]
    fn encode_decode_roundtrip_simple() {
        let args = Args::new()
            .with("userId", "U1")
            .with("forum", "F2")
            .with("retries", 2i64)
            .with("nothing", Value::Null);
        let decoded = Args::decode(&args.encode()).unwrap();
        assert_eq!(decoded, args);
    }

    #[test]
    fn encode_decode_with_special_characters() {
        let args = Args::new()
            .with("note", "a|b=c:d%e")
            .with("empty", "")
            .with("bytes", Value::Bytes(vec![0xde, 0xad]));
        let decoded = Args::decode(&args.encode()).unwrap();
        assert_eq!(decoded, args);
    }

    #[test]
    fn empty_args_roundtrip() {
        let args = Args::new();
        assert_eq!(args.encode(), "");
        assert_eq!(Args::decode("").unwrap(), args);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Args::decode("no-equals-sign").is_err());
        assert!(Args::decode("a=z:1").is_err());
        assert!(Args::decode("a=i:notanumber").is_err());
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_text_and_ints(
            entries in prop::collection::btree_map("[a-zA-Z0-9_|=:%]{1,12}", -1_000_000i64..1_000_000, 0..8),
            texts in prop::collection::btree_map("[a-z]{1,8}", "[ -~]{0,20}", 0..8),
        ) {
            let mut args = Args::new();
            for (k, v) in &entries {
                args.set(format!("i_{k}"), *v);
            }
            for (k, v) in &texts {
                args.set(format!("s_{k}"), v.as_str());
            }
            let decoded = Args::decode(&args.encode()).unwrap();
            prop_assert_eq!(decoded, args);
        }
    }
}
