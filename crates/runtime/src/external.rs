//! External-service call log.
//!
//! The paper assumes external service calls (e-mails, payment gateways,
//! …) are idempotent so re-executions cause no unexpected side effects
//! (§3.1, "Simplifying Assumptions"). The runtime therefore never performs
//! real external I/O: handlers declare *intents*, which are recorded here
//! and traced. During replay and retroactive programming a fresh log is
//! used, so tests can assert that re-execution produced the same set of
//! intents without re-sending anything.

use parking_lot::Mutex;

/// One recorded external call intent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExternalCall {
    pub req_id: String,
    pub handler: String,
    pub service: String,
    pub payload: String,
    pub timestamp: i64,
}

/// An append-only log of external call intents.
#[derive(Debug, Default)]
pub struct ExternalServiceLog {
    calls: Mutex<Vec<ExternalCall>>,
}

impl ExternalServiceLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        ExternalServiceLog::default()
    }

    /// Records a call intent.
    pub fn record(&self, call: ExternalCall) {
        self.calls.lock().push(call);
    }

    /// All recorded calls, in record order.
    pub fn calls(&self) -> Vec<ExternalCall> {
        self.calls.lock().clone()
    }

    /// Calls recorded for a specific service.
    pub fn calls_to(&self, service: &str) -> Vec<ExternalCall> {
        self.calls
            .lock()
            .iter()
            .filter(|c| c.service == service)
            .cloned()
            .collect()
    }

    /// Number of recorded calls.
    pub fn len(&self) -> usize {
        self.calls.lock().len()
    }

    /// True if no calls were recorded.
    pub fn is_empty(&self) -> bool {
        self.calls.lock().is_empty()
    }

    /// Clears the log (used between retroactive exploration runs).
    pub fn clear(&self) {
        self.calls.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(service: &str) -> ExternalCall {
        ExternalCall {
            req_id: "R1".into(),
            handler: "checkout".into(),
            service: service.into(),
            payload: "p".into(),
            timestamp: 1,
        }
    }

    #[test]
    fn record_and_filter() {
        let log = ExternalServiceLog::new();
        assert!(log.is_empty());
        log.record(call("email"));
        log.record(call("email"));
        log.record(call("payments"));
        assert_eq!(log.len(), 3);
        assert_eq!(log.calls_to("email").len(), 2);
        assert_eq!(log.calls_to("payments").len(), 1);
        assert_eq!(log.calls().len(), 3);
        log.clear();
        assert!(log.is_empty());
    }
}
