//! # trod-runtime
//!
//! A serverless-style application runtime modelled on the paper's
//! DBOS/Apiary substrate: applications are collections of **request
//! handlers** — deterministic functions that keep all shared state in the
//! database and access it only through transactions (design principles
//! P1–P3) — invoked by an executor that propagates a unique request id
//! through handler-to-handler RPCs.
//!
//! The runtime is built on top of the [`trod_trace`] interposition layer,
//! so every handler invocation and every transaction is traced without
//! any per-application instrumentation; a deterministic [`Scheduler`]
//! lets tests and the retroactive engine force specific interleavings of
//! transactions from concurrent requests.
//!
//! ```
//! use trod_db::{Database, DataType, Schema, Value, row, Key};
//! use trod_runtime::{Args, HandlerRegistry, Runtime};
//!
//! let db = Database::new();
//! db.create_table(
//!     "greetings",
//!     Schema::builder()
//!         .column("name", DataType::Text)
//!         .column("count", DataType::Int)
//!         .primary_key(&["name"])
//!         .build()
//!         .unwrap(),
//! )
//! .unwrap();
//!
//! let registry = HandlerRegistry::new().with_fn("greet", |ctx, args| {
//!     let name = args.get_str("name").unwrap_or("world").to_string();
//!     let mut txn = ctx.txn("func:greet");
//!     let key = Key::single(name.clone());
//!     let count = match txn.get("greetings", &key)? {
//!         Some(row) => {
//!             let next = row[1].as_int().unwrap_or(0) + 1;
//!             txn.update("greetings", &key, row![name.clone(), next])?;
//!             next
//!         }
//!         None => {
//!             txn.insert("greetings", row![name.clone(), 1i64])?;
//!             1
//!         }
//!     };
//!     txn.commit()?;
//!     Ok(Value::Int(count))
//! });
//!
//! let runtime = Runtime::new(db, registry);
//! let result = runtime.handle_request("greet", Args::new().with("name", "ada"));
//! assert_eq!(result.output, Ok(Value::Int(1)));
//! ```

pub mod args;
pub mod context;
pub mod error;
pub mod executor;
pub mod external;
pub mod handler;
pub mod scheduler;

pub use args::Args;
pub use context::HandlerContext;
pub use error::{HandlerError, HandlerResult};
pub use executor::{RequestResult, Runtime, RuntimeBuilder};
pub use external::{ExternalCall, ExternalServiceLog};
pub use handler::{FnHandler, Handler, HandlerRegistry};
pub use scheduler::{point_label, Scheduler};
