//! The handler execution context.
//!
//! Everything a handler is allowed to do — begin transactions, call other
//! handlers over (simulated) RPC, declare external-service intents, mark
//! synchronization points — goes through this context, which is how the
//! interposition layer sees every interaction and how the runtime
//! enforces the paper's design principles.

use trod_db::IsolationLevel;
use trod_kv::{Txn, TxnOptions};
use trod_trace::TxnContext;

use crate::args::Args;
use crate::error::HandlerResult;
use crate::executor::Runtime;
use crate::scheduler::point_label;

/// Per-invocation context handed to a [`crate::Handler`].
pub struct HandlerContext<'a> {
    runtime: &'a Runtime,
    req_id: String,
    handler: String,
    /// Monotonically increasing count of transactions begun by this
    /// handler invocation; used to label transactions (`txn#0`, `txn#1`).
    txn_counter: usize,
}

impl<'a> HandlerContext<'a> {
    pub(crate) fn new(runtime: &'a Runtime, req_id: &str, handler: &str) -> Self {
        HandlerContext {
            runtime,
            req_id: req_id.to_string(),
            handler: handler.to_string(),
            txn_counter: 0,
        }
    }

    /// The unique id of the request being served.
    pub fn req_id(&self) -> &str {
        &self.req_id
    }

    /// The name of the handler being executed.
    pub fn handler_name(&self) -> &str {
        &self.handler
    }

    /// Begins a traced transaction labelled with `function` (the paper's
    /// `Metadata` column, e.g. `"func:isSubscribed"`), at the runtime's
    /// default isolation level. The returned [`Txn`] is the unified
    /// surface: relational operations always, and `kv_*` operations when
    /// the runtime has a key-value store bound — all under one snapshot
    /// and one atomic commit.
    pub fn txn(&mut self, function: &str) -> Txn {
        self.txn_with(function, self.runtime.default_isolation())
    }

    /// Begins a traced transaction at an explicit isolation level.
    pub fn txn_with(&mut self, function: &str, isolation: IsolationLevel) -> Txn {
        self.txn_counter += 1;
        let ctx = TxnContext::new(&self.req_id, &self.handler, function);
        self.runtime
            .session()
            .begin_with(TxnOptions::new().isolation(isolation).traced(ctx))
    }

    /// True if the runtime has a key-value store bound (i.e. the `kv_*`
    /// operations of [`HandlerContext::txn`] transactions will work).
    pub fn has_kv(&self) -> bool {
        self.runtime.kv_store().is_some()
    }

    /// Number of transactions begun so far by this invocation.
    pub fn txns_begun(&self) -> usize {
        self.txn_counter
    }

    /// Invokes another handler as part of the same request (simulated
    /// RPC). The request id is propagated, and the callee's invocation is
    /// traced with this handler as its parent — this is what lets TROD
    /// reconstruct workflows (paper §3.1, §4.2).
    pub fn call(&mut self, handler: &str, args: Args) -> HandlerResult {
        self.runtime
            .invoke_internal(&self.req_id, handler, Some(&self.handler), args)
    }

    /// Declares an external-service call intent (assumed idempotent).
    pub fn external_call(&mut self, service: &str, payload: &str) {
        self.runtime
            .record_external(&self.req_id, &self.handler, service, payload);
    }

    /// Marks a named synchronization point. In production mode this is a
    /// no-op; under a scripted scheduler it blocks until the point
    /// `"<req_id>:<point>"` is allowed to proceed.
    pub fn sync_point(&self, point: &str) {
        self.runtime
            .scheduler()
            .wait_for(&point_label(&self.req_id, point));
    }

    /// A trace timestamp (strictly monotonic across the runtime). Exposed
    /// so handlers that need a notion of "now" get it from the runtime
    /// rather than the wall clock, keeping them deterministic under
    /// replay.
    pub fn now(&self) -> i64 {
        self.runtime.tracer().now()
    }
}

impl std::fmt::Debug for HandlerContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HandlerContext")
            .field("req_id", &self.req_id)
            .field("handler", &self.handler)
            .field("txns_begun", &self.txn_counter)
            .finish()
    }
}
