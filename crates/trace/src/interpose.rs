//! The shared tracer handle every interposed component emits through.
//!
//! Historically this module also carried `TracedDatabase` /
//! `TracedTransaction`, a relational-only traced transaction handle. That
//! surface is gone: the unified `Session` / `Txn` in `trod-kv` records
//! the same read provenance, write provenance (CDC), snapshot and commit
//! timestamps and request context — for relational, key-value and mixed
//! transactions alike — and emits it through this [`Tracer`].
//! Handler-level events (start/end, RPCs, external calls) are recorded by
//! the runtime through the same handle.

use std::sync::Arc;

use crate::buffer::{TraceBuffer, TraceStats};
use crate::clock::TraceClock;
use crate::record::{TraceEvent, TxnTrace};

/// Shared handle used by all components that emit trace events.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    buffer: Arc<TraceBuffer>,
    clock: Arc<TraceClock>,
}

impl Tracer {
    /// Creates a tracer with a fresh buffer and clock.
    pub fn new() -> Self {
        Tracer {
            buffer: Arc::new(TraceBuffer::new()),
            clock: Arc::new(TraceClock::new()),
        }
    }

    /// The underlying buffer (for flushing into the provenance store).
    pub fn buffer(&self) -> &Arc<TraceBuffer> {
        &self.buffer
    }

    /// A strictly monotonic trace timestamp.
    pub fn now(&self) -> i64 {
        self.clock.now_micros()
    }

    /// Enables or disables tracing globally.
    pub fn set_enabled(&self, enabled: bool) {
        self.buffer.set_enabled(enabled);
    }

    /// Whether tracing is enabled.
    pub fn is_enabled(&self) -> bool {
        self.buffer.is_enabled()
    }

    /// Buffer statistics.
    pub fn stats(&self) -> TraceStats {
        self.buffer.stats()
    }

    /// Records the start of a request handler execution.
    pub fn handler_start(
        &self,
        req_id: &str,
        handler: &str,
        parent: Option<&str>,
        args: &str,
    ) -> i64 {
        let timestamp = self.now();
        self.buffer.push(TraceEvent::HandlerStart {
            req_id: req_id.to_string(),
            handler: handler.to_string(),
            parent: parent.map(|s| s.to_string()),
            args: args.to_string(),
            timestamp,
        });
        timestamp
    }

    /// Records the end of a request handler execution.
    pub fn handler_end(&self, req_id: &str, handler: &str, output: &str, ok: bool) -> i64 {
        let timestamp = self.now();
        self.buffer.push(TraceEvent::HandlerEnd {
            req_id: req_id.to_string(),
            handler: handler.to_string(),
            output: output.to_string(),
            ok,
            timestamp,
        });
        timestamp
    }

    /// Records an external (non-database) service call intent.
    pub fn external_call(&self, req_id: &str, handler: &str, service: &str, payload: &str) -> i64 {
        let timestamp = self.now();
        self.buffer.push(TraceEvent::ExternalCall {
            req_id: req_id.to_string(),
            handler: handler.to_string(),
            service: service.to_string(),
            payload: payload.to_string(),
            timestamp,
        });
        timestamp
    }

    /// Records a transaction's provenance.
    pub fn record_txn(&self, trace: TxnTrace) {
        self.buffer.push(TraceEvent::Txn(Box::new(trace)));
    }

    /// Drains all buffered events (used by flushers and tests).
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.buffer.drain_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TxnContext;

    #[test]
    fn handler_and_external_events_flow_through_the_tracer() {
        let tracer = Tracer::new();
        let t0 = tracer.handler_start("R1", "checkout", None, "{\"cart\": 3}");
        let t1 = tracer.external_call("R1", "checkout", "email", "receipt");
        let t2 = tracer.handler_end("R1", "checkout", "ok", true);
        assert!(t0 < t1 && t1 < t2);
        let events = tracer.drain();
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.req_id() == "R1"));
    }

    #[test]
    fn disabling_tracing_drops_events_and_counts_them() {
        let tracer = Tracer::new();
        tracer.set_enabled(false);
        assert!(!tracer.is_enabled());
        tracer.record_txn(TxnTrace {
            txn_id: 1,
            ctx: TxnContext::new("R1", "h", "f"),
            timestamp: tracer.now(),
            snapshot_ts: 0,
            commit_ts: 1,
            committed: true,
            reads: Vec::new(),
            writes: Vec::new(),
        });
        assert!(tracer.drain().is_empty());
        assert_eq!(tracer.stats().dropped, 1);
    }
}
