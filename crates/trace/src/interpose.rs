//! The interposition layer proper: traced database connections.
//!
//! `TracedDatabase` wraps a [`trod_db::Database`]; every transaction begun
//! through it is a [`TracedTransaction`] that transparently records read
//! provenance, write provenance (CDC), the transaction's snapshot and
//! commit timestamps, and the request/handler context — the information
//! the paper's §3.4 tables (`Executions`, `<Table>Events`) are built from.
//! Handler-level events (start/end, RPCs, external calls) are recorded by
//! the runtime through the shared [`Tracer`] handle.

use std::sync::Arc;

use crate::buffer::{TraceBuffer, TraceStats};
use crate::clock::TraceClock;
use crate::record::{ReadTrace, TraceEvent, TxnContext, TxnTrace};

use trod_db::{ChangeRecord, CommitInfo, Database, DbResult, IsolationLevel, Key, Predicate, Row};

/// Shared handle used by all components that emit trace events.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    buffer: Arc<TraceBuffer>,
    clock: Arc<TraceClock>,
}

impl Tracer {
    /// Creates a tracer with a fresh buffer and clock.
    pub fn new() -> Self {
        Tracer {
            buffer: Arc::new(TraceBuffer::new()),
            clock: Arc::new(TraceClock::new()),
        }
    }

    /// The underlying buffer (for flushing into the provenance store).
    pub fn buffer(&self) -> &Arc<TraceBuffer> {
        &self.buffer
    }

    /// A strictly monotonic trace timestamp.
    pub fn now(&self) -> i64 {
        self.clock.now_micros()
    }

    /// Enables or disables tracing globally.
    pub fn set_enabled(&self, enabled: bool) {
        self.buffer.set_enabled(enabled);
    }

    /// Whether tracing is enabled.
    pub fn is_enabled(&self) -> bool {
        self.buffer.is_enabled()
    }

    /// Buffer statistics.
    pub fn stats(&self) -> TraceStats {
        self.buffer.stats()
    }

    /// Records the start of a request handler execution.
    pub fn handler_start(
        &self,
        req_id: &str,
        handler: &str,
        parent: Option<&str>,
        args: &str,
    ) -> i64 {
        let timestamp = self.now();
        self.buffer.push(TraceEvent::HandlerStart {
            req_id: req_id.to_string(),
            handler: handler.to_string(),
            parent: parent.map(|s| s.to_string()),
            args: args.to_string(),
            timestamp,
        });
        timestamp
    }

    /// Records the end of a request handler execution.
    pub fn handler_end(&self, req_id: &str, handler: &str, output: &str, ok: bool) -> i64 {
        let timestamp = self.now();
        self.buffer.push(TraceEvent::HandlerEnd {
            req_id: req_id.to_string(),
            handler: handler.to_string(),
            output: output.to_string(),
            ok,
            timestamp,
        });
        timestamp
    }

    /// Records an external (non-database) service call intent.
    pub fn external_call(&self, req_id: &str, handler: &str, service: &str, payload: &str) -> i64 {
        let timestamp = self.now();
        self.buffer.push(TraceEvent::ExternalCall {
            req_id: req_id.to_string(),
            handler: handler.to_string(),
            service: service.to_string(),
            payload: payload.to_string(),
            timestamp,
        });
        timestamp
    }

    /// Records a transaction's provenance.
    pub fn record_txn(&self, trace: TxnTrace) {
        self.buffer.push(TraceEvent::Txn(Box::new(trace)));
    }

    /// Drains all buffered events (used by flushers and tests).
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.buffer.drain_all()
    }
}

/// A database wrapped by the TROD interposition layer.
#[derive(Debug, Clone)]
pub struct TracedDatabase {
    db: Database,
    tracer: Tracer,
}

impl TracedDatabase {
    /// Wraps `db` with the given tracer.
    pub fn new(db: Database, tracer: Tracer) -> Self {
        TracedDatabase { db, tracer }
    }

    /// The raw database (used by administrative code, not handlers).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The shared tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Begins a traced, strictly serializable transaction on behalf of the
    /// given request/handler/function context.
    pub fn begin(&self, ctx: TxnContext) -> TracedTransaction {
        self.begin_with(ctx, IsolationLevel::Serializable)
    }

    /// Begins a traced transaction at a specific isolation level.
    pub fn begin_with(&self, ctx: TxnContext, isolation: IsolationLevel) -> TracedTransaction {
        let inner = self.db.begin_with(isolation);
        TracedTransaction {
            tracer: self.tracer.clone(),
            snapshot_ts: inner.start_ts(),
            txn_id: inner.id(),
            inner: Some(inner),
            ctx,
            reads: Vec::new(),
        }
    }
}

/// A transaction that records provenance as it executes.
#[derive(Debug)]
pub struct TracedTransaction {
    inner: Option<trod_db::Transaction>,
    tracer: Tracer,
    ctx: TxnContext,
    txn_id: trod_db::TxnId,
    snapshot_ts: trod_db::Ts,
    reads: Vec<ReadTrace>,
}

impl TracedTransaction {
    fn inner_mut(&mut self) -> &mut trod_db::Transaction {
        self.inner
            .as_mut()
            .expect("traced transaction already finished")
    }

    /// The database-assigned transaction id.
    pub fn txn_id(&self) -> trod_db::TxnId {
        self.txn_id
    }

    /// The context this transaction runs under.
    pub fn context(&self) -> &TxnContext {
        &self.ctx
    }

    /// Point read with provenance capture.
    pub fn get(&mut self, table: &str, key: &Key) -> DbResult<Option<Arc<Row>>> {
        let result = self.inner_mut().get(table, key)?;
        self.reads.push(ReadTrace {
            table: table.to_string(),
            query: format!("Get {table}{key}"),
            rows: result
                .clone()
                .map(|r| vec![(key.clone(), r)])
                .unwrap_or_default(),
        });
        Ok(result)
    }

    /// Predicate scan with provenance capture.
    pub fn scan(&mut self, table: &str, pred: &Predicate) -> DbResult<Vec<(Key, Arc<Row>)>> {
        let result = self.inner_mut().scan(table, pred)?;
        self.reads.push(ReadTrace {
            table: table.to_string(),
            query: format!("Scan {table} WHERE {pred}"),
            rows: result.clone(),
        });
        Ok(result)
    }

    /// Existence check with provenance capture (the "Check if (U1, F2)
    /// exists" row of the paper's Table 2).
    pub fn exists(&mut self, table: &str, pred: &Predicate) -> DbResult<bool> {
        let result = self.inner_mut().scan(table, pred)?;
        self.reads.push(ReadTrace {
            table: table.to_string(),
            query: format!("Check if {pred} exists in {table}"),
            rows: result.clone(),
        });
        Ok(!result.is_empty())
    }

    /// Count with provenance capture.
    pub fn count(&mut self, table: &str, pred: &Predicate) -> DbResult<usize> {
        let result = self.inner_mut().scan(table, pred)?;
        self.reads.push(ReadTrace {
            table: table.to_string(),
            query: format!("Count {pred} in {table}"),
            rows: result.clone(),
        });
        Ok(result.len())
    }

    /// Insert (write provenance is captured from the commit's CDC).
    pub fn insert(&mut self, table: &str, row: Row) -> DbResult<Key> {
        self.inner_mut().insert(table, row)
    }

    /// Update by primary key.
    pub fn update(&mut self, table: &str, key: &Key, new_row: Row) -> DbResult<()> {
        self.inner_mut().update(table, key, new_row)
    }

    /// Update all rows matching a predicate.
    pub fn update_where<F>(&mut self, table: &str, pred: &Predicate, f: F) -> DbResult<usize>
    where
        F: FnMut(&Row) -> Row,
    {
        self.inner_mut().update_where(table, pred, f)
    }

    /// Delete by primary key.
    pub fn delete(&mut self, table: &str, key: &Key) -> DbResult<bool> {
        self.inner_mut().delete(table, key)
    }

    /// Delete all rows matching a predicate.
    pub fn delete_where(&mut self, table: &str, pred: &Predicate) -> DbResult<usize> {
        self.inner_mut().delete_where(table, pred)
    }

    /// Commits the transaction and records its provenance (reads, CDC
    /// writes, snapshot/commit timestamps, request context).
    pub fn commit(mut self) -> DbResult<CommitInfo> {
        let inner = self
            .inner
            .take()
            .expect("traced transaction already finished");
        let result = inner.commit();
        let timestamp = self.tracer.now();
        match &result {
            Ok(info) => {
                self.tracer.record_txn(TxnTrace {
                    txn_id: self.txn_id,
                    ctx: self.ctx.clone(),
                    timestamp,
                    snapshot_ts: self.snapshot_ts,
                    commit_ts: info.commit_ts,
                    committed: true,
                    reads: std::mem::take(&mut self.reads),
                    writes: info.changes.clone(),
                });
            }
            Err(_) => {
                self.tracer.record_txn(TxnTrace {
                    txn_id: self.txn_id,
                    ctx: self.ctx.clone(),
                    timestamp,
                    snapshot_ts: self.snapshot_ts,
                    commit_ts: 0,
                    committed: false,
                    reads: std::mem::take(&mut self.reads),
                    writes: Vec::new(),
                });
            }
        }
        result
    }

    /// Aborts the transaction; an aborted-transaction trace is recorded so
    /// aborted attempts remain visible to declarative debugging.
    pub fn abort(mut self) {
        if let Some(inner) = self.inner.take() {
            inner.abort();
        }
        let timestamp = self.tracer.now();
        self.tracer.record_txn(TxnTrace {
            txn_id: self.txn_id,
            ctx: self.ctx.clone(),
            timestamp,
            snapshot_ts: self.snapshot_ts,
            commit_ts: 0,
            committed: false,
            reads: std::mem::take(&mut self.reads),
            writes: Vec::new(),
        });
    }

    /// The buffered (uncommitted) writes, as CDC records.
    pub fn pending_changes(&self) -> Vec<ChangeRecord> {
        self.inner
            .as_ref()
            .map(|t| t.pending_changes())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trod_db::{row, DataType, Schema};

    fn traced_db() -> TracedDatabase {
        let db = Database::new();
        db.create_table(
            "forum_sub",
            Schema::builder()
                .column("id", DataType::Int)
                .column("user_id", DataType::Text)
                .column("forum", DataType::Text)
                .primary_key(&["id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        TracedDatabase::new(db, Tracer::new())
    }

    #[test]
    fn committed_transaction_is_traced_with_reads_and_writes() {
        let tdb = traced_db();
        let ctx = TxnContext::new("R1", "subscribeUser", "func:DB.insert");
        let mut txn = tdb.begin(ctx);
        let pred = Predicate::eq("user_id", "U1").and(Predicate::eq("forum", "F2"));
        assert!(!txn.exists("forum_sub", &pred).unwrap());
        txn.insert("forum_sub", row![1i64, "U1", "F2"]).unwrap();
        txn.commit().unwrap();

        let events = tdb.tracer().drain();
        assert_eq!(events.len(), 1);
        match &events[0] {
            TraceEvent::Txn(t) => {
                assert!(t.committed);
                assert_eq!(t.ctx.req_id, "R1");
                assert_eq!(t.ctx.handler, "subscribeUser");
                assert_eq!(t.reads.len(), 1);
                assert!(t.reads[0].query.contains("Check if"));
                assert_eq!(t.writes.len(), 1);
                assert_eq!(t.writes[0].op.kind(), "Insert");
                assert!(t.commit_ts > 0);
            }
            other => panic!("expected Txn event, got {other:?}"),
        }
    }

    #[test]
    fn aborted_and_failed_transactions_are_traced() {
        let tdb = traced_db();
        // Explicit abort.
        let mut txn = tdb.begin(TxnContext::new("R1", "h", "f"));
        txn.insert("forum_sub", row![1i64, "U1", "F2"]).unwrap();
        txn.abort();
        // Serialization failure: two conflicting inserts of the same key.
        let mut a = tdb.begin(TxnContext::new("R2", "h", "f"));
        let mut b = tdb.begin(TxnContext::new("R3", "h", "f"));
        a.insert("forum_sub", row![2i64, "U1", "F2"]).unwrap();
        b.insert("forum_sub", row![2i64, "U2", "F2"]).unwrap();
        a.commit().unwrap();
        assert!(b.commit().is_err());

        let events = tdb.tracer().drain();
        let committed: Vec<bool> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Txn(t) => Some(t.committed),
                _ => None,
            })
            .collect();
        assert_eq!(committed.iter().filter(|c| **c).count(), 1);
        assert_eq!(committed.iter().filter(|c| !**c).count(), 2);
    }

    #[test]
    fn handler_and_external_events_flow_through_the_tracer() {
        let tracer = Tracer::new();
        let t0 = tracer.handler_start("R1", "checkout", None, "{\"cart\": 3}");
        let t1 = tracer.external_call("R1", "checkout", "email", "receipt");
        let t2 = tracer.handler_end("R1", "checkout", "ok", true);
        assert!(t0 < t1 && t1 < t2);
        let events = tracer.drain();
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.req_id() == "R1"));
    }

    #[test]
    fn disabling_tracing_suppresses_events_but_not_execution() {
        let tdb = traced_db();
        tdb.tracer().set_enabled(false);
        let mut txn = tdb.begin(TxnContext::new("R1", "h", "f"));
        txn.insert("forum_sub", row![1i64, "U1", "F2"]).unwrap();
        txn.commit().unwrap();
        assert!(tdb.tracer().drain().is_empty());
        assert_eq!(tdb.database().stats().live_rows, 1);
        assert_eq!(tdb.tracer().stats().dropped, 1);
    }

    #[test]
    fn get_and_scan_record_row_level_read_provenance() {
        let tdb = traced_db();
        let mut setup = tdb.begin(TxnContext::new("R0", "setup", "f"));
        setup.insert("forum_sub", row![1i64, "U1", "F1"]).unwrap();
        setup.insert("forum_sub", row![2i64, "U2", "F2"]).unwrap();
        setup.commit().unwrap();
        tdb.tracer().drain();

        let mut txn = tdb.begin(TxnContext::new("R1", "reader", "f"));
        let got = txn.get("forum_sub", &Key::single(1i64)).unwrap();
        assert!(got.is_some());
        let scanned = txn
            .scan("forum_sub", &Predicate::eq("forum", "F2"))
            .unwrap();
        assert_eq!(scanned.len(), 1);
        let n = txn.count("forum_sub", &Predicate::True).unwrap();
        assert_eq!(n, 2);
        txn.commit().unwrap();

        let events = tdb.tracer().drain();
        let TraceEvent::Txn(t) = &events[0] else {
            panic!("expected txn trace");
        };
        assert_eq!(t.reads.len(), 3);
        assert_eq!(t.reads[0].rows.len(), 1);
        assert_eq!(t.reads[1].rows.len(), 1);
        assert_eq!(t.reads[2].rows.len(), 2);
        assert!(!t.is_write());
    }
}
