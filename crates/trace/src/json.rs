//! Hand-rolled JSON: the workspace's single escaper, single number
//! formatter, a compact writer, and a strict parser.
//!
//! Trace wire serialization ([`crate::wire`]), the server's JSON-RPC
//! responses, and the dump/load file format all go through this module so
//! there is exactly one place that decides how a string is escaped and
//! how a float is printed. `trod-core` re-exports it as `trod_core::json`.
//!
//! The parser is strict RFC 8259: no trailing commas, no comments, no
//! leading zeros, no bare control characters inside strings, surrogate
//! pairs required for astral `\u` escapes, and a recursion depth limit so
//! adversarial input cannot blow the stack.

use std::fmt;

/// Maximum nesting depth the parser accepts before giving up. Deep enough
/// for any real payload, shallow enough that recursion stays in-stack.
pub const MAX_DEPTH: usize = 128;

/// A JSON document. Objects preserve insertion order (and therefore
/// serialize deterministically), which the dump format relies on.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integers are kept exact: any number literal without a fraction or
    /// exponent parses as `Int`, so `i64` round-trips losslessly.
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: Vec<(K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object (first match). `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Timestamps and sizes travel as non-negative integers.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Numeric value, widening `Int` to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes compactly into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                let mut buf = itoa_buf();
                out.push_str(fmt_i64(*i, &mut buf));
            }
            Json::Float(f) => fmt_f64_into(out, *f),
            Json::Str(s) => escape_into(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing content is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after JSON value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}
impl From<u64> for Json {
    fn from(u: u64) -> Json {
        Json::Int(u as i64)
    }
}
impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::Int(u as i64)
    }
}
impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Float(f)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Array(items)
    }
}

/// The workspace's one string escaper: writes `s` as a quoted JSON string
/// (surrounding quotes included) into `out`.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The workspace's one float formatter: shortest text that round-trips
/// (Rust's `Display` for `f64`), with a fraction forced so the token can
/// never be mistaken for an integer. Non-finite values have no JSON
/// representation and print as `null`; encoders that need to preserve
/// them (the dump format does) must tag them *before* reaching here.
pub fn fmt_f64(x: f64) -> String {
    let mut out = String::new();
    fmt_f64_into(&mut out, x);
    out
}

fn fmt_f64_into(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let start = out.len();
    use fmt::Write as _;
    let _ = write!(out, "{x}");
    if !out[start..].contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn itoa_buf() -> String {
    String::with_capacity(20)
}

fn fmt_i64(i: i64, buf: &mut String) -> &str {
    use fmt::Write as _;
    buf.clear();
    let _ = write!(buf, "{i}");
    buf
}

/// A parse error with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub pos: usize,
    pub detail: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.detail)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, detail: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            detail: detail.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: a low surrogate must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?,
                                );
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                out.push(
                                    char::from_u32(cp).ok_or_else(|| self.err("invalid \\u"))?,
                                );
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar; input is &str so boundaries hold.
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one digit, or a non-zero digit followed by more.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.err("leading zero in number"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("unparseable number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use proptest::test_runner::TestRng;

    #[test]
    fn basics_round_trip() {
        let doc = Json::obj(vec![
            ("null", Json::Null),
            ("t", Json::Bool(true)),
            ("i", Json::Int(-42)),
            ("big", Json::Int(i64::MAX)),
            ("f", Json::Float(1.5)),
            ("whole", Json::Float(3.0)),
            ("s", Json::str("he said \"hi\"\n\tdone\u{1}\u{1F600}")),
            (
                "a",
                Json::Array(vec![Json::Int(1), Json::Null, Json::str("x")]),
            ),
            ("o", Json::obj(vec![("k", Json::str("v"))])),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn floats_never_collide_with_ints() {
        assert_eq!(Json::Float(3.0).to_string(), "3.0");
        assert_eq!(Json::Float(-0.0).to_string(), "-0.0");
        assert_eq!(Json::Int(3).to_string(), "3");
        assert_eq!(Json::parse("3.0").unwrap(), Json::Float(3.0));
        assert_eq!(Json::parse("3").unwrap(), Json::Int(3));
        assert_eq!(Json::parse("3e2").unwrap(), Json::Float(300.0));
        // i64 beyond f64's 2^53 precision still round-trips exactly.
        let n = 9007199254740993i64;
        assert_eq!(Json::parse(&n.to_string()).unwrap(), Json::Int(n));
    }

    #[test]
    fn non_finite_floats_print_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "null");
    }

    #[test]
    fn strict_rejections() {
        for bad in [
            "",
            "tru",
            "01",
            "1.",
            ".5",
            "+1",
            "[1,]",
            "{\"a\":}",
            "\"\\x\"",
            "\"\u{1}\"",
            "\"\\ud800\"",
            "1 2",
            "{\"a\" 1}",
            "nan",
            "--1",
            "1e",
            "[",
            "\"abc",
        ] {
            assert!(Json::parse(bad).is_err(), "expected parse error: {bad:?}");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::str("\u{1F600}")
        );
        assert_eq!(Json::parse("\"\\u0041\\u00e9\"").unwrap(), Json::str("Aé"));
    }

    #[test]
    fn deep_nesting_is_rejected_not_fatal() {
        let deep = "[".repeat(4096) + &"]".repeat(4096);
        assert!(Json::parse(&deep).is_err());
    }

    /// Strings biased toward JSON-hostile characters: quotes, backslashes,
    /// control bytes, astral plane.
    fn arb_string() -> impl Strategy<Value = String> {
        prop::collection::vec(0u32..0xFFFF, 0..48).prop_map(|tokens| {
            tokens
                .into_iter()
                .map(|t| match t % 24 {
                    0 => '"',
                    1 => '\\',
                    2 => '\n',
                    3 => '\r',
                    4 => '\t',
                    5 => '\u{0}',
                    6 => '\u{8}',
                    7 => '\u{c}',
                    8 => '\u{1f}',
                    9 => '/',
                    10 => '\u{7f}',
                    11 => '\u{1F600}',
                    12 => '\u{fffd}',
                    _ => char::from_u32(0x20 + t % 0xD7D0).unwrap_or('x'),
                })
                .collect()
        })
    }

    #[derive(Debug, Clone)]
    struct ArbJson {
        depth: u32,
    }

    impl Strategy for ArbJson {
        type Value = Json;
        fn generate(&self, rng: &mut TestRng) -> Json {
            let arms = if self.depth == 0 { 5 } else { 7 };
            match rng.below(arms) {
                0 => Json::Null,
                1 => Json::Bool(rng.below(2) == 1),
                2 => Json::Int(rng.next_u64() as i64),
                3 => {
                    let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    Json::Float(frac * 2e9 - 1e9)
                }
                4 => Json::Str(arb_string().generate(rng)),
                5 => Json::Array(
                    (0..rng.below(5))
                        .map(|_| {
                            ArbJson {
                                depth: self.depth - 1,
                            }
                            .generate(rng)
                        })
                        .collect(),
                ),
                _ => Json::Object(
                    (0..rng.below(5))
                        .map(|_| {
                            (
                                arb_string().generate(rng),
                                ArbJson {
                                    depth: self.depth - 1,
                                }
                                .generate(rng),
                            )
                        })
                        .collect(),
                ),
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The satellite's escaping fuzz: any string survives
        /// escape → parse exactly.
        #[test]
        fn escaping_round_trips(s in arb_string()) {
            let mut quoted = String::new();
            escape_into(&mut quoted, &s);
            prop_assert_eq!(Json::parse(&quoted).unwrap(), Json::Str(s));
        }

        /// Whole documents round-trip through the writer and parser.
        #[test]
        fn documents_round_trip(doc in ArbJson { depth: 3 }) {
            let text = doc.to_string();
            prop_assert_eq!(Json::parse(&text).unwrap(), doc);
        }

        /// Finite floats round-trip through the one number formatter.
        #[test]
        fn floats_round_trip(x in -1.0e12f64..1.0e12) {
            let text = fmt_f64(x);
            prop_assert_eq!(Json::parse(&text).unwrap().as_f64().unwrap(), x);
        }

        /// The parser never panics on arbitrary input, hostile or not.
        #[test]
        fn parser_never_panics(s in arb_string()) {
            let _ = Json::parse(&s);
            let _ = Json::parse(&format!("[{s}]"));
        }
    }
}
