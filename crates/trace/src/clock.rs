//! Trace timestamps.
//!
//! Trace records carry a strictly monotonic microsecond timestamp. Strict
//! monotonicity matters because the paper's provenance tables are ordered
//! by `Timestamp` and the declarative debugging queries rely on that order
//! to reconstruct "which request ran first" (§3.3). A wall clock alone can
//! produce ties at microsecond granularity, so the clock combines elapsed
//! time with an atomic high-water mark.

use std::sync::atomic::{AtomicI64, Ordering};
use std::time::Instant;

/// A strictly monotonic microsecond clock shared by all tracing components.
#[derive(Debug)]
pub struct TraceClock {
    origin: Instant,
    last: AtomicI64,
}

impl Default for TraceClock {
    fn default() -> Self {
        TraceClock::new()
    }
}

impl TraceClock {
    /// Creates a clock whose epoch is "now".
    pub fn new() -> Self {
        TraceClock {
            origin: Instant::now(),
            last: AtomicI64::new(0),
        }
    }

    /// Returns a strictly increasing microsecond timestamp.
    pub fn now_micros(&self) -> i64 {
        let elapsed = self.origin.elapsed().as_micros() as i64;
        // Ensure strict monotonicity even if two calls land in the same
        // microsecond: take max(elapsed, last + 1).
        let mut prev = self.last.load(Ordering::Relaxed);
        loop {
            let next = elapsed.max(prev + 1);
            match self
                .last
                .compare_exchange_weak(prev, next, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return next,
                Err(actual) => prev = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn timestamps_strictly_increase() {
        let clock = TraceClock::new();
        let mut prev = clock.now_micros();
        for _ in 0..10_000 {
            let next = clock.now_micros();
            assert!(next > prev);
            prev = next;
        }
    }

    #[test]
    fn timestamps_unique_across_threads() {
        let clock = Arc::new(TraceClock::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let clock = clock.clone();
                std::thread::spawn(move || {
                    (0..5_000).map(|_| clock.now_micros()).collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        let unique: HashSet<i64> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len());
    }
}
