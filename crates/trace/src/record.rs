//! Trace record types produced by the interposition layer.
//!
//! These are the in-memory representation of what the paper's Figure 2
//! labels "TxnLogs / Traces": handler invocation spans, transaction-level
//! provenance (read sets, write sets, commit order), and external-service
//! call intents. The provenance crate turns them into queryable tables.

use std::sync::Arc;

use trod_db::{ChangeRecord, Key, Row, Ts, TxnId};

/// Identifies the request, handler and function a database interaction
/// belongs to. The ReqId is propagated through RPCs by the runtime, as the
/// paper assumes (§3.1).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TxnContext {
    /// Unique request id (e.g. "R1").
    pub req_id: String,
    /// Request handler name (e.g. "subscribeUser").
    pub handler: String,
    /// Function-level metadata (e.g. "func:isSubscribed"), mirroring the
    /// `Metadata` column of the paper's Table 1.
    pub function: String,
}

impl TxnContext {
    pub fn new(
        req_id: impl Into<String>,
        handler: impl Into<String>,
        function: impl Into<String>,
    ) -> Self {
        TxnContext {
            req_id: req_id.into(),
            handler: handler.into(),
            function: function.into(),
        }
    }
}

/// One logical read performed by a traced transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadTrace {
    /// Table read from.
    pub table: String,
    /// Human-readable description of the read (mirrors the `Query` column
    /// of the paper's Table 2).
    pub query: String,
    /// The commit timestamp this read was served at: the transaction's
    /// snapshot under snapshot isolation / serializable, the published
    /// clock at call time under read committed. This is what makes
    /// weak-isolation histories faithfully replayable (reenactment-style):
    /// the replay engine injects concurrent commits up to each read's own
    /// timestamp rather than assuming every read happened at the
    /// transaction's snapshot.
    pub read_ts: Ts,
    /// The rows returned, keyed by primary key. Empty for reads that
    /// matched nothing (which is still important provenance: the Moodle
    /// bug hinges on two requests both observing "no subscription").
    pub rows: Vec<(Key, Arc<Row>)>,
}

/// Provenance captured for one transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct TxnTrace {
    /// Transaction id assigned by the database.
    pub txn_id: TxnId,
    /// Context: request, handler, function.
    pub ctx: TxnContext,
    /// Trace timestamp at which the transaction finished (committed or
    /// aborted); populates the `Timestamp` column of Table 1.
    pub timestamp: i64,
    /// Snapshot timestamp the transaction read at.
    pub snapshot_ts: Ts,
    /// Commit timestamp (serial order position); 0 if the transaction
    /// aborted or was read-only.
    pub commit_ts: Ts,
    /// Whether the transaction committed.
    pub committed: bool,
    /// Read provenance.
    pub reads: Vec<ReadTrace>,
    /// Write provenance (CDC records from the commit).
    pub writes: Vec<ChangeRecord>,
}

impl TxnTrace {
    /// The position of this transaction in the serial order implied by
    /// strict serializability: writing transactions serialize at their
    /// commit timestamp; read-only transactions (whose commit timestamp
    /// equals their snapshot) serialize at their snapshot timestamp.
    /// Aborted transactions also report their snapshot timestamp.
    pub fn serialization_ts(&self) -> Ts {
        if self.committed && self.is_write() {
            self.commit_ts
        } else {
            self.snapshot_ts
        }
    }

    /// Tables touched (read or written) by this transaction.
    pub fn touched_tables(&self) -> Vec<String> {
        let mut tables: Vec<String> = self
            .reads
            .iter()
            .map(|r| r.table.clone())
            .chain(self.writes.iter().map(|w| w.table.clone()))
            .collect();
        tables.sort();
        tables.dedup();
        tables
    }

    /// True if this transaction wrote anything.
    pub fn is_write(&self) -> bool {
        !self.writes.is_empty()
    }
}

/// A request handler lifecycle or external interaction event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A request handler began executing.
    HandlerStart {
        req_id: String,
        handler: String,
        /// The handler that invoked this one via RPC, if any (workflows).
        parent: Option<String>,
        /// Serialized request arguments (for replay and retroactive
        /// re-execution).
        args: String,
        timestamp: i64,
    },
    /// A request handler finished.
    HandlerEnd {
        req_id: String,
        handler: String,
        /// Serialized return value ("output determinism" is what replay
        /// verifies against).
        output: String,
        /// Whether the handler completed without an application error.
        ok: bool,
        timestamp: i64,
    },
    /// A transaction's provenance.
    Txn(Box<TxnTrace>),
    /// An external (non-database) service call intent, assumed idempotent
    /// by the paper's simplifying assumptions.
    ExternalCall {
        req_id: String,
        handler: String,
        service: String,
        payload: String,
        timestamp: i64,
    },
}

impl TraceEvent {
    /// The request id this event belongs to.
    pub fn req_id(&self) -> &str {
        match self {
            TraceEvent::HandlerStart { req_id, .. }
            | TraceEvent::HandlerEnd { req_id, .. }
            | TraceEvent::ExternalCall { req_id, .. } => req_id,
            TraceEvent::Txn(t) => &t.ctx.req_id,
        }
    }

    /// The trace timestamp of the event.
    pub fn timestamp(&self) -> i64 {
        match self {
            TraceEvent::HandlerStart { timestamp, .. }
            | TraceEvent::HandlerEnd { timestamp, .. }
            | TraceEvent::ExternalCall { timestamp, .. } => *timestamp,
            TraceEvent::Txn(t) => t.timestamp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trod_db::row;

    fn sample_txn() -> TxnTrace {
        TxnTrace {
            txn_id: 7,
            ctx: TxnContext::new("R1", "subscribeUser", "func:DB.insert"),
            timestamp: 42,
            snapshot_ts: 3,
            commit_ts: 4,
            committed: true,
            reads: vec![ReadTrace {
                table: "forum_sub".into(),
                query: "scan forum_sub".into(),
                read_ts: 3,
                rows: vec![],
            }],
            writes: vec![ChangeRecord::insert(
                "forum_sub",
                Key::single("U1"),
                row!["U1", "F2"],
            )],
        }
    }

    #[test]
    fn touched_tables_dedups_reads_and_writes() {
        let t = sample_txn();
        assert_eq!(t.touched_tables(), vec!["forum_sub".to_string()]);
        assert!(t.is_write());
    }

    #[test]
    fn event_accessors() {
        let e = TraceEvent::Txn(Box::new(sample_txn()));
        assert_eq!(e.req_id(), "R1");
        assert_eq!(e.timestamp(), 42);
        let e = TraceEvent::HandlerStart {
            req_id: "R2".into(),
            handler: "h".into(),
            parent: None,
            args: "{}".into(),
            timestamp: 9,
        };
        assert_eq!(e.req_id(), "R2");
        assert_eq!(e.timestamp(), 9);
    }
}
