//! The always-on, in-memory trace buffer.
//!
//! The paper's prototype (§3.7) achieves "<100 µs per request" tracing
//! overhead by appending trace records to a high-performance in-memory
//! buffer on the request path and moving them to the provenance database
//! off the critical path. This module reproduces that structure: pushes go
//! to a lock-free [`crossbeam`] segmented queue; a flusher (or a test)
//! drains the queue in batches.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crossbeam::queue::SegQueue;

use crate::record::TraceEvent;

/// Counters describing tracing activity, useful for overhead reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Events pushed since creation.
    pub pushed: usize,
    /// Events drained since creation.
    pub drained: usize,
    /// Events currently buffered.
    pub buffered: usize,
    /// Events dropped because tracing was disabled.
    pub dropped: usize,
}

/// A lock-free, unbounded trace buffer.
#[derive(Debug)]
pub struct TraceBuffer {
    queue: SegQueue<TraceEvent>,
    pushed: AtomicUsize,
    drained: AtomicUsize,
    dropped: AtomicUsize,
    enabled: AtomicBool,
}

impl Default for TraceBuffer {
    /// The default buffer is enabled (tracing is "always on").
    fn default() -> Self {
        TraceBuffer::new()
    }
}

impl TraceBuffer {
    /// Creates an enabled buffer.
    pub fn new() -> Self {
        TraceBuffer {
            queue: SegQueue::new(),
            pushed: AtomicUsize::new(0),
            drained: AtomicUsize::new(0),
            dropped: AtomicUsize::new(0),
            enabled: AtomicBool::new(true),
        }
    }

    /// Enables or disables tracing. When disabled, pushes are counted as
    /// dropped but not stored (this is what the "tracing off" baseline in
    /// benchmark E1 measures).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether tracing is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Appends an event (no-op when disabled).
    pub fn push(&self, event: TraceEvent) {
        if !self.is_enabled() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.queue.push(event);
        self.pushed.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Removes and returns up to `max` buffered events (FIFO).
    pub fn drain(&self, max: usize) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        while out.len() < max {
            match self.queue.pop() {
                Some(e) => out.push(e),
                None => break,
            }
        }
        self.drained.fetch_add(out.len(), Ordering::Relaxed);
        out
    }

    /// Removes and returns all buffered events.
    pub fn drain_all(&self) -> Vec<TraceEvent> {
        self.drain(usize::MAX)
    }

    /// Current counters.
    pub fn stats(&self) -> TraceStats {
        TraceStats {
            pushed: self.pushed.load(Ordering::Relaxed),
            drained: self.drained.load(Ordering::Relaxed),
            buffered: self.queue.len(),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn event(req: &str, ts: i64) -> TraceEvent {
        TraceEvent::HandlerStart {
            req_id: req.to_string(),
            handler: "h".into(),
            parent: None,
            args: String::new(),
            timestamp: ts,
        }
    }

    #[test]
    fn push_drain_fifo() {
        let buf = TraceBuffer::new();
        for i in 0..10 {
            buf.push(event("R", i));
        }
        assert_eq!(buf.len(), 10);
        let first = buf.drain(4);
        assert_eq!(first.len(), 4);
        assert_eq!(first[0].timestamp(), 0);
        assert_eq!(first[3].timestamp(), 3);
        let rest = buf.drain_all();
        assert_eq!(rest.len(), 6);
        assert!(buf.is_empty());
        let stats = buf.stats();
        assert_eq!(stats.pushed, 10);
        assert_eq!(stats.drained, 10);
        assert_eq!(stats.buffered, 0);
    }

    #[test]
    fn disabled_buffer_drops_events() {
        let buf = TraceBuffer::new();
        buf.set_enabled(false);
        assert!(!buf.is_enabled());
        buf.push(event("R", 1));
        assert!(buf.is_empty());
        assert_eq!(buf.stats().dropped, 1);
        buf.set_enabled(true);
        buf.push(event("R", 2));
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn concurrent_pushes_are_all_captured() {
        let buf = Arc::new(TraceBuffer::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let buf = buf.clone();
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        buf.push(event(&format!("R{t}"), i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(buf.stats().pushed, 8000);
        assert_eq!(buf.drain_all().len(), 8000);
    }
}
