//! Wire-format serialization for engine types: the JSON encoding of
//! values, change records, aligned-log entries, and traces.
//!
//! This is the one vocabulary shared by the server's JSON-RPC responses,
//! the dump/load file format, and fork-from-instance transfers, so the
//! encoding must be lossless:
//!
//! * `Value::Int` / `Value::Float` stay distinct: integers print bare
//!   (exact to the full `i64` range — the parser keeps undotted literals
//!   as integers), floats always carry a fraction or exponent.
//! * Non-finite floats, which JSON cannot express as numbers, are tagged
//!   objects: `{"float":"nan"|"inf"|"-inf"}`.
//! * `Timestamp` and `Bytes` are tagged too (`{"ts":n}`,
//!   `{"bytes":"<hex>"}`) so decoding is type-exact without a schema.
//!
//! Encoding is infallible; decoding returns [`WireError`] with enough
//! context to locate the offending field.

use std::fmt;
use std::sync::Arc;

use trod_db::{ChangeOp, ChangeRecord, CommittedTxn, Key, Row, Value};

use crate::json::Json;
use crate::record::{ReadTrace, TxnContext, TxnTrace};

/// A decoding error: the wire value did not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl WireError {
    fn new(detail: impl Into<String>) -> Self {
        WireError(detail.into())
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

type WireResult<T> = Result<T, WireError>;

/// Encodes a cell value. Lossless for every `Value`, including
/// non-finite floats and arbitrary bytes.
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::Int(*i),
        Value::Float(f) if f.is_finite() => Json::Float(*f),
        Value::Float(f) => {
            let tag = if f.is_nan() {
                "nan"
            } else if *f > 0.0 {
                "inf"
            } else {
                "-inf"
            };
            Json::obj(vec![("float", Json::str(tag))])
        }
        Value::Text(s) => Json::str(s.clone()),
        Value::Bytes(b) => Json::obj(vec![("bytes", Json::Str(hex_encode(b)))]),
        Value::Timestamp(t) => Json::obj(vec![("ts", Json::Int(*t))]),
    }
}

/// Decodes a cell value encoded by [`value_to_json`].
pub fn value_from_json(j: &Json) -> WireResult<Value> {
    match j {
        Json::Null => Ok(Value::Null),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Int(i) => Ok(Value::Int(*i)),
        Json::Float(f) => Ok(Value::Float(*f)),
        Json::Str(s) => Ok(Value::Text(s.clone())),
        Json::Object(pairs) if pairs.len() == 1 => {
            let (k, v) = &pairs[0];
            match (k.as_str(), v) {
                ("ts", Json::Int(t)) => Ok(Value::Timestamp(*t)),
                ("bytes", Json::Str(h)) => hex_decode(h).map(Value::Bytes),
                ("float", Json::Str(tag)) => match tag.as_str() {
                    "nan" => Ok(Value::Float(f64::NAN)),
                    "inf" => Ok(Value::Float(f64::INFINITY)),
                    "-inf" => Ok(Value::Float(f64::NEG_INFINITY)),
                    other => Err(WireError::new(format!("unknown float tag {other:?}"))),
                },
                _ => Err(WireError::new(format!("unknown tagged value key {k:?}"))),
            }
        }
        other => Err(WireError::new(format!("not a value encoding: {other}"))),
    }
}

/// Encodes a primary key as an array of values.
pub fn key_to_json(key: &Key) -> Json {
    Json::Array(key.values().iter().map(value_to_json).collect())
}

pub fn key_from_json(j: &Json) -> WireResult<Key> {
    let items = j
        .as_array()
        .ok_or_else(|| WireError::new("key must be an array"))?;
    let values = items
        .iter()
        .map(value_from_json)
        .collect::<WireResult<_>>()?;
    Ok(Key::new(values))
}

/// Encodes a row as an array of values.
pub fn row_to_json(row: &Row) -> Json {
    Json::Array(row.values().iter().map(value_to_json).collect())
}

pub fn row_from_json(j: &Json) -> WireResult<Row> {
    let items = j
        .as_array()
        .ok_or_else(|| WireError::new("row must be an array"))?;
    let mut row = Row::with_capacity(items.len());
    for item in items {
        row.push(value_from_json(item)?);
    }
    Ok(row)
}

/// Encodes one CDC record:
/// `{"table":…,"key":[…],"op":"insert","after":[…]}` (before/after images
/// present per op kind).
pub fn change_to_json(c: &ChangeRecord) -> Json {
    let mut pairs = vec![
        ("table", Json::str(c.table.clone())),
        ("key", key_to_json(&c.key)),
    ];
    match &c.op {
        ChangeOp::Insert { after } => {
            pairs.push(("op", Json::str("insert")));
            pairs.push(("after", row_to_json(after)));
        }
        ChangeOp::Update { before, after } => {
            pairs.push(("op", Json::str("update")));
            pairs.push(("before", row_to_json(before)));
            pairs.push(("after", row_to_json(after)));
        }
        ChangeOp::Delete { before } => {
            pairs.push(("op", Json::str("delete")));
            pairs.push(("before", row_to_json(before)));
        }
    }
    Json::obj(pairs)
}

pub fn change_from_json(j: &Json) -> WireResult<ChangeRecord> {
    let table = req_str(j, "table")?.to_string();
    let key = key_from_json(req(j, "key")?)?;
    let op = match req_str(j, "op")? {
        "insert" => ChangeOp::Insert {
            after: Arc::new(row_from_json(req(j, "after")?)?),
        },
        "update" => ChangeOp::Update {
            before: Arc::new(row_from_json(req(j, "before")?)?),
            after: Arc::new(row_from_json(req(j, "after")?)?),
        },
        "delete" => ChangeOp::Delete {
            before: Arc::new(row_from_json(req(j, "before")?)?),
        },
        other => return Err(WireError::new(format!("unknown change op {other:?}"))),
    };
    Ok(ChangeRecord { table, key, op })
}

/// Encodes one aligned-log entry (identity included: txn id and both
/// timestamps travel verbatim, which dump/load and fork-from-instance
/// rely on to reconstruct byte-identical history).
pub fn txn_to_json(t: &CommittedTxn) -> Json {
    Json::obj(vec![
        ("txn_id", Json::from(t.txn_id)),
        ("start_ts", Json::from(t.start_ts)),
        ("commit_ts", Json::from(t.commit_ts)),
        (
            "changes",
            Json::Array(t.changes.iter().map(change_to_json).collect()),
        ),
    ])
}

pub fn txn_from_json(j: &Json) -> WireResult<CommittedTxn> {
    Ok(CommittedTxn {
        txn_id: req_u64(j, "txn_id")?,
        start_ts: req_u64(j, "start_ts")?,
        commit_ts: req_u64(j, "commit_ts")?,
        changes: req_array(j, "changes")?
            .iter()
            .map(change_from_json)
            .collect::<WireResult<_>>()?,
    })
}

/// Encodes one logical read with the rows it observed.
pub fn read_to_json(r: &ReadTrace) -> Json {
    Json::obj(vec![
        ("table", Json::str(r.table.clone())),
        ("query", Json::str(r.query.clone())),
        ("read_ts", Json::from(r.read_ts)),
        (
            "rows",
            Json::Array(
                r.rows
                    .iter()
                    .map(|(k, row)| {
                        Json::obj(vec![("key", key_to_json(k)), ("row", row_to_json(row))])
                    })
                    .collect(),
            ),
        ),
    ])
}

pub fn read_from_json(j: &Json) -> WireResult<ReadTrace> {
    let rows = req_array(j, "rows")?
        .iter()
        .map(|item| {
            Ok((
                key_from_json(req(item, "key")?)?,
                Arc::new(row_from_json(req(item, "row")?)?),
            ))
        })
        .collect::<WireResult<_>>()?;
    Ok(ReadTrace {
        table: req_str(j, "table")?.to_string(),
        query: req_str(j, "query")?.to_string(),
        read_ts: req_u64(j, "read_ts")?,
        rows,
    })
}

/// Encodes a full transaction trace: context, timestamps, read and write
/// provenance. The shape mirrors the paper's Tables 1–2.
pub fn txn_trace_to_json(t: &TxnTrace) -> Json {
    Json::obj(vec![
        ("txn_id", Json::from(t.txn_id)),
        ("req_id", Json::str(t.ctx.req_id.clone())),
        ("handler", Json::str(t.ctx.handler.clone())),
        ("function", Json::str(t.ctx.function.clone())),
        ("timestamp", Json::Int(t.timestamp)),
        ("snapshot_ts", Json::from(t.snapshot_ts)),
        ("commit_ts", Json::from(t.commit_ts)),
        ("committed", Json::Bool(t.committed)),
        (
            "reads",
            Json::Array(t.reads.iter().map(read_to_json).collect()),
        ),
        (
            "writes",
            Json::Array(t.writes.iter().map(change_to_json).collect()),
        ),
    ])
}

pub fn txn_trace_from_json(j: &Json) -> WireResult<TxnTrace> {
    Ok(TxnTrace {
        txn_id: req_u64(j, "txn_id")?,
        ctx: TxnContext::new(
            req_str(j, "req_id")?,
            req_str(j, "handler")?,
            req_str(j, "function")?,
        ),
        timestamp: req_i64(j, "timestamp")?,
        snapshot_ts: req_u64(j, "snapshot_ts")?,
        commit_ts: req_u64(j, "commit_ts")?,
        committed: req(j, "committed")?
            .as_bool()
            .ok_or_else(|| WireError::new("committed must be a bool"))?,
        reads: req_array(j, "reads")?
            .iter()
            .map(read_from_json)
            .collect::<WireResult<_>>()?,
        writes: req_array(j, "writes")?
            .iter()
            .map(change_from_json)
            .collect::<WireResult<_>>()?,
    })
}

fn req<'a>(j: &'a Json, key: &str) -> WireResult<&'a Json> {
    j.get(key)
        .ok_or_else(|| WireError::new(format!("missing field {key:?}")))
}

fn req_str<'a>(j: &'a Json, key: &str) -> WireResult<&'a str> {
    req(j, key)?
        .as_str()
        .ok_or_else(|| WireError::new(format!("field {key:?} must be a string")))
}

fn req_u64(j: &Json, key: &str) -> WireResult<u64> {
    req(j, key)?
        .as_u64()
        .ok_or_else(|| WireError::new(format!("field {key:?} must be a non-negative integer")))
}

fn req_i64(j: &Json, key: &str) -> WireResult<i64> {
    req(j, key)?
        .as_i64()
        .ok_or_else(|| WireError::new(format!("field {key:?} must be an integer")))
}

fn req_array<'a>(j: &'a Json, key: &str) -> WireResult<&'a [Json]> {
    req(j, key)?
        .as_array()
        .ok_or_else(|| WireError::new(format!("field {key:?} must be an array")))
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        use fmt::Write as _;
        let _ = write!(out, "{b:02x}");
    }
    out
}

fn hex_decode(s: &str) -> WireResult<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return Err(WireError::new("odd-length hex string"));
    }
    let digit = |c: u8| -> WireResult<u8> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(WireError::new("invalid hex digit")),
        }
    };
    s.as_bytes()
        .chunks(2)
        .map(|pair| Ok(digit(pair[0])? * 16 + digit(pair[1])?))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mkrow(vals: &[Value]) -> Row {
        let mut row = Row::with_capacity(vals.len());
        for v in vals {
            row.push(v.clone());
        }
        row
    }

    fn sample_values() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(i64::MIN),
            Value::Int(9007199254740993),
            Value::Float(1.5),
            Value::Float(3.0),
            Value::Float(f64::NAN),
            Value::Float(f64::INFINITY),
            Value::Float(f64::NEG_INFINITY),
            Value::Text("quote \" slash \\ nl \n".to_string()),
            Value::Bytes(vec![0, 1, 2, 254, 255]),
            Value::Timestamp(-77),
        ]
    }

    #[test]
    fn values_round_trip_through_text() {
        for v in sample_values() {
            let text = value_to_json(&v).to_string();
            let back = value_from_json(&Json::parse(&text).unwrap()).unwrap();
            match (&v, &back) {
                (Value::Float(a), Value::Float(b)) if a.is_nan() => assert!(b.is_nan()),
                _ => assert_eq!(
                    format!("{v:?}"),
                    format!("{back:?}"),
                    "value {v:?} did not round-trip"
                ),
            }
        }
    }

    #[test]
    fn committed_txn_round_trips() {
        let entry = CommittedTxn {
            txn_id: 42,
            start_ts: 7,
            commit_ts: 9,
            changes: vec![
                ChangeRecord::insert(
                    "orders",
                    Key::single("O1"),
                    mkrow(&[Value::Text("O1".into()), Value::Int(3)]),
                ),
                ChangeRecord::update(
                    "kv:cart",
                    Key::single("C1"),
                    mkrow(&[Value::Text("a".into())]),
                    mkrow(&[Value::Text("b".into())]),
                ),
                ChangeRecord::delete(
                    "orders",
                    Key::new(vec![Value::Int(1), Value::Timestamp(5)]),
                    mkrow(&[Value::Bytes(vec![9, 8])]),
                ),
            ],
        };
        let text = txn_to_json(&entry).to_string();
        let back = txn_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, entry);
    }

    #[test]
    fn txn_trace_round_trips() {
        let trace = TxnTrace {
            txn_id: 5,
            ctx: TxnContext::new("R1", "checkout", "func:pay"),
            timestamp: 123,
            snapshot_ts: 4,
            commit_ts: 6,
            committed: true,
            reads: vec![ReadTrace {
                table: "orders".into(),
                query: "orders[O1]".into(),
                read_ts: 4,
                rows: vec![(Key::single("O1"), Arc::new(mkrow(&[Value::Int(1)])))],
            }],
            writes: vec![ChangeRecord::insert(
                "orders",
                Key::single("O2"),
                mkrow(&[Value::Int(2)]),
            )],
        };
        let text = txn_trace_to_json(&trace).to_string();
        assert_eq!(
            txn_trace_from_json(&Json::parse(&text).unwrap()).unwrap(),
            trace
        );
    }

    #[test]
    fn decode_rejects_malformed() {
        for bad in [
            "{}",
            "{\"float\":\"huge\"}",
            "{\"bytes\":\"abc\"}",
            "{\"bytes\":\"zz\"}",
            "{\"ts\":\"x\"}",
        ] {
            assert!(
                value_from_json(&Json::parse(bad).unwrap()).is_err(),
                "expected decode failure for {bad}"
            );
        }
    }
}
