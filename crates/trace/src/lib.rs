//! # trod-trace
//!
//! The TROD **interposition layer** (paper Figure 2): a thin shim between
//! request handlers and the application database that implements
//! *always-on tracing* (paper §3.4).
//!
//! Components:
//!
//! * [`Tracer`] — the shared handle components use to emit trace events;
//!   owns the lock-free in-memory [`TraceBuffer`] and the monotonic
//!   [`TraceClock`].
//! * [`TracedDatabase`] / [`TracedTransaction`] — wrappers around
//!   [`trod_db`] that automatically capture, for every transaction, the
//!   request/handler/function context, the read set (including reads that
//!   returned nothing), the CDC write set, and the snapshot/commit
//!   timestamps.
//! * [`BackgroundFlusher`] — moves buffered events into a [`TraceSink`]
//!   (the provenance database) off the request path.
//!
//! ```
//! use trod_db::{Database, DataType, Schema, Predicate, row};
//! use trod_trace::{TracedDatabase, Tracer, TxnContext};
//!
//! let db = Database::new();
//! db.create_table(
//!     "forum_sub",
//!     Schema::builder()
//!         .column("id", DataType::Int)
//!         .column("user_id", DataType::Text)
//!         .column("forum", DataType::Text)
//!         .primary_key(&["id"])
//!         .build()
//!         .unwrap(),
//! )
//! .unwrap();
//!
//! let traced = TracedDatabase::new(db, Tracer::new());
//! let mut txn = traced.begin(TxnContext::new("R1", "subscribeUser", "func:DB.insert"));
//! txn.insert("forum_sub", row![1i64, "U1", "F2"]).unwrap();
//! txn.commit().unwrap();
//! assert_eq!(traced.tracer().drain().len(), 1);
//! ```

pub mod buffer;
pub mod clock;
pub mod flush;
pub mod interpose;
pub mod record;

pub use buffer::{TraceBuffer, TraceStats};
pub use clock::TraceClock;
pub use flush::{BackgroundFlusher, CollectingSink, TraceSink};
pub use interpose::{TracedDatabase, TracedTransaction, Tracer};
pub use record::{ReadTrace, TraceEvent, TxnContext, TxnTrace};
