//! # trod-trace
//!
//! The TROD **interposition layer** (paper Figure 2): a thin shim between
//! request handlers and the application database that implements
//! *always-on tracing* (paper §3.4).
//!
//! Components:
//!
//! * [`Tracer`] — the shared handle components use to emit trace events;
//!   owns the lock-free in-memory [`TraceBuffer`] and the monotonic
//!   [`TraceClock`].
//! * [`TxnTrace`] / [`ReadTrace`] / [`TraceEvent`] — the provenance
//!   records themselves: per-transaction read sets (including reads that
//!   returned nothing), CDC write sets, snapshot/commit timestamps and
//!   request context, plus handler start/end and external-call events.
//! * [`BackgroundFlusher`] — moves buffered events into a [`TraceSink`]
//!   (the provenance database) off the request path.
//!
//! Transaction-level capture happens in the unified `Session` / `Txn`
//! surface (`trod-kv`), which records one [`TxnTrace`] per transaction —
//! relational, key-value or mixed — through the [`Tracer`] attached to
//! the session. The old relational-only `TracedDatabase` /
//! `TracedTransaction` wrappers this crate used to export were collapsed
//! into that surface.

pub mod buffer;
pub mod clock;
pub mod flush;
pub mod interpose;
pub mod json;
pub mod record;
pub mod wire;

pub use buffer::{TraceBuffer, TraceStats};
pub use clock::TraceClock;
pub use flush::{BackgroundFlusher, CollectingSink, TraceSink};
pub use interpose::Tracer;
pub use json::{Json, JsonError};
pub use record::{ReadTrace, TraceEvent, TxnContext, TxnTrace};
pub use wire::WireError;
