//! Background flushing of the trace buffer.
//!
//! Moving trace records from the in-memory buffer into the provenance
//! database happens off the request path (paper §3.7). The flusher runs a
//! background thread that periodically drains the buffer and hands batches
//! to a [`TraceSink`]; the provenance crate's store implements that trait.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::interpose::Tracer;
use crate::record::TraceEvent;

/// Destination for drained trace events.
pub trait TraceSink: Send + Sync + 'static {
    /// Consumes a batch of events. Implementations should be tolerant of
    /// being called with an empty batch.
    fn ingest(&self, events: Vec<TraceEvent>);
}

/// A sink that simply collects events in memory (useful for tests).
#[derive(Debug, Default)]
pub struct CollectingSink {
    events: parking_lot::Mutex<Vec<TraceEvent>>,
}

impl CollectingSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Events collected so far.
    pub fn collected(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Number of collected events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True if nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl TraceSink for CollectingSink {
    fn ingest(&self, events: Vec<TraceEvent>) {
        self.events.lock().extend(events);
    }
}

/// A background thread that drains a tracer into a sink.
pub struct BackgroundFlusher {
    stop: Arc<AtomicBool>,
    flushed: Arc<AtomicUsize>,
    handle: Option<JoinHandle<()>>,
}

impl BackgroundFlusher {
    /// Starts a flusher that drains `tracer` into `sink` every `interval`.
    pub fn start(tracer: Tracer, sink: Arc<dyn TraceSink>, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flushed = Arc::new(AtomicUsize::new(0));
        let thread_stop = stop.clone();
        let thread_flushed = flushed.clone();
        let handle = std::thread::Builder::new()
            .name("trod-trace-flusher".into())
            .spawn(move || {
                loop {
                    let events = tracer.drain();
                    if !events.is_empty() {
                        thread_flushed.fetch_add(events.len(), Ordering::Relaxed);
                        sink.ingest(events);
                    }
                    if thread_stop.load(Ordering::Relaxed) {
                        // Final drain so nothing is lost on shutdown.
                        let rest = tracer.drain();
                        if !rest.is_empty() {
                            thread_flushed.fetch_add(rest.len(), Ordering::Relaxed);
                            sink.ingest(rest);
                        }
                        break;
                    }
                    std::thread::sleep(interval);
                }
            })
            .expect("failed to spawn trace flusher thread");
        BackgroundFlusher {
            stop,
            flushed,
            handle: Some(handle),
        }
    }

    /// Number of events flushed so far.
    pub fn flushed(&self) -> usize {
        self.flushed.load(Ordering::Relaxed)
    }

    /// Stops the flusher, draining any remaining events first.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for BackgroundFlusher {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collecting_sink_accumulates() {
        let sink = CollectingSink::new();
        assert!(sink.is_empty());
        sink.ingest(vec![]);
        sink.ingest(vec![TraceEvent::HandlerEnd {
            req_id: "R1".into(),
            handler: "h".into(),
            output: "ok".into(),
            ok: true,
            timestamp: 1,
        }]);
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.collected().len(), 1);
    }

    #[test]
    fn background_flusher_drains_everything_by_stop() {
        let tracer = Tracer::new();
        let sink = Arc::new(CollectingSink::new());
        let flusher =
            BackgroundFlusher::start(tracer.clone(), sink.clone(), Duration::from_millis(1));
        for i in 0..500 {
            tracer.handler_start(&format!("R{i}"), "h", None, "");
        }
        flusher.stop();
        assert_eq!(sink.len(), 500);
        assert!(tracer.buffer().is_empty());
    }

    #[test]
    fn dropping_the_flusher_also_stops_it() {
        let tracer = Tracer::new();
        let sink = Arc::new(CollectingSink::new());
        {
            let _flusher =
                BackgroundFlusher::start(tracer.clone(), sink.clone(), Duration::from_millis(1));
            tracer.handler_start("R1", "h", None, "");
            // Give the flusher a moment to pick the event up, then drop.
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(sink.len() <= 1);
    }
}
